"""VCD (Value Change Dump) parser.

Parses the subset of IEEE 1364 VCD that simulators emit for 2-state designs
(``$scope``/``$var`` headers, scalar ``0<id>``/``1<id>`` and vector
``b<bits> <id>`` changes, ``x``/``z`` digits mapped to 0).  The result is a
:class:`VcdFile` whose signals can be expanded to one value per clock cycle —
the representation the bus analyzer compares across the RTL and BCA runs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Union
import io


class VcdParseError(Exception):
    """Malformed VCD input."""


class VcdSignal:
    """One declared variable: hierarchical name, width, change list."""

    __slots__ = ("name", "width", "ident", "changes")

    def __init__(self, name: str, width: int, ident: str) -> None:
        self.name = name
        self.width = width
        self.ident = ident
        #: list of (time, value), time-ordered, first entry from $dumpvars
        self.changes: List[Tuple[int, int]] = []

    def value_at(self, time: int) -> int:
        """Value at ``time`` (last change at or before it; 0 before any)."""
        result = 0
        for when, value in self.changes:
            if when > time:
                break
            result = value
        return result

    def expand(self, n_cycles: int, timescale: int) -> List[int]:
        """Per-cycle values for cycles ``0..n_cycles-1``."""
        out: List[int] = []
        value = 0
        idx = 0
        changes = self.changes
        n_changes = len(changes)
        for cycle in range(n_cycles):
            t = cycle * timescale
            while idx < n_changes and changes[idx][0] <= t:
                value = changes[idx][1]
                idx += 1
            out.append(value)
        return out


class VcdFile:
    """Parsed VCD: timescale, declared signals, and the final timestamp."""

    def __init__(self, timescale: int) -> None:
        self.timescale = timescale
        self.signals: Dict[str, VcdSignal] = {}
        self.end_time = 0

    @property
    def n_cycles(self) -> int:
        """Number of whole clock cycles covered by the dump."""
        if self.timescale <= 0:
            return 0
        return self.end_time // self.timescale

    def names(self) -> List[str]:
        return sorted(self.signals)

    def __getitem__(self, name: str) -> VcdSignal:
        return self.signals[name]

    def __contains__(self, name: str) -> bool:
        return name in self.signals


def _parse_vector(token: str) -> int:
    """Parse the binary digits of a vector change, mapping x/z to 0."""
    value = 0
    for ch in token:
        value <<= 1
        if ch == "1":
            value |= 1
        elif ch not in "0xXzZ":
            raise VcdParseError(f"bad vector digit {ch!r}")
    return value


def parse_vcd(source: Union[str, io.TextIOBase], is_path: Optional[bool] = None) -> VcdFile:
    """Parse a VCD from a file path, VCD text, or text stream.

    ``is_path`` disambiguates strings; by default a string containing a
    newline is treated as VCD text, otherwise as a path.
    """
    if isinstance(source, str):
        if is_path is None:
            is_path = "\n" not in source
        if is_path:
            with open(source, "r", encoding="ascii") as handle:
                return _parse_stream(handle)
        return _parse_stream(io.StringIO(source))
    return _parse_stream(source)


def _tokens(stream) -> Iterator[str]:
    for line in stream:
        for token in line.split():
            yield token


def _parse_stream(stream) -> VcdFile:
    tokens = _tokens(stream)
    timescale = 1
    by_ident: Dict[str, List[VcdSignal]] = {}
    scope: List[str] = []
    vcd: Optional[VcdFile] = None

    def skip_to_end() -> List[str]:
        body = []
        for token in tokens:
            if token == "$end":
                return body
            body.append(token)
        raise VcdParseError("unterminated $ section")

    # -- header ------------------------------------------------------------
    for token in tokens:
        if token in ("$date", "$version", "$comment"):
            skip_to_end()
        elif token == "$timescale":
            body = "".join(skip_to_end())
            digits = "".join(ch for ch in body if ch.isdigit())
            if not digits:
                raise VcdParseError(f"bad timescale {body!r}")
            timescale = int(digits)
        elif token == "$scope":
            body = skip_to_end()
            if len(body) != 2:
                raise VcdParseError(f"bad $scope {body!r}")
            scope.append(body[1])
        elif token == "$upscope":
            skip_to_end()
            if not scope:
                raise VcdParseError("$upscope with empty scope stack")
            scope.pop()
        elif token == "$var":
            body = skip_to_end()
            if len(body) < 4:
                raise VcdParseError(f"bad $var {body!r}")
            width = int(body[1])
            ident = body[2]
            leaf = body[3]  # ignore optional [msb:lsb] reference tail
            name = ".".join(scope + [leaf])
            sig = VcdSignal(name, width, ident)
            by_ident.setdefault(ident, []).append(sig)
        elif token == "$enddefinitions":
            skip_to_end()
            vcd = VcdFile(timescale)
            for ident_signals in by_ident.values():
                for sig in ident_signals:
                    if sig.name in vcd.signals:
                        raise VcdParseError(f"duplicate signal {sig.name!r}")
                    vcd.signals[sig.name] = sig
            break
        else:
            raise VcdParseError(f"unexpected header token {token!r}")
    if vcd is None:
        raise VcdParseError("no $enddefinitions in input")

    # -- value changes -------------------------------------------------------
    time = 0

    def record(ident: str, value: int) -> None:
        group = by_ident.get(ident)
        if group is None:
            raise VcdParseError(f"value change for undeclared id {ident!r}")
        for sig in group:
            sig.changes.append((time, value & ((1 << sig.width) - 1)))

    for token in tokens:
        first = token[0]
        if first == "#":
            time = int(token[1:])
            if time > vcd.end_time:
                vcd.end_time = time
        elif token in ("$dumpvars", "$dumpall", "$dumpon", "$dumpoff", "$end"):
            continue
        elif first in "01xXzZ":
            record(token[1:], 1 if first == "1" else 0)
        elif first in "bB":
            bits = token[1:]
            try:
                ident = next(tokens)
            except StopIteration:
                raise VcdParseError("vector change missing identifier")
            record(ident, _parse_vector(bits))
        elif first in "rR":
            try:
                next(tokens)  # real values unsupported; skip id
            except StopIteration:
                raise VcdParseError("real change missing identifier")
        elif first == "$":
            skip_to_end()
        else:
            raise VcdParseError(f"unexpected token {token!r} in value section")
    return vcd
