"""VCD waveform writing and parsing.

The regression tool dumps one VCD per (model view, test, seed) run; the bus
analyzer parses the RTL and BCA dumps back and compares them per cycle.
"""

from .writer import VcdWriter, dump_to_string, make_identifier
from .parser import VcdFile, VcdParseError, VcdSignal, parse_vcd

__all__ = [
    "VcdWriter",
    "make_identifier",
    "dump_to_string",
    "VcdFile",
    "VcdSignal",
    "VcdParseError",
    "parse_vcd",
]
