"""Standard Value Change Dump (VCD, IEEE 1364) writer.

The paper's regression tool dumps one VCD per run "so that it can be used
later for bus accurate comparison".  This writer implements the
:class:`~repro.kernel.simulator.Tracer` interface: the simulator declares
every signal during elaboration and the writer emits one timestep per clock
cycle, recording only the signals whose value changed (per the format).

Hierarchical signal names (``top.dut.req``) become nested ``$scope module``
sections so third-party viewers show the same hierarchy the testbench has.
"""

from __future__ import annotations

import io
import os
from typing import Dict, List, Optional, Sequence, Set, TextIO, Union

from ..ioutil import TMP_SUFFIX
from ..kernel.signal import Signal
from ..kernel.simulator import Tracer

#: Flush the output buffer once it holds this many characters.
_FLUSH_CHARS = 1 << 16

#: VCD identifier alphabet (printable ASCII, per the standard).
_ID_FIRST = 33  # '!'
_ID_LAST = 126  # '~'
_ID_RANGE = _ID_LAST - _ID_FIRST + 1


def make_identifier(index: int) -> str:
    """Return the VCD short identifier for the ``index``-th variable."""
    if index < 0:
        raise ValueError("identifier index must be non-negative")
    chars = [chr(_ID_FIRST + index % _ID_RANGE)]
    index //= _ID_RANGE
    while index:
        index -= 1
        chars.append(chr(_ID_FIRST + index % _ID_RANGE))
        index //= _ID_RANGE
    return "".join(chars)


def _format_value(value: int, width: int, ident: str) -> str:
    if width == 1:
        return f"{value & 1}{ident}"
    return f"b{value:b} {ident}"


class _ScopeNode:
    """A node of the scope tree built from hierarchical signal names."""

    def __init__(self) -> None:
        self.children: Dict[str, "_ScopeNode"] = {}
        self.vars: List[tuple] = []  # (leaf name, width, ident)

    def emit(self, out: TextIO, name: Optional[str] = None) -> None:
        if name is not None:
            out.write(f"$scope module {name} $end\n")
        for leaf, width, ident in self.vars:
            ref = leaf if width == 1 else f"{leaf} [{width - 1}:0]"
            out.write(f"$var wire {width} {ident} {ref} $end\n")
        for child_name in sorted(self.children):
            self.children[child_name].emit(out, child_name)
        if name is not None:
            out.write("$upscope $end\n")


class VcdWriter(Tracer):
    """Write a VCD file sampled once per clock cycle.

    Parameters
    ----------
    target:
        File path or writable text stream.
    timescale_ns:
        Nanoseconds per clock cycle; one cycle advances the VCD timestamp
        by this amount (default 10 ns, a 100 MHz clock).
    """

    def __init__(self, target: Union[str, TextIO], timescale_ns: int = 10):
        if timescale_ns < 1:
            raise ValueError("timescale_ns must be >= 1")
        self._own_stream = isinstance(target, str)
        # When the writer owns the file it stages into a sibling temp
        # file and atomically renames in finish(): a run killed mid-dump
        # leaves no half-written VCD behind for the analyzer (or a
        # regression --resume) to trust.
        self._final_path: Optional[str] = target if self._own_stream else None
        self._out: TextIO = (
            open(target + TMP_SUFFIX, "w", encoding="ascii")
            if isinstance(target, str) else target
        )
        self.timescale_ns = timescale_ns
        self._signals: List[Signal] = []
        self._order: Dict[Signal, int] = {}
        # Last-emitted value per signal, keyed by the Signal object
        # itself (identity hash): the per-sample loop then skips the
        # ``vcd_id`` attribute load and string hash on every candidate.
        self._last: Dict[Signal, int] = {}
        self._header_written = False
        self._finished = False
        #: Characters flushed to the stream so far (the output is ASCII,
        #: so this equals bytes on disk); telemetry reads it per run.
        self.bytes_written = 0
        # Value-change lines are batched here and written in one
        # ``str.join`` per ~64 KiB instead of one stream write per line.
        self._buf: List[str] = []
        self._buf_chars = 0

    # -- Tracer interface -------------------------------------------------

    def declare(self, signal: Signal) -> None:
        if self._header_written:
            raise RuntimeError("cannot declare signals after the first sample")
        signal.vcd_id = make_identifier(len(self._signals))
        self._order[signal] = len(self._signals)
        self._signals.append(signal)

    def sample(self, cycle: int, signals: Sequence[Signal]) -> None:
        self._sample_from(cycle, self._signals)

    def sample_changes(
        self,
        cycle: int,
        signals: Sequence[Signal],
        changed: Set[Signal],
    ) -> None:
        """Fast-path sample: only signals that committed a change this
        cycle are inspected.  Emission stays in declaration order, so the
        bytes are identical to a full :meth:`sample` scan."""
        if len(changed) == len(self._signals):
            self._sample_from(cycle, self._signals)
            return
        order = self._order
        subset = sorted(
            (sig for sig in changed if sig in order), key=order.__getitem__
        )
        self._sample_from(cycle, subset)

    def finish(self, cycle: int) -> None:
        if self._finished:
            return
        self._finished = True
        if not self._header_written:
            self._write_header()
        self._w(f"#{cycle * self.timescale_ns}\n")
        self._flush()
        if self._own_stream:
            self._out.close()
            os.replace(self._final_path + TMP_SUFFIX, self._final_path)
        else:
            self._out.flush()

    # -- internals ---------------------------------------------------------

    def _sample_from(self, cycle: int, candidates: Sequence[Signal]) -> None:
        if not self._header_written:
            self._write_header()
        changes: List[str] = []
        last = self._last
        for sig in candidates:
            value = sig._value
            if last.get(sig) != value:
                last[sig] = value
                changes.append(_format_value(value, sig.width, sig.vcd_id))
        if changes or cycle == 0:
            self._w(f"#{cycle * self.timescale_ns}\n")
            for line in changes:
                self._w(line + "\n")

    def _w(self, text: str) -> None:
        self._buf.append(text)
        self._buf_chars += len(text)
        if self._buf_chars >= _FLUSH_CHARS:
            self._flush()

    def _flush(self) -> None:
        if self._buf:
            self._out.write("".join(self._buf))
            self.bytes_written += self._buf_chars
            self._buf.clear()
            self._buf_chars = 0

    def _write_header(self) -> None:
        self._header_written = True
        w = self._w
        w("$date\n  repro common verification environment\n$end\n")
        w("$version\n  repro.vcd 1.0\n$end\n")
        w(f"$timescale {self.timescale_ns}ns $end\n")
        root = _ScopeNode()
        for sig in self._signals:
            parts = sig.name.split(".")
            node = root
            for part in parts[:-1]:
                node = node.children.setdefault(part, _ScopeNode())
            node.vars.append((parts[-1], sig.width, sig.vcd_id))
        header = io.StringIO()
        root.emit(header)
        w(header.getvalue())
        w("$enddefinitions $end\n")
        w("$dumpvars\n")
        for sig in self._signals:
            self._last[sig] = sig._value
            w(_format_value(sig._value, sig.width, sig.vcd_id) + "\n")
        w("$end\n")


def dump_to_string(sample_rows: Sequence[Dict[str, int]], widths: Dict[str, int]) -> str:
    """Utility: build a VCD text from explicit per-cycle samples.

    ``sample_rows[c][name]`` is the value of ``name`` during cycle ``c``.
    Used by tests and by the BCA trace replayer.
    """
    buf = io.StringIO()
    writer = VcdWriter(buf)
    signals = [Signal(name, width=width) for name, width in widths.items()]
    for sig in signals:
        writer.declare(sig)
    for cycle, row in enumerate(sample_rows):
        for sig in signals:
            if sig.name in row:
                sig.poke(row[sig.name])
        writer.sample(cycle, signals)
    writer.finish(len(sample_rows))
    return buf.getvalue()
