"""BCA size and type converters.

The transaction-level second implementation of the bridge components:
where the RTL view (:mod:`repro.rtl.converter`) runs per-cell FSMs, the
BCA model thinks in whole packets — an inbound *collector* binds cells
into a packet record, the conversion happens once per packet, and an
outbound *streamer* plays the converted packet onto the pins under the
req/gnt handshake.  Pin-level timing matches the RTL view cycle for cycle
(store-and-forward: re-emission starts the cycle after the last inbound
cell).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..kernel import Module, Simulator
from ..stbus import (
    Cell,
    Opcode,
    OpcodeError,
    ProtocolType,
    RespCell,
    StbusPort,
)
from ..stbus.repack import RepackError, repack_request, repack_response


@dataclass
class _Packet:
    """A whole packet with its outbound cell stream."""

    cells: List
    cursor: int = 0

    @property
    def current(self):
        return self.cells[self.cursor]

    def advance(self) -> bool:
        """Move past a transferred cell; True when the packet is done."""
        self.cursor += 1
        return self.cursor >= len(self.cells)


class _Streamer:
    """Plays queued packets onto a port side under a fired() handshake."""

    def __init__(self, drive: Callable, idle: Callable, fired: Callable):
        self._queue: List[_Packet] = []
        self._drive = drive
        self._idle = idle
        self._fired = fired

    def push(self, cells: List) -> None:
        self._queue.append(_Packet(list(cells)))

    def step(self) -> None:
        if self._queue and self._fired():
            if self._queue[0].advance():
                self._queue.pop(0)
        if self._queue:
            self._drive(self._queue[0].current)
        else:
            self._idle()

    def __len__(self) -> int:
        return len(self._queue)


@dataclass
class _Expected:
    order: int
    src: int
    tid: int  # upstream tid, restored on the response
    down_tid: int  # converter-assigned tid on the downstream link
    opcode: Opcode
    address: int


class BcaBridge(Module):
    """Transaction-level width/protocol bridge (BCA view)."""

    view = "bca"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        up_port: StbusPort,
        down_port: StbusPort,
        up_protocol: ProtocolType,
        down_protocol: ProtocolType,
        queue_depth: int = 2,
        parent: Optional[Module] = None,
    ):
        super().__init__(sim, name, parent)
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.up = up_port
        self.down = down_port
        self.up_protocol = up_protocol
        self.down_protocol = down_protocol
        self.queue_depth = queue_depth
        self.stats: Dict[str, int] = {"requests": 0, "responses": 0,
                                      "repack_errors": 0}
        self._inbound_req: List[Cell] = []
        self._inbound_resp: List[RespCell] = []
        self._expected: List[_Expected] = []
        self._order = 0
        self._down_tid = 0
        self._deliver_next = 0
        self._held: Dict[int, List[RespCell]] = {}

        self._down_stream = _Streamer(
            self.down.drive_request, self._idle_down_request,
            lambda: self.down.request_fired,
        )
        self._up_stream = _Streamer(
            self.up.drive_response, self._idle_up_response,
            lambda: self.up.response_fired,
        )
        self._tick = self.signal("tick")
        self.clocked(
            self._on_clock,
            reads=up_port.request_signals()
            + [up_port.gnt, up_port.r_req, up_port.r_gnt]
            + down_port.response_signals()
            + [down_port.gnt, down_port.req, down_port.r_gnt]
            + [self._tick],
            writes=down_port.request_signals()
            + up_port.response_signals()
            + [self._tick],
        )
        self.comb(self._accept_comb, [self._tick, up_port.req])

    # -- pin idlers ----------------------------------------------------------

    def _idle_down_request(self) -> None:
        down = self.down
        down.idle_request()
        down.add.drive(0)
        down.opc.drive(0)
        down.data.drive(0)
        down.be.drive(0)
        down.tid.drive(0)
        down.src.drive(0)
        down.pri.drive(0)

    def _idle_up_response(self) -> None:
        up = self.up
        up.idle_response()
        up.r_opc.drive(0)
        up.r_data.drive(0)
        up.r_src.drive(0)
        up.r_tid.drive(0)

    # -- combinational ---------------------------------------------------------

    def _accept_comb(self) -> None:
        self.up.gnt.drive(1 if len(self._down_stream) < self.queue_depth else 0)
        self.down.r_gnt.drive(1)

    # -- transaction engine -------------------------------------------------------

    def _on_clock(self) -> None:
        # Collect inbound cells (fired during the previous cycle).
        if self.up.request_fired:
            cell = self.up.request_cell()
            self._inbound_req.append(cell)
            if cell.eop:
                packet, self._inbound_req = self._inbound_req, []
                self._convert_request(packet)
        if self.down.response_fired:
            cell = self.down.response_cell()
            self._inbound_resp.append(cell)
            if cell.r_eop:
                packet, self._inbound_resp = self._inbound_resp, []
                self._convert_response(packet)
        self._down_stream.step()
        self._up_stream.step()
        self._tick.drive(self._tick.value ^ 1)

    def _convert_request(self, cells: List[Cell]) -> None:
        self.stats["requests"] += 1
        try:
            converted = repack_request(
                cells, self.up.bus_bytes, self.down.bus_bytes,
                self.up_protocol, self.down_protocol,
            )
            opcode = Opcode.decode(cells[0].opc)
        except (RepackError, OpcodeError):
            self.stats["repack_errors"] += 1
            self._up_stream.push(
                [RespCell(r_opc=1, r_eop=1, r_src=cells[0].src,
                          r_tid=cells[0].tid)]
            )
            return
        down_tid = self._down_tid & 0xFF
        self._down_tid += 1
        for fwd_cell in converted:
            fwd_cell.tid = down_tid
        self._expected.append(
            _Expected(self._order, cells[0].src, cells[0].tid, down_tid,
                      opcode, cells[0].add)
        )
        self._order += 1
        self._down_stream.push(converted)

    def _convert_response(self, cells: List[RespCell]) -> None:
        self.stats["responses"] += 1
        entry = None
        for idx, candidate in enumerate(self._expected):
            if candidate.down_tid == cells[0].r_tid:
                entry = self._expected.pop(idx)
                break
        if entry is None:
            if not self._expected:
                return
            entry = self._expected.pop(0)
        converted = repack_response(
            cells, entry.opcode, entry.address,
            self.down.bus_bytes, self.up.bus_bytes,
            self.down_protocol, self.up_protocol,
        )
        for cell_out in converted:
            # Restore the upstream link's tags (a downstream node rewrites
            # r_src with its own port index).
            cell_out.r_src = entry.src
            cell_out.r_tid = entry.tid
        if self.up_protocol is ProtocolType.T2:
            # Type II upstream: strict request order.
            self._held[entry.order] = converted
            while self._deliver_next in self._held:
                self._up_stream.push(self._held.pop(self._deliver_next))
                self._deliver_next += 1
        else:
            self._deliver_next = max(self._deliver_next, entry.order + 1)
            self._up_stream.push(converted)


class BcaSizeConverter(BcaBridge):
    """Width bridge, BCA view."""

    def __init__(self, sim, name, up_port, down_port, protocol,
                 queue_depth=2, parent=None):
        if up_port.width_bits == down_port.width_bits:
            raise ValueError("size converter needs differing port widths")
        super().__init__(sim, name, up_port, down_port, protocol, protocol,
                         queue_depth, parent)


class BcaTypeConverter(BcaBridge):
    """Protocol bridge, BCA view."""

    def __init__(self, sim, name, up_port, down_port, up_protocol,
                 down_protocol, queue_depth=2, parent=None):
        if up_port.width_bits != down_port.width_bits:
            raise ValueError("type converter needs equal port widths")
        if up_protocol is down_protocol:
            raise ValueError("type converter needs differing protocol types")
        if {up_protocol, down_protocol} != {ProtocolType.T2, ProtocolType.T3}:
            raise ValueError("type conversion is between Type II and Type III")
        super().__init__(sim, name, up_port, down_port, up_protocol,
                         down_protocol, queue_depth, parent)
