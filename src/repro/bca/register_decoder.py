"""BCA register decoder.

Transaction-level second implementation of the register-file target:
requests become register operations executed whole, responses are played
back through a scheduled emission queue.  Pin timing matches the RTL view
(fixed ``latency`` cycles between the last request cell and the first
response cell).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..kernel import Module, Simulator
from ..stbus import (
    Cell,
    OpKind,
    Opcode,
    OpcodeError,
    ProtocolType,
    RespCell,
    StbusPort,
    build_response_cells,
    request_data_from_cells,
)


class BcaRegisterDecoder(Module):
    """Register-file target, BCA view."""

    view = "bca"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        port: StbusPort,
        protocol: ProtocolType,
        n_regs: int = 16,
        latency: int = 1,
        parent: Optional[Module] = None,
    ):
        super().__init__(sim, name, parent)
        if n_regs < 1 or latency < 1:
            raise ValueError("n_regs and latency must be >= 1")
        self.port = port
        self.protocol = protocol
        self.n_regs = n_regs
        self.latency = latency
        self.window = n_regs * port.bus_bytes
        self._file: Dict[int, int] = {}
        self._collect: List[Cell] = []
        #: (response cells, not-before cycle), in completion order
        self._pending: List[Tuple[List[RespCell], int]] = []
        self._cursor = 0
        self.errors = 0
        self._tick = self.signal("tick")
        self.clocked(
            self._step,
            reads=port.request_signals()
            + [port.gnt, port.r_req, port.r_gnt, self._tick],
            writes=port.response_signals() + [self._tick],
        )
        self.comb(self._gnt_tie, [self._tick])

    def _gnt_tie(self) -> None:
        self.port.gnt.drive(1)

    def read_register(self, index: int) -> bytes:
        base = (index % self.n_regs) * self.port.bus_bytes
        return bytes(self._file.get(base + k, 0)
                     for k in range(self.port.bus_bytes))

    def write_register(self, index: int, data: bytes) -> None:
        base = (index % self.n_regs) * self.port.bus_bytes
        for k, byte in enumerate(data[: self.port.bus_bytes]):
            self._file[base + k] = byte

    # -- the transaction engine -----------------------------------------------

    def _step(self) -> None:
        now = self.sim.now
        port = self.port
        if port.request_fired:
            cell = port.request_cell()
            self._collect.append(cell)
            if cell.eop:
                packet, self._collect = self._collect, []
                self._pending.append(
                    (self._perform(packet), now + self.latency)
                )
        if self._pending and port.response_fired:
            self._cursor += 1
            if self._cursor >= len(self._pending[0][0]):
                self._pending.pop(0)
                self._cursor = 0
        if self._pending and self._pending[0][1] <= now:
            port.drive_response(self._pending[0][0][self._cursor])
        else:
            port.idle_response()
            port.r_opc.drive(0)
            port.r_data.drive(0)
            port.r_src.drive(0)
            port.r_tid.drive(0)
        self._tick.drive(self._tick.value ^ 1)

    def _perform(self, cells: List[Cell]) -> List[RespCell]:
        head = cells[0]
        bus_bytes = self.port.bus_bytes
        try:
            opcode = Opcode.decode(head.opc)
        except OpcodeError:
            self.errors += 1
            return [RespCell(r_opc=1, r_eop=1, r_src=head.src,
                             r_tid=head.tid)]
        if opcode.size > bus_bytes and opcode.kind not in (
            OpKind.FLUSH, OpKind.PURGE
        ):
            self.errors += 1
            return build_response_cells(
                opcode, bus_bytes, self.protocol, error=True,
                src=head.src, tid=head.tid, address=head.add,
            )
        base = head.add % self.window
        data = b""
        if opcode.kind in (OpKind.LOAD, OpKind.READEX, OpKind.RMW,
                           OpKind.SWAP):
            data = bytes(
                self._file.get((base + k) % self.window, 0)
                for k in range(opcode.size)
            )
        if opcode.kind in (OpKind.STORE, OpKind.RMW, OpKind.SWAP):
            payload = request_data_from_cells(cells, bus_bytes)
            for k, byte in enumerate(payload):
                self._file[(base + k) % self.window] = byte
        return build_response_cells(
            opcode, bus_bytes, self.protocol, data=data,
            src=head.src, tid=head.tid, address=head.add,
        )
