"""Standalone (fast) execution mode of the BCA model.

Section 1: "The fast simulation of BCA models permits to fast find the
optimized configuration, in terms of bandwidth, area and power
consumption."  In the paper's world that speed comes from running the
SystemC BCA model natively instead of through an HDL simulator; the
pin-level co-simulation (:class:`~repro.bca.node.BcaNode` inside the
kernel) is only needed for verification and alignment.

:class:`FastBcaSim` is that native mode: the *same* node semantics —
arbitration policies, packet/chunk locks, Type II ordering, outstanding
credit, timed queues, target latency model, error engine — executed as a
flat cycle loop over plain Python state, with no signals, no delta
cycles, no monitors.  ``tests/bca/test_fast_mode.py`` proves it completes
the same programs in exactly the same number of cycles, with identical
per-transaction response timestamps, as the pin-level BCA run; the E5
benchmark measures the speedup this buys for architecture exploration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..stbus import (
    Architecture,
    Cell,
    NodeConfig,
    OpKind,
    Opcode,
    OpcodeError,
    ProtocolType,
    RespCell,
    RoundRobinArbiter,
    Transaction,
    build_request_cells,
    build_response_cells,
    make_arbiter,
    request_data_from_cells,
)
from .queues import TimedFifo

ERROR_TARGET = -1


@dataclass
class CompletedTxn:
    """Per-transaction timing as observed at the initiator port."""

    initiator: int
    tid: int
    opcode: Opcode
    address: int
    request_start: int
    request_end: int
    response_end: int
    is_error: bool

    @property
    def latency(self) -> int:
        return self.response_end - self.request_start


@dataclass
class FastResult:
    """Outcome of one standalone BCA run."""

    cycles: int
    completed: List[CompletedTxn]
    timed_out: bool

    def mean_latency(self) -> float:
        if not self.completed:
            return 0.0
        return sum(t.latency for t in self.completed) / len(self.completed)

    def latency_percentile(self, percentile: float) -> int:
        """Latency at the given percentile (nearest-rank; 0 < p <= 100)."""
        if not 0 < percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if not self.completed:
            return 0
        ordered = sorted(t.latency for t in self.completed)
        rank = max(1, -(-len(ordered) * percentile // 100))  # ceil
        return ordered[int(rank) - 1]

    def throughput(self) -> float:
        """Completed transactions per cycle."""
        return len(self.completed) / self.cycles if self.cycles else 0.0

    def per_initiator_latency(self) -> Dict[int, float]:
        """Mean latency per initiator (the QoS view of a policy sweep)."""
        sums: Dict[int, List[int]] = {}
        for txn in self.completed:
            sums.setdefault(txn.initiator, []).append(txn.latency)
        return {
            initiator: sum(values) / len(values)
            for initiator, values in sorted(sums.items())
        }


class _FastBfm:
    """The initiator BFM's state machine, without pins."""

    def __init__(self, program: Sequence[Tuple[Transaction, int]],
                 bus_bytes: int, protocol: ProtocolType):
        self._program = list(program)
        self._bus_bytes = bus_bytes
        self._protocol = protocol
        self._next = 0
        self._cells: List[Cell] = []
        self._idx = 0
        self._gap_left = 0
        self._gap_primed = False
        self._tid = 0
        self.current_txn: Optional[Transaction] = None
        self.request_start: Optional[int] = None

    @property
    def done(self) -> bool:
        return self._next >= len(self._program) and not self._cells

    def presented(self) -> Optional[Cell]:
        return self._cells[self._idx] if self._cells else None

    def edge(self, fired: bool) -> None:
        """Advance past a transferred cell and refill (mirrors the BFM)."""
        if self._cells and fired:
            if self._cells[self._idx].eop:
                self._cells = []
                self._idx = 0
            else:
                self._idx += 1
        if not self._cells:
            self._begin_next()

    def _begin_next(self) -> None:
        if self._next >= len(self._program):
            self.current_txn = None
            return
        txn, gap = self._program[self._next]
        if not self._gap_primed:
            self._gap_left = gap
            self._gap_primed = True
        if self._gap_left > 0:
            self._gap_left -= 1
            self.current_txn = None
            return
        self._next += 1
        self._gap_primed = False
        txn.tid = self._tid & 0xFF
        self._tid += 1
        self._cells = build_request_cells(txn, self._bus_bytes, self._protocol)
        self._idx = 0
        self.current_txn = txn
        self.request_start = None


class _FastTarget:
    """The memory target harness's state machine, without pins."""

    def __init__(self, protocol: ProtocolType, bus_bytes: int,
                 latency: int, jitter: int, capacity: int, seed: int):
        self.protocol = protocol
        self.bus_bytes = bus_bytes
        self.latency = latency
        self.jitter = jitter
        self.capacity = capacity
        self._rng = random.Random(seed)
        self._mem: Dict[int, int] = {}
        self._assembly: List[Cell] = []
        self._jobs: List[Tuple[List[RespCell], int]] = []
        self._resp: List[RespCell] = []
        self._idx = 0

    def gnt(self) -> bool:
        return len(self._jobs) < self.capacity

    def presented(self) -> Optional[RespCell]:
        return self._resp[self._idx] if self._resp else None

    def accept(self, cell: Cell, now: int) -> None:
        """A request cell fired into this target during cycle now-1."""
        self._assembly.append(cell)
        if cell.eop:
            cells, self._assembly = self._assembly, []
            delay = self.latency
            if self.jitter:
                delay += self._rng.randrange(self.jitter)
            self._jobs.append((self._execute(cells), now + delay))

    def edge(self, resp_fired: bool, now: int) -> None:
        if self._resp and resp_fired:
            self._idx += 1
            if self._idx >= len(self._resp):
                self._resp = []
                self._idx = 0
        if not self._resp and self._jobs and self._jobs[0][1] <= now:
            self._resp = self._jobs.pop(0)[0]
            self._idx = 0

    def _read(self, address: int, size: int) -> bytes:
        return bytes(
            self._mem.get(address + k, ((address + k) & 0xFF) ^ 0xA5)
            for k in range(size)
        )

    def _write(self, address: int, data: bytes) -> None:
        for k, byte in enumerate(data):
            self._mem[address + k] = byte

    def _execute(self, cells: List[Cell]) -> List[RespCell]:
        first = cells[0]
        try:
            opcode = Opcode.decode(first.opc)
        except OpcodeError:
            return [RespCell(r_opc=1, r_eop=1, r_src=first.src,
                             r_tid=first.tid)]
        data = b""
        if opcode.kind in (OpKind.LOAD, OpKind.READEX):
            data = self._read(first.add, opcode.size)
        elif opcode.kind is OpKind.STORE:
            self._write(first.add,
                        request_data_from_cells(cells, self.bus_bytes))
        elif opcode.kind in (OpKind.RMW, OpKind.SWAP):
            data = self._read(first.add, opcode.size)
            self._write(first.add,
                        request_data_from_cells(cells, self.bus_bytes))
        return build_response_cells(
            opcode, self.bus_bytes, self.protocol, data=data,
            src=first.src, tid=first.tid, address=first.add,
        )


@dataclass
class _Flight:
    target: int
    tid: int
    opcode: Optional[Opcode]
    txn: Optional[Transaction]
    request_start: int
    request_end: int


class FastBcaSim:
    """Flat cycle-loop executor of the BCA node + harness semantics."""

    def __init__(
        self,
        config: NodeConfig,
        programs: Sequence[Sequence[Tuple[Transaction, int]]],
        target_latencies: Sequence[int],
        target_jitters: Optional[Sequence[int]] = None,
        target_capacity: int = 8,
        target_seeds: Optional[Sequence[int]] = None,
    ):
        config.validate()
        if config.has_programming_port:
            raise ValueError(
                "the standalone fast mode does not model the programming "
                "port; use the pin-level environment"
            )
        self.config = config
        self.amap = config.resolved_map
        bus = config.bus_bytes
        protocol = config.protocol_type
        self.bfms = [
            _FastBfm(program, bus, protocol) for program in programs
        ]
        jitters = list(target_jitters or [0] * config.n_targets)
        seeds = list(target_seeds or
                     [0xC0DE + t for t in range(config.n_targets)])
        self.targets = [
            _FastTarget(protocol, bus, target_latencies[t], jitters[t],
                        target_capacity, seeds[t])
            for t in range(config.n_targets)
        ]
        shared = config.architecture is Architecture.SHARED_BUS
        self.shared = shared
        n_req_q = 1 if shared else config.n_targets
        n_resp_q = 1 if shared else config.n_initiators
        self._req_q = [TimedFifo(config.pipe_depth) for _ in range(n_req_q)]
        self._resp_q = [TimedFifo(config.pipe_depth) for _ in range(n_resp_q)]
        self._arb = [
            make_arbiter(
                config.arbitration, config.n_initiators,
                priorities=config.priorities,
                latency_budgets=config.latency_budgets,
                bandwidth_allocations=config.bandwidth_allocations,
                bandwidth_window=config.bandwidth_window,
            )
            for _ in range(n_req_q)
        ]
        resp_universe = config.n_targets + (
            config.n_initiators if shared else 1
        )
        self._resp_arb = [
            RoundRobinArbiter(resp_universe) for _ in range(n_resp_q)
        ]
        self._busy: List[Optional[int]] = [None] * n_req_q
        self._chunk: List[Optional[int]] = [None] * n_req_q
        self._resp_busy: List[Optional[int]] = [None] * n_resp_q
        self._route: List[Optional[int]] = [None] * config.n_initiators
        self._flights: List[List[_Flight]] = [
            [] for _ in range(config.n_initiators)
        ]
        self._err: List[List[Tuple[RespCell, int]]] = [
            [] for _ in range(config.n_initiators)
        ]
        self.completed: List[CompletedTxn] = []

    # -- spec helpers (same rules as the pin-level views) -----------------

    def _req_q_of(self, target: int) -> int:
        return 0 if self.shared else target

    def _resp_q_of(self, initiator: int) -> int:
        return 0 if self.shared else initiator

    def _error_slot(self, initiator: int) -> int:
        return self.config.n_targets + initiator if self.shared \
            else self.config.n_targets

    def _decode(self, initiator: int, address: int) -> int:
        target = self.amap.decode(address)
        if target is None or not self.config.path_allowed(initiator, target):
            return ERROR_TARGET
        return target

    def _destination(self, initiator: int) -> Optional[int]:
        if self.bfms[initiator].presented() is None:
            return None
        if self._route[initiator] is not None:
            return self._route[initiator]
        return self._decode(
            initiator, self.bfms[initiator].presented().add
        )

    def _may_open(self, initiator: int, target: int) -> bool:
        flights = self._flights[initiator]
        if len(flights) >= self.config.max_outstanding:
            return False
        if self.config.protocol_type is ProtocolType.T2:
            return all(f.target == target for f in flights)
        return True

    def _resp_order_ok(self, initiator: int, source: int) -> bool:
        flights = self._flights[initiator]
        if not flights:
            return True
        if self.config.protocol_type is ProtocolType.T2:
            return flights[0].target == source
        return any(f.target == source for f in flights)

    # -- one simulated cycle ------------------------------------------------

    def _destination_of_cell(self, initiator: int, cell) -> Optional[int]:
        """Like _destination, but against a snapshotted presented cell."""
        if cell is None:
            return None
        if self._route[initiator] is not None:
            return self._route[initiator]
        return self._decode(initiator, cell.add)

    def _cycle(self, now: int) -> None:
        cfg = self.config
        # What is visible during this cycle (snapshot the BFM cells: the
        # arbiter ageing at the end of the cycle must see *these*, not the
        # post-edge ones — mirroring the pin-level model's pre-edge pins).
        presented = [bfm.presented() for bfm in self.bfms]
        req_heads = [q.visible_head(now) for q in self._req_q]
        resp_heads = [q.visible_head(now) for q in self._resp_q]
        targ_gnt = [t.gnt() for t in self.targets]
        # Downstream request transfers (node output -> target).
        out_fired = [False] * len(self._req_q)
        for qi, head in enumerate(req_heads):
            if head is not None and targ_gnt[head[0]]:
                out_fired[qi] = True
        # Response transfers target -> node (node r_gnt from arbitration).
        r_gnts, err_pops = self._response_grants(now, resp_heads)
        # Response transfers node -> initiator (BFM always ready).
        resp_out_fired = [head is not None for head in resp_heads]
        # Request grants node <- initiators.
        grants = self._request_grants(now, out_fired)

        # ---- edge: apply everything that fired during this cycle ----
        # 1. pops of consumed queue heads
        for qi, fired in enumerate(out_fired):
            if fired:
                item = self._req_q[qi].pop()
                self.targets[item[0]].accept(item[1], now + 1)
        for qi, fired in enumerate(resp_out_fired):
            if fired:
                self._resp_q[qi].pop()
        # 2. granted request cells enter the node
        for i, granted in enumerate(grants):
            if not granted:
                continue
            cell = self.bfms[i].presented()
            if self.bfms[i].request_start is None:
                self.bfms[i].request_start = now
            if self._route[i] is None:
                self._route[i] = self._decode(i, cell.add)
            target = self._route[i]
            if target == ERROR_TARGET:
                if cell.eop:
                    self._absorb_error(i, cell, now + 1)
            else:
                qi = self._req_q_of(target)
                self._req_q[qi].push((target, replace(cell, src=i)),
                                     now + 1 + cfg.pipe_depth - 1)
                self._arb[qi].on_grant_cycle(i)
                if cell.eop:
                    self._close_packet(i, target, cell, qi, now)
                else:
                    self._busy[qi] = i
        # 3. response cells admitted into the node
        for t, granted in enumerate(r_gnts):
            if not granted:
                continue
            cell = self.targets[t].presented()
            dest = cell.r_src
            qi = self._resp_q_of(dest)
            self._resp_q[qi].push((dest, t, cell),
                                  now + 1 + cfg.pipe_depth - 1)
            if cell.r_eop:
                self._resp_busy[qi] = None
                self._resp_arb[qi].on_packet_end(t)
            else:
                self._resp_busy[qi] = t
        for i, popped in enumerate(err_pops):
            if not popped:
                continue
            cell, _avail = self._err[i].pop(0)
            qi = self._resp_q_of(i)
            slot = self._error_slot(i)
            self._resp_q[qi].push((i, slot, cell),
                                  now + 1 + cfg.pipe_depth - 1)
            if cell.r_eop:
                self._resp_busy[qi] = None
                self._resp_arb[qi].on_packet_end(slot)
            else:
                self._resp_busy[qi] = slot
        # 4. responses delivered to initiators retire
        for qi, fired in enumerate(resp_out_fired):
            if fired:
                dest, source, cell = resp_heads[qi]
                if cell.r_eop:
                    self._retire(dest, source, cell, now)
        # 5. harness edges
        for i, bfm in enumerate(self.bfms):
            bfm.edge(bool(grants[i]))
        for t, target in enumerate(self.targets):
            target.edge(r_gnts[t], now + 1)
        # 6. arbiter ageing (same ordering as the pin-level model: the
        # waiting set comes from this cycle's pins with post-edge route
        # state)
        for qi, arbiter in enumerate(self._arb):
            waiting = []
            for i in range(cfg.n_initiators):
                dest = self._destination_of_cell(i, presented[i])
                if dest is not None and dest != ERROR_TARGET \
                        and self._req_q_of(dest) == qi:
                    waiting.append(i)
            arbiter.tick(waiting)

    # -- grant functions (verbatim spec rules) ----------------------------

    def _request_grants(self, now: int, out_fired: List[bool]) -> List[int]:
        grants = [0] * self.config.n_initiators
        for qi, queue in enumerate(self._req_q):
            if not queue.can_accept(out_fired[qi]):
                continue
            candidates = []
            for i in range(self.config.n_initiators):
                dest = self._destination(i)
                if dest is None or dest == ERROR_TARGET:
                    continue
                if self._req_q_of(dest) != qi:
                    continue
                if self._route[i] is None and not self._may_open(i, dest):
                    continue
                candidates.append(i)
            if not candidates:
                continue
            if self._busy[qi] is not None:
                winner = self._busy[qi] if self._busy[qi] in candidates \
                    else None
            elif self._chunk[qi] is not None:
                winner = self._chunk[qi] if self._chunk[qi] in candidates \
                    else None
            else:
                winner = self._arb[qi].pick(candidates)
            if winner is not None:
                grants[winner] = 1
        for i in range(self.config.n_initiators):
            dest = self._destination(i)
            if dest != ERROR_TARGET:
                continue
            if self._route[i] is not None \
                    or self._may_open(i, ERROR_TARGET):
                grants[i] = 1
        return grants

    def _response_grants(self, now: int, resp_heads) -> Tuple[List[int], List[int]]:
        r_gnts = [0] * self.config.n_targets
        err_pops = [0] * self.config.n_initiators
        for qi, queue in enumerate(self._resp_q):
            fired = resp_heads[qi] is not None
            if not queue.can_accept(fired):
                continue
            lock = self._resp_busy[qi]
            candidates: List[Tuple[int, int]] = []
            for t, target in enumerate(self.targets):
                cell = target.presented()
                if cell is None:
                    continue
                dest = cell.r_src
                if dest >= self.config.n_initiators:
                    continue
                if self._resp_q_of(dest) != qi:
                    continue
                if lock is not None and lock != t:
                    continue
                if lock is None and not self._resp_order_ok(dest, t):
                    continue
                candidates.append((t, dest))
            for i in range(self.config.n_initiators):
                if self._resp_q_of(i) != qi or not self._err[i]:
                    continue
                if self._err[i][0][1] > now:
                    continue
                slot = self._error_slot(i)
                if lock is not None and lock != slot:
                    continue
                if lock is None and not self._resp_order_ok(i, ERROR_TARGET):
                    continue
                candidates.append((slot, i))
            if not candidates:
                continue
            winner = self._resp_arb[qi].pick([s for s, _ in candidates])
            if winner < self.config.n_targets:
                r_gnts[winner] = 1
            else:
                err_pops[dict(candidates)[winner]] = 1
        return r_gnts, err_pops

    # -- bookkeeping ------------------------------------------------------------

    def _close_packet(self, initiator: int, target: int, cell: Cell,
                      queue_idx: int, now: int) -> None:
        txn = self.bfms[initiator].current_txn
        self._flights[initiator].append(
            _Flight(target, cell.tid, self._opcode_of(cell), txn,
                    self.bfms[initiator].request_start or now, now)
        )
        self._route[initiator] = None
        self._busy[queue_idx] = None
        self._chunk[queue_idx] = initiator if cell.lck else None
        self._arb[queue_idx].on_packet_end(initiator)

    def _absorb_error(self, initiator: int, cell: Cell, avail: int) -> None:
        opcode = self._opcode_of(cell)
        self._flights[initiator].append(
            _Flight(ERROR_TARGET, cell.tid, opcode,
                    self.bfms[initiator].current_txn,
                    self.bfms[initiator].request_start or avail - 1,
                    avail - 1)
        )
        self._route[initiator] = None
        if opcode is None:
            cells = [RespCell(r_opc=1, r_eop=1, r_src=initiator,
                              r_tid=cell.tid)]
        else:
            cells = build_response_cells(
                opcode, self.config.bus_bytes, self.config.protocol_type,
                error=True, src=initiator, tid=cell.tid, address=cell.add,
            )
        self._err[initiator].extend((c, avail) for c in cells)

    @staticmethod
    def _opcode_of(cell: Cell) -> Optional[Opcode]:
        try:
            return Opcode.decode(cell.opc)
        except OpcodeError:
            return None

    def _retire(self, initiator: int, source: int, cell: RespCell,
                now: int) -> None:
        if source >= self.config.n_targets:
            source = ERROR_TARGET
        flights = self._flights[initiator]
        if not flights:
            return
        entry = None
        if self.config.protocol_type is ProtocolType.T2:
            entry = flights.pop(0)
        else:
            for idx, flight in enumerate(flights):
                if flight.target == source and flight.tid == cell.r_tid:
                    entry = flights.pop(idx)
                    break
            if entry is None:
                entry = flights.pop(0)
        self.completed.append(
            CompletedTxn(
                initiator, entry.tid,
                entry.opcode or Opcode.load(1),
                entry.txn.address if entry.txn else 0,
                entry.request_start, entry.request_end, now,
                bool(cell.r_opc & 1),
            )
        )

    # -- run loop ------------------------------------------------------------------

    def _drained(self) -> bool:
        return (
            all(bfm.done for bfm in self.bfms)
            and not any(self._flights[i]
                        for i in range(self.config.n_initiators))
        )

    def run(self, max_cycles: int = 200000) -> FastResult:
        # Mirror the pin-level step 0: BFMs load their first cell before
        # any grant is computed, and the arbiters see one tick with no
        # requesters (the pre-cycle-0 pins are all zero) — this keeps
        # windowed policies (bandwidth) phase-aligned with the pin model.
        for bfm in self.bfms:
            bfm.edge(False)
        for arbiter in self._arb:
            arbiter.tick([])
        now = 0
        while now < max_cycles:
            self._cycle(now)
            now += 1
            if self._drained():
                return FastResult(now, self.completed, False)
        return FastResult(now, self.completed, True)


def run_fast(config: NodeConfig, test_program) -> FastResult:
    """Run a :class:`~repro.catg.sequence.TestProgram` in fast mode."""
    if test_program.prog_ops:
        raise ValueError("fast mode does not support programming-port ops")
    sim = FastBcaSim(
        config,
        test_program.programs,
        test_program.target_latencies,
        target_jitters=test_program.target_jitters or None,
    )
    return sim.run(test_program.max_cycles)
