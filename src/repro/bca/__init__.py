"""BCA view: transaction-level, cycle-quantized models of the STBus components."""

from .bugs import (
    ALL_BUGS,
    BUG_CATALOG,
    BUG_CHUNK_IGNORED,
    BUG_LRU_STUCK,
    BUG_PROG_STALE,
    BUG_SRC_TRUNCATION,
    BUG_SUBWORD_LANES,
    BugInfo,
    validate_bugs,
)
from .queues import TimedFifo
from .node import BcaNode
from .converter import BcaBridge, BcaSizeConverter, BcaTypeConverter
from .register_decoder import BcaRegisterDecoder

__all__ = [
    "BcaNode",
    "TimedFifo",
    "BcaBridge",
    "BcaSizeConverter",
    "BcaTypeConverter",
    "BcaRegisterDecoder",
    "ALL_BUGS",
    "BUG_CATALOG",
    "BugInfo",
    "validate_bugs",
    "BUG_LRU_STUCK",
    "BUG_SUBWORD_LANES",
    "BUG_SRC_TRUNCATION",
    "BUG_CHUNK_IGNORED",
    "BUG_PROG_STALE",
]
