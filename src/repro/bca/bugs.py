"""Registry of the five seeded BCA model bugs.

Section 5: "The verification environment permitted to find five bugs on
BCA models, not found using old environment of the past flow."  The
original bugs are not documented in the paper, so this reproduction seeds
five *representative* BCA-only bugs, chosen so that each is

1. invisible to the past flow (single-initiator directed write-then-read
   traffic with visual checks), and
2. caught by a specific mechanism of the common environment (protocol
   checker, scoreboard, arbitration reference checker, or the bus
   analyzer's alignment rate).

Enable them by passing ``bugs={...}`` to :class:`repro.bca.node.BcaNode`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

#: LRU recency is never refreshed when a packet completes (the model
#: forgot the update hook), so the same port keeps winning and can
#: monopolize a contended target.  Caught by the arbitration reference
#: checker (and by the alignment rate).  The past flow never has two
#: initiators, so arbitration is never observed.
BUG_LRU_STUCK = "lru-recency-stuck"

#: Sub-bus-width request cells are forwarded with their data and byte
#: enables shifted down to lane 0 instead of the address-aligned lane.
#: Caught by the scoreboard (request content differs between the initiator
#: and target ports) and the byte-enable protocol rule.  The past flow
#: only issues full-width transfers.
BUG_SUBWORD_LANES = "subword-lane-misplacement"

#: The source tag is truncated to 2 bits when a request is forwarded, so
#: with more than four initiators responses are routed back to an aliased
#: port.  Caught by the scoreboard and the response-matching protocol
#: rule.  The past flow has a single initiator (src 0 aliases to 0).
BUG_SRC_TRUNCATION = "src-tag-truncation"

#: ``lck`` on the last cell of a packet is ignored: the node re-arbitrates
#: instead of holding the slave for the chunk's next packet.  Caught by
#: the chunk-atomicity protocol rule at the target port.  The past flow
#: never contends, so no interleaving can occur.
BUG_CHUNK_IGNORED = "chunk-lock-ignored"

#: Programming-port writes are applied only after the next packet ends,
#: so arbitration keeps using stale priorities / latency budgets for a
#: while.  Caught by the arbitration reference checker.  The past flow
#: never touches the programming port.
BUG_PROG_STALE = "prog-update-stale"

ALL_BUGS: Tuple[str, ...] = (
    BUG_LRU_STUCK,
    BUG_SUBWORD_LANES,
    BUG_SRC_TRUNCATION,
    BUG_CHUNK_IGNORED,
    BUG_PROG_STALE,
)


@dataclass(frozen=True)
class BugInfo:
    """Catalog entry used by reports and the bug-detection benchmark."""

    name: str
    description: str
    caught_by: str  # the primary mechanism of the common environment
    why_old_flow_misses: str
    #: Hierarchical name of the process the mutation lives in — the
    #: triage suspect set must contain it for localization to count.
    mutated_process: str = ""


BUG_CATALOG = {
    BUG_LRU_STUCK: BugInfo(
        BUG_LRU_STUCK,
        "LRU recency never refreshed at end of packet",
        "arbitration reference checker",
        "past flow drives a single initiator: arbitration never observed",
        mutated_process="tb.dut._on_clock",
    ),
    BUG_SUBWORD_LANES: BugInfo(
        BUG_SUBWORD_LANES,
        "sub-word cells forwarded on lane 0 instead of the address lane",
        "scoreboard (request content mismatch across the node)",
        "past flow issues only full-width, word-aligned transfers",
        mutated_process="tb.dut._on_clock",
    ),
    BUG_SRC_TRUNCATION: BugInfo(
        BUG_SRC_TRUNCATION,
        "source tag truncated to 2 bits when forwarding requests",
        "scoreboard / response matching",
        "past flow has one initiator, whose tag 0 truncates to itself",
        mutated_process="tb.dut._on_clock",
    ),
    BUG_CHUNK_IGNORED: BugInfo(
        BUG_CHUNK_IGNORED,
        "chunk lock (lck) ignored: slave re-arbitrated inside a chunk",
        "chunk-atomicity protocol rule",
        "past flow has no contention, chunks can never be interleaved",
        mutated_process="tb.dut._on_clock",
    ),
    BUG_PROG_STALE: BugInfo(
        BUG_PROG_STALE,
        "programming-port writes applied one packet late",
        "arbitration reference checker",
        "past flow never programs the arbiter",
        mutated_process="tb.dut._on_clock",
    ),
}


def validate_bugs(bugs) -> FrozenSet[str]:
    """Normalize and validate a bug-name collection."""
    bug_set = frozenset(bugs or ())
    unknown = bug_set - set(ALL_BUGS)
    if unknown:
        raise ValueError(f"unknown bug names: {sorted(unknown)}")
    return bug_set
