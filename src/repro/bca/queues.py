"""Timed queues — the BCA view's replacement for register pipelines.

Where the RTL node moves cells through explicit register stages, the BCA
model reasons about *when* a cell becomes visible: a cell accepted while
producing cycle ``F+1`` is annotated ``visible_at = F + depth`` and simply
waits in a FIFO.  Occupancy is capped at ``depth`` (the number of register
stages it abstracts), so back-pressure timing matches the elastic pipeline
exactly; see ``tests/bca/test_queue_equivalence.py`` for the lockstep
equivalence property test.
"""

from __future__ import annotations

from typing import Generic, List, Optional, Tuple, TypeVar

T = TypeVar("T")


class TimedFifo(Generic[T]):
    """Bounded FIFO whose head becomes visible at a scheduled cycle."""

    def __init__(self, depth: int):
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.depth = depth
        self._entries: List[Tuple[T, int]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def can_accept(self, output_fired: bool) -> bool:
        """May a new item be accepted this cycle (ready-chain equivalent)?"""
        return output_fired or len(self._entries) < self.depth

    def push(self, item: T, visible_at: int) -> None:
        if len(self._entries) >= self.depth:
            raise OverflowError("timed fifo over capacity")
        if self._entries and visible_at < self._entries[-1][1]:
            # Preserve FIFO visibility monotonicity (cells cannot overtake).
            visible_at = self._entries[-1][1]
        self._entries.append((item, visible_at))

    def visible_head(self, now: int) -> Optional[T]:
        """The item presented on the output during cycle ``now``."""
        if self._entries and self._entries[0][1] <= now:
            return self._entries[0][0]
        return None

    def pop(self) -> T:
        item, _ = self._entries.pop(0)
        return item

    def flush(self) -> None:
        self._entries.clear()
