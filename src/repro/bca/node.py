"""BCA (bus-cycle-accurate) view of the STBus node.

A second, independent implementation of the node specification, written
the way SystemC BCA models are: transaction-level state machines and timed
queues (:class:`~repro.bca.queues.TimedFifo`) instead of register stages,
quantized to clock cycles and driving the very same pin interface as the
RTL view.  The common verification environment plugs either view into the
same testbench; the bus analyzer then checks that the two stay
cycle-aligned at every port.

The model optionally carries the five seeded bugs of
:mod:`repro.bca.bugs`, which reproduce the paper's headline result (five
BCA bugs found by the common environment, all invisible to the past
flow).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..kernel import Module, Simulator
from ..stbus import (
    Architecture,
    ArbitrationPolicy,
    Cell,
    NodeConfig,
    Opcode,
    OpcodeError,
    ProtocolType,
    RespCell,
    RoundRobinArbiter,
    StbusPort,
    T1_WRITE,
    Type1Port,
    build_response_cells,
    make_arbiter,
)
from ..stbus.arbitration import LatencyArbiter, ProgrammablePriorityArbiter
from .bugs import (
    BUG_CHUNK_IGNORED,
    BUG_LRU_STUCK,
    BUG_PROG_STALE,
    BUG_SRC_TRUNCATION,
    BUG_SUBWORD_LANES,
    validate_bugs,
)
from .queues import TimedFifo

#: Sentinel "target" for requests the node answers itself with an error.
ERROR_TARGET = -1


@dataclass
class _ReqItem:
    cell: Cell
    initiator: int
    target: int


@dataclass
class _RespItem:
    cell: RespCell
    source: int  # target index, or error-engine slot
    dest: int


@dataclass
class _PacketRecord:
    """One request packet awaiting its response (split-transaction credit)."""

    target: int
    tid: int
    opcode: Optional[Opcode]


class BcaNode(Module):
    """Transaction-level, cycle-quantized STBus node model."""

    view = "bca"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        config: NodeConfig,
        init_ports: Sequence[StbusPort],
        targ_ports: Sequence[StbusPort],
        prog_port: Optional[Type1Port] = None,
        parent: Optional[Module] = None,
        bugs: Iterable[str] = (),
    ):
        super().__init__(sim, name, parent)
        config.validate()
        if len(init_ports) != config.n_initiators:
            raise ValueError("init_ports count does not match configuration")
        if len(targ_ports) != config.n_targets:
            raise ValueError("targ_ports count does not match configuration")
        if config.has_programming_port and prog_port is None:
            raise ValueError("configuration requires a programming port")
        self.config = config
        self.bugs = validate_bugs(bugs)
        self.init_ports = list(init_ports)
        self.targ_ports = list(targ_ports)
        self.prog_port = prog_port
        self.amap = config.resolved_map
        self.stats: Dict[str, int] = {
            "req_cells": 0,
            "resp_cells": 0,
            "error_packets": 0,
            "unmatched_responses": 0,
        }

        shared = config.architecture is Architecture.SHARED_BUS
        self.shared = shared
        n_init, n_targ = config.n_initiators, config.n_targets
        n_req_q = 1 if shared else n_targ
        n_resp_q = 1 if shared else n_init

        self._req_q: List[TimedFifo[_ReqItem]] = [
            TimedFifo(config.pipe_depth) for _ in range(n_req_q)
        ]
        self._resp_q: List[TimedFifo[_RespItem]] = [
            TimedFifo(config.pipe_depth) for _ in range(n_resp_q)
        ]
        self._arb = [
            make_arbiter(
                config.arbitration,
                n_init,
                priorities=config.priorities,
                latency_budgets=config.latency_budgets,
                bandwidth_allocations=config.bandwidth_allocations,
                bandwidth_window=config.bandwidth_window,
            )
            for _ in range(n_req_q)
        ]
        resp_universe = n_targ + (n_init if shared else 1)
        self._resp_arb = [
            RoundRobinArbiter(resp_universe) for _ in range(n_resp_q)
        ]

        # Per-queue packet/chunk locks; per-initiator transaction state.
        self._busy_with: List[Optional[int]] = [None] * n_req_q
        self._chunk_hold: List[Optional[int]] = [None] * n_req_q
        self._resp_busy_with: List[Optional[int]] = [None] * n_resp_q
        self._open_packet: List[Optional[int]] = [None] * n_init  # route
        self._in_flight: List[List[_PacketRecord]] = [[] for _ in range(n_init)]
        self._err_resp: List[List[Tuple[RespCell, int]]] = [
            [] for _ in range(n_init)
        ]
        self._prog_regs = self._initial_prog_regs()
        self._stale_prog_writes: List[Tuple[int, int]] = []

        self._tick = self.signal("tick")
        self._err_pop = [self.signal(f"err_pop{i}") for i in range(n_init)]

        pin_universe = [
            sig for port in self.init_ports + self.targ_ports
            for sig in port.signals()
        ]
        if self.prog_port is not None:
            pin_universe += self.prog_port.signals()
        clk_writes = [self._tick]
        for port in self.targ_ports:
            clk_writes += port.request_signals()
        for port in self.init_ports:
            clk_writes += port.response_signals()
        self.clocked(
            self._on_clock,
            reads=pin_universe + [self._tick] + self._err_pop,
            writes=clk_writes,
        )
        sens = [self._tick]
        for port in self.init_ports:
            sens += [port.req, port.add, port.eop, port.lck]
        for port in self.targ_ports:
            sens += [port.gnt]
        self.comb(self._compute_grants, sens)
        rsens = [self._tick]
        for port in self.targ_ports:
            rsens += [port.r_req, port.r_src, port.r_eop]
        for port in self.init_ports:
            rsens += [port.r_gnt]
        self.comb(self._compute_response_grants, rsens)
        if self.prog_port is not None:
            self.comb(
                self._prog_comb,
                [self._tick, self.prog_port.req, self.prog_port.add],
            )

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------

    def _initial_prog_regs(self) -> List[int]:
        cfg = self.config
        if cfg.arbitration is ArbitrationPolicy.PROGRAMMABLE_PRIORITY:
            return list(self._arb[0].priorities)  # type: ignore[attr-defined]
        if cfg.arbitration is ArbitrationPolicy.LATENCY_BASED:
            return list(self._arb[0].budgets)  # type: ignore[attr-defined]
        return [0] * cfg.n_initiators

    def _req_queue_of(self, target: int) -> int:
        return 0 if self.shared else target

    def _resp_queue_of(self, initiator: int) -> int:
        return 0 if self.shared else initiator

    def _error_slot(self, initiator: int) -> int:
        n_targ = self.config.n_targets
        return n_targ + initiator if self.shared else n_targ

    def _route_of(self, initiator: int, address: int) -> int:
        target = self.amap.decode(address)
        if target is None or not self.config.path_allowed(initiator, target):
            return ERROR_TARGET
        return target

    def _current_destination(self, initiator: int) -> Optional[int]:
        port = self.init_ports[initiator]
        if not port.req.value:
            return None
        if self._open_packet[initiator] is not None:
            return self._open_packet[initiator]
        return self._route_of(initiator, port.add.value)

    def _may_open_packet(self, initiator: int, target: int) -> bool:
        records = self._in_flight[initiator]
        if len(records) >= self.config.max_outstanding:
            return False
        if self.config.protocol_type is ProtocolType.T2:
            return all(record.target == target for record in records)
        return True

    def _queue_output_fired(self, queue_idx: int) -> bool:
        item = self._req_q[queue_idx].visible_head(self.sim.now)
        if item is None:
            return False
        port = self.targ_ports[item.target]
        return bool(port.req.value and port.gnt.value)

    def _resp_queue_output_fired(self, queue_idx: int) -> bool:
        item = self._resp_q[queue_idx].visible_head(self.sim.now)
        if item is None:
            return False
        port = self.init_ports[item.dest]
        return bool(port.r_req.value and port.r_gnt.value)

    # ------------------------------------------------------------------
    # combinational: grants
    # ------------------------------------------------------------------

    def _compute_grants(self) -> None:
        grants = [0] * self.config.n_initiators
        for q in range(len(self._req_q)):
            if not self._req_q[q].can_accept(self._queue_output_fired(q)):
                continue
            candidates = []
            for i in range(self.config.n_initiators):
                dest = self._current_destination(i)
                if dest is None or dest == ERROR_TARGET:
                    continue
                if self._req_queue_of(dest) != q:
                    continue
                if self._open_packet[i] is None \
                        and not self._may_open_packet(i, dest):
                    continue
                candidates.append(i)
            if not candidates:
                continue
            if self._busy_with[q] is not None:
                winner = self._busy_with[q] \
                    if self._busy_with[q] in candidates else None
            elif self._chunk_hold[q] is not None:
                winner = self._chunk_hold[q] \
                    if self._chunk_hold[q] in candidates else None
            else:
                winner = self._arb[q].pick(candidates)
            if winner is not None:
                grants[winner] = 1
        for i in range(self.config.n_initiators):
            dest = self._current_destination(i)
            if dest != ERROR_TARGET:
                continue
            if self._open_packet[i] is not None \
                    or self._may_open_packet(i, ERROR_TARGET):
                grants[i] = 1
        for i, port in enumerate(self.init_ports):
            port.gnt.drive(grants[i])

    def _response_order_ok(self, initiator: int, source: int) -> bool:
        records = self._in_flight[initiator]
        if not records:
            # Spurious response: forward it; the checkers will flag it.
            return True
        if self.config.protocol_type is ProtocolType.T2:
            return records[0].target == source
        return any(record.target == source for record in records)

    def _compute_response_grants(self) -> None:
        r_gnts = [0] * self.config.n_targets
        err_pops = [0] * self.config.n_initiators
        for q in range(len(self._resp_q)):
            if not self._resp_q[q].can_accept(self._resp_queue_output_fired(q)):
                continue
            candidates: List[Tuple[int, int]] = []
            lock = self._resp_busy_with[q]
            for t, port in enumerate(self.targ_ports):
                if not port.r_req.value:
                    continue
                dest = port.r_src.value
                if dest >= self.config.n_initiators:
                    continue
                if self._resp_queue_of(dest) != q:
                    continue
                if lock is not None and lock != t:
                    continue
                if lock is None and not self._response_order_ok(dest, t):
                    continue
                candidates.append((t, dest))
            for i in range(self.config.n_initiators):
                if self._resp_queue_of(i) != q or not self._err_resp[i]:
                    continue
                if self._err_resp[i][0][1] > self.sim.now:
                    continue
                slot = self._error_slot(i)
                if lock is not None and lock != slot:
                    continue
                if lock is None and not self._response_order_ok(i, ERROR_TARGET):
                    continue
                candidates.append((slot, i))
            if not candidates:
                continue
            winner = self._resp_arb[q].pick([slot for slot, _ in candidates])
            if winner < self.config.n_targets:
                r_gnts[winner] = 1
            else:
                err_pops[dict(candidates)[winner]] = 1
        for t, port in enumerate(self.targ_ports):
            port.r_gnt.drive(r_gnts[t])
        for i, sig in enumerate(self._err_pop):
            sig.drive(err_pops[i])

    def _prog_comb(self) -> None:
        port = self.prog_port
        assert port is not None
        port.ack.drive(port.req.value)
        idx = (port.add.value >> 2) % max(1, len(self._prog_regs))
        port.rdata.drive(self._prog_regs[idx] & port.rdata.mask)

    # ------------------------------------------------------------------
    # clocked: the transaction engine
    # ------------------------------------------------------------------

    def _on_clock(self) -> None:
        now = self.sim.now
        cfg = self.config

        # What transferred during the previous cycle?
        req_fired = [
            port.request_cell() if port.request_fired else None
            for port in self.init_ports
        ]
        req_out_fired = [
            self._queue_output_fired(q) for q in range(len(self._req_q))
        ]
        resp_fired = [
            port.response_cell() if port.response_fired else None
            for port in self.targ_ports
        ]
        resp_out_fired = [
            self._resp_queue_output_fired(q) for q in range(len(self._resp_q))
        ]
        delivered = [
            self._resp_q[q].visible_head(now) if resp_out_fired[q] else None
            for q in range(len(self._resp_q))
        ]
        err_pops = [bool(sig.value) for sig in self._err_pop]

        # Pop consumed queue heads first (they fired during the previous
        # cycle and leave their stage at this edge).
        for q, fired in enumerate(req_out_fired):
            if fired:
                self._req_q[q].pop()
        for q, fired in enumerate(resp_out_fired):
            if fired:
                self._resp_q[q].pop()

        # Absorb granted request cells.
        for i, cell in enumerate(req_fired):
            if cell is None:
                continue
            self.stats["req_cells"] += 1
            if self._open_packet[i] is None:
                self._open_packet[i] = self._route_of(i, cell.add)
            target = self._open_packet[i]
            if target == ERROR_TARGET:
                if cell.eop:
                    self._absorb_error_packet(i, cell, now)
                continue
            q = self._req_queue_of(target)
            fwd = self._forward_cell(cell, i)
            self._req_q[q].push(
                _ReqItem(fwd, i, target), now + cfg.pipe_depth - 1
            )
            self._arb[q].on_grant_cycle(i)
            if cell.eop:
                self._close_packet(i, target, cell, q)
            else:
                self._busy_with[q] = i

        # Admit response cells from targets and error engines.
        for t, cell in enumerate(resp_fired):
            if cell is None:
                continue
            self.stats["resp_cells"] += 1
            dest = cell.r_src
            if dest >= cfg.n_initiators:
                self.stats["unmatched_responses"] += 1
                continue
            q = self._resp_queue_of(dest)
            self._resp_q[q].push(
                _RespItem(cell, t, dest), now + cfg.pipe_depth - 1
            )
            if cell.r_eop:
                self._resp_busy_with[q] = None
                self._resp_arb[q].on_packet_end(t)
            else:
                self._resp_busy_with[q] = t
        for i, popped in enumerate(err_pops):
            if not popped:
                continue
            cell, _avail = self._err_resp[i].pop(0)
            q = self._resp_queue_of(i)
            slot = self._error_slot(i)
            self._resp_q[q].push(
                _RespItem(cell, slot, i), now + cfg.pipe_depth - 1
            )
            if cell.r_eop:
                self._resp_busy_with[q] = None
                self._resp_arb[q].on_packet_end(slot)
            else:
                self._resp_busy_with[q] = slot

        # Retire responses that reached their initiator.
        for item in delivered:
            if item is not None and item.cell.r_eop:
                self._retire(item)

        # Arbiter ageing mirrors the specification's per-cycle semantics.
        for q, arbiter in enumerate(self._arb):
            waiting = []
            for i in range(cfg.n_initiators):
                dest = self._current_destination(i)
                if dest is not None and dest != ERROR_TARGET \
                        and self._req_queue_of(dest) == q:
                    waiting.append(i)
            arbiter.tick(waiting)

        self._prog_clock()
        self._drive_outputs(now)
        self._tick.drive(self._tick.value ^ 1)

    # -- engine helpers ------------------------------------------------------

    def _forward_cell(self, cell: Cell, initiator: int) -> Cell:
        src = initiator
        if BUG_SRC_TRUNCATION in self.bugs:
            src = initiator & 0b11
        fwd = replace(cell, src=src)
        if BUG_SUBWORD_LANES in self.bugs:
            offset = fwd.add % self.config.bus_bytes
            if offset:
                try:
                    opcode = Opcode.decode(fwd.opc)
                except OpcodeError:
                    opcode = None
                if opcode is not None and opcode.size < self.config.bus_bytes:
                    fwd = replace(
                        fwd,
                        data=fwd.data >> (offset * 8),
                        be=fwd.be >> offset,
                    )
        return fwd

    def _close_packet(self, initiator: int, target: int, eop_cell: Cell,
                      queue_idx: int) -> None:
        try:
            opcode: Optional[Opcode] = Opcode.decode(eop_cell.opc)
        except OpcodeError:
            opcode = None
        self._in_flight[initiator].append(
            _PacketRecord(target, eop_cell.tid, opcode)
        )
        self._open_packet[initiator] = None
        self._busy_with[queue_idx] = None
        if BUG_CHUNK_IGNORED in self.bugs:
            self._chunk_hold[queue_idx] = None
        else:
            self._chunk_hold[queue_idx] = initiator if eop_cell.lck else None
        if BUG_LRU_STUCK in self.bugs \
                and self.config.arbitration is ArbitrationPolicy.LRU:
            pass  # seeded bug: the recency update hook was forgotten
        else:
            self._arb[queue_idx].on_packet_end(initiator)
        if BUG_PROG_STALE in self.bugs and self._stale_prog_writes:
            pending, self._stale_prog_writes = self._stale_prog_writes, []
            for idx, value in pending:
                self._apply_prog(idx, value)

    def _absorb_error_packet(self, initiator: int, eop_cell: Cell,
                             now: int) -> None:
        self.stats["error_packets"] += 1
        try:
            opcode: Optional[Opcode] = Opcode.decode(eop_cell.opc)
        except OpcodeError:
            opcode = None
        self._in_flight[initiator].append(
            _PacketRecord(ERROR_TARGET, eop_cell.tid, opcode)
        )
        self._open_packet[initiator] = None
        if opcode is None:
            cells = [RespCell(r_opc=1, r_eop=1, r_src=initiator,
                              r_tid=eop_cell.tid)]
        else:
            cells = build_response_cells(
                opcode, self.config.bus_bytes, self.config.protocol_type,
                error=True, src=initiator, tid=eop_cell.tid,
                address=eop_cell.add,
            )
        self._err_resp[initiator].extend((cell, now) for cell in cells)

    def _retire(self, item: _RespItem) -> None:
        source = item.source
        if source >= self.config.n_targets:
            source = ERROR_TARGET
        records = self._in_flight[item.dest]
        if not records:
            self.stats["unmatched_responses"] += 1
            return
        if self.config.protocol_type is ProtocolType.T2:
            records.pop(0)
            return
        for idx, record in enumerate(records):
            if record.target == source and record.tid == item.cell.r_tid:
                records.pop(idx)
                return
        self.stats["unmatched_responses"] += 1
        records.pop(0)

    def _prog_clock(self) -> None:
        port = self.prog_port
        if port is None:
            return
        if not (port.req.value and port.ack.value):
            return
        if port.opc.value != T1_WRITE:
            return
        idx = (port.add.value >> 2) % max(1, len(self._prog_regs))
        value = port.wdata.value
        self._prog_regs[idx] = value
        if BUG_PROG_STALE in self.bugs:
            self._stale_prog_writes.append((idx, value))
        else:
            self._apply_prog(idx, value)

    def _apply_prog(self, idx: int, value: int) -> None:
        cfg = self.config
        if idx >= cfg.n_initiators:
            return
        if cfg.arbitration is ArbitrationPolicy.PROGRAMMABLE_PRIORITY:
            for arbiter in self._arb:
                assert isinstance(arbiter, ProgrammablePriorityArbiter)
                arbiter.set_priority(idx, value)
        elif cfg.arbitration is ArbitrationPolicy.LATENCY_BASED:
            for arbiter in self._arb:
                assert isinstance(arbiter, LatencyArbiter)
                arbiter.set_budget(idx, max(1, value))

    def _drive_outputs(self, now: int) -> None:
        visible: Dict[int, _ReqItem] = {}
        for queue in self._req_q:
            item = queue.visible_head(now)
            if item is not None:
                visible[item.target] = item
        for t, port in enumerate(self.targ_ports):
            item = visible.get(t)
            if item is None:
                port.idle_request()
                port.add.drive(0)
                port.opc.drive(0)
                port.data.drive(0)
                port.be.drive(0)
                port.tid.drive(0)
                port.src.drive(0)
                port.pri.drive(0)
            else:
                port.drive_request(item.cell)
        visible_resp: Dict[int, _RespItem] = {}
        for queue in self._resp_q:
            item = queue.visible_head(now)
            if item is not None:
                visible_resp[item.dest] = item
        for i, port in enumerate(self.init_ports):
            item = visible_resp.get(i)
            if item is None:
                port.idle_response()
                port.r_opc.drive(0)
                port.r_data.drive(0)
                port.r_src.drive(0)
                port.r_tid.drive(0)
            else:
                port.drive_response(item.cell)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def outstanding_count(self, initiator: int) -> int:
        return len(self._in_flight[initiator])

    def prog_register(self, idx: int) -> int:
        return self._prog_regs[idx]
