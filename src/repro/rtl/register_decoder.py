"""RTL register decoder.

The fourth basic STBus component (Section 3): a register-file target for
control/status access.  It exposes a Type II/III port; word and sub-word
loads/stores (and RMW/SWAP, for semaphore-style registers) address a
small register window that wraps — operations wider than the bus width
are answered with an error response.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..kernel import Module, Simulator
from ..stbus import (
    Cell,
    OpKind,
    Opcode,
    OpcodeError,
    ProtocolType,
    RespCell,
    StbusPort,
    build_response_cells,
    request_data_from_cells,
)


class RtlRegisterDecoder(Module):
    """Cycle-accurate register-file target."""

    view = "rtl"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        port: StbusPort,
        protocol: ProtocolType,
        n_regs: int = 16,
        latency: int = 1,
        parent: Optional[Module] = None,
    ):
        super().__init__(sim, name, parent)
        if n_regs < 1 or latency < 1:
            raise ValueError("n_regs and latency must be >= 1")
        self.port = port
        self.protocol = protocol
        self.n_regs = n_regs
        self.latency = latency
        self.window = n_regs * port.bus_bytes
        self._bytes: Dict[int, int] = {}
        self._assembly: List[Cell] = []
        self._jobs: List[tuple] = []  # (cells, ready_cycle)
        self._resp: List[RespCell] = []
        self._resp_idx = 0
        self.errors = 0
        self._tick = self.signal("tick")
        self.clocked(
            self._clk,
            reads=port.request_signals()
            + [port.gnt, port.r_req, port.r_gnt, self._tick],
            writes=port.response_signals() + [self._tick],
        )
        self.comb(self._gnt_tie, [self._tick])

    def _gnt_tie(self) -> None:
        self.port.gnt.drive(1)

    # -- register access ---------------------------------------------------------

    def read_register(self, index: int) -> bytes:
        base = (index % self.n_regs) * self.port.bus_bytes
        return bytes(self._bytes.get(base + k, 0)
                     for k in range(self.port.bus_bytes))

    def write_register(self, index: int, data: bytes) -> None:
        base = (index % self.n_regs) * self.port.bus_bytes
        for k, byte in enumerate(data[: self.port.bus_bytes]):
            self._bytes[base + k] = byte

    def _read(self, address: int, size: int) -> bytes:
        base = address % self.window
        return bytes(self._bytes.get((base + k) % self.window, 0)
                     for k in range(size))

    def _write(self, address: int, data: bytes) -> None:
        base = address % self.window
        for k, byte in enumerate(data):
            self._bytes[(base + k) % self.window] = byte

    # -- engine ----------------------------------------------------------------

    def _clk(self) -> None:
        port = self.port
        now = self.sim.now
        if port.request_fired:
            cell = port.request_cell()
            self._assembly.append(cell)
            if cell.eop:
                cells, self._assembly = self._assembly, []
                self._jobs.append((self._execute(cells), now + self.latency))
        if self._resp and port.response_fired:
            self._resp_idx += 1
            if self._resp_idx >= len(self._resp):
                self._resp = []
                self._resp_idx = 0
        if not self._resp and self._jobs and self._jobs[0][1] <= now:
            self._resp = self._jobs.pop(0)[0]
            self._resp_idx = 0
        if self._resp:
            port.drive_response(self._resp[self._resp_idx])
        else:
            port.idle_response()
            port.r_opc.drive(0)
            port.r_data.drive(0)
            port.r_src.drive(0)
            port.r_tid.drive(0)
        self._tick.drive(self._tick.value ^ 1)

    def _execute(self, cells: List[Cell]) -> List[RespCell]:
        first = cells[0]
        bus_bytes = self.port.bus_bytes
        try:
            opcode = Opcode.decode(first.opc)
        except OpcodeError:
            self.errors += 1
            return [RespCell(r_opc=1, r_eop=1, r_src=first.src,
                             r_tid=first.tid)]
        kind = opcode.kind
        supported = (
            opcode.size <= bus_bytes
            or kind in (OpKind.FLUSH, OpKind.PURGE)
        )
        if not supported:
            self.errors += 1
            return build_response_cells(
                opcode, bus_bytes, self.protocol, error=True,
                src=first.src, tid=first.tid, address=first.add,
            )
        data = b""
        if kind in (OpKind.LOAD, OpKind.READEX):
            data = self._read(first.add, opcode.size)
        elif kind is OpKind.STORE:
            self._write(first.add, request_data_from_cells(cells, bus_bytes))
        elif kind in (OpKind.RMW, OpKind.SWAP):
            data = self._read(first.add, opcode.size)
            self._write(first.add, request_data_from_cells(cells, bus_bytes))
        return build_response_cells(
            opcode, bus_bytes, self.protocol, data=data,
            src=first.src, tid=first.tid, address=first.add,
        )
