"""Elastic register pipeline used by the RTL node's datapaths.

The node inserts ``pipe_depth`` register stages between the arbitrated
input and each output port.  The pipeline is *elastic*: a stage advances
whenever the next stage is free (bubbles collapse), and the whole pipe
accepts a new payload whenever any stage is free or the output is being
consumed this cycle — the classic ready-chain:

    ready[D-1] = not valid[D-1] or output_fired
    ready[k]   = not valid[k]   or ready[k+1]

State lives in plain Python (the stage registers); the surrounding module
must mirror whatever the grant logic needs into signals or re-evaluate its
combinational processes every cycle (the node uses a tick signal for
that).
"""

from __future__ import annotations

from typing import Generic, List, Optional, TypeVar

T = TypeVar("T")


class Pipe(Generic[T]):
    """``depth`` register stages with bubble collapsing.

    Call pattern per clock edge (from a clocked process):

    1. Read :attr:`output` / :attr:`output_valid` — these reflect the
       value presented on the port *during the previous cycle*.
    2. Call :meth:`advance` with whether the output was consumed and the
       optional newly accepted payload.
    """

    def __init__(self, depth: int):
        if depth < 1:
            raise ValueError("pipe depth must be >= 1")
        self.depth = depth
        self._valid: List[bool] = [False] * depth
        self._data: List[Optional[T]] = [None] * depth

    @property
    def output_valid(self) -> bool:
        return self._valid[-1]

    @property
    def output(self) -> Optional[T]:
        """Payload at the output stage (None when not valid)."""
        return self._data[-1] if self._valid[-1] else None

    @property
    def occupancy(self) -> int:
        return sum(self._valid)

    def can_accept(self, output_fired: bool) -> bool:
        """The combinational ready chain seen by the grant logic."""
        return output_fired or self.occupancy < self.depth

    def advance(self, output_fired: bool, load: Optional[T] = None) -> None:
        """One clock edge: pop the consumed output, shift, load stage 0.

        ``load`` must only be non-None when :meth:`can_accept` was true in
        the pre-edge cycle (the grant logic guarantees this); violating it
        raises ``OverflowError`` to catch node bugs early.
        """
        if output_fired:
            if not self._valid[-1]:
                raise RuntimeError("output consumed while pipe output invalid")
            self._valid[-1] = False
            self._data[-1] = None
        # Shift from the output backwards so a cell moves at most one stage.
        for stage in range(self.depth - 1, 0, -1):
            if not self._valid[stage] and self._valid[stage - 1]:
                self._valid[stage] = True
                self._data[stage] = self._data[stage - 1]
                self._valid[stage - 1] = False
                self._data[stage - 1] = None
        if load is not None:
            if self._valid[0]:
                raise OverflowError("pipe stage 0 loaded while occupied")
            self._valid[0] = True
            self._data[0] = load

    def flush(self) -> None:
        self._valid = [False] * self.depth
        self._data = [None] * self.depth

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cells = ["#" if v else "." for v in self._valid]
        return f"Pipe[{''.join(cells)}]"
