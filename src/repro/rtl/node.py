"""RTL view of the STBus node.

The node is "the key IP of an STBus interconnect system ... responsible for
performing the arbitration among the requests issued by the initiators ...
and among the response-requests issued by the targets ... and for the
routing of the information" (Section 5).

This is the signal-level, cycle-accurate implementation: combinational
grant logic plus registered datapaths built from
:class:`~repro.rtl.pipeline.Pipe` stages.  The BCA view
(:mod:`repro.bca.node`) reimplements the same specification with
transaction-level queues; the whole point of the paper's flow is verifying
that the two stay cycle-aligned at every port.

Microarchitecture summary
-------------------------

* **Request path** — per arbitration domain (one per target for crossbars,
  a single domain for the shared bus), a ``pipe_depth``-stage elastic
  pipeline feeds the target port(s).  Grant is combinational: the domain
  arbiter picks among eligible initiators whenever the domain pipe can
  accept a cell.  Arbitration is packet-level: the first accepted cell
  locks the domain to its initiator until the ``eop`` cell, and ``lck`` on
  the ``eop`` cell holds the lock for the next packet (chunks).
* **Response path** — mirrored: per response domain (one per initiator, or
  a single shared one), a round-robin arbiter admits response cells from
  the targets (matched on ``r_src``) and from the node's internal *error
  engine*, through a ``pipe_depth`` pipeline to the initiator port.
* **Ordering** — Type II traffic must stay ordered: an initiator is only
  granted toward a target when all its outstanding responses come from
  that same target, and responses are admitted strictly in request order.
  Type III lifts both restrictions (out-of-order, matched by ``tid``).
* **Error engine** — requests that decode to no target (or to a forbidden
  partial-crossbar path) are absorbed and answered with an error response
  of the protocol-correct length.
* **Programming port** — an optional Type I port exposing one register per
  initiator that rewrites the arbitration parameters (priority or latency
  budget) on the fly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..kernel import Module, Simulator
from ..stbus import (
    Architecture,
    ArbitrationPolicy,
    Cell,
    NodeConfig,
    Opcode,
    OpcodeError,
    ProtocolType,
    RespCell,
    RoundRobinArbiter,
    StbusPort,
    T1_READ,
    T1_WRITE,
    Type1Port,
    build_response_cells,
    make_arbiter,
)
from ..stbus.arbitration import (
    LatencyArbiter,
    ProgrammablePriorityArbiter,
)
from .pipeline import Pipe

#: Sentinel "target" index for requests absorbed by the error engine.
ERROR_TARGET = -1


@dataclass
class _ReqFlit:
    """A request cell in flight through the node."""

    cell: Cell
    initiator: int
    target: int


@dataclass
class _RespFlit:
    """A response cell in flight through the node."""

    cell: RespCell
    source: int  # target index, or n_targets for the error engine
    dest: int  # initiator index


@dataclass
class _Outstanding:
    """One request packet awaiting its response."""

    target: int  # target index or ERROR_TARGET
    tid: int
    opcode: Optional[Opcode]


class RtlNode(Module):
    """Cycle-accurate STBus node (see module docstring)."""

    #: Which design view this class implements (reports/regression use it).
    view = "rtl"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        config: NodeConfig,
        init_ports: Sequence[StbusPort],
        targ_ports: Sequence[StbusPort],
        prog_port: Optional[Type1Port] = None,
        parent: Optional[Module] = None,
    ):
        super().__init__(sim, name, parent)
        config.validate()
        if len(init_ports) != config.n_initiators:
            raise ValueError("init_ports count does not match configuration")
        if len(targ_ports) != config.n_targets:
            raise ValueError("targ_ports count does not match configuration")
        for port in list(init_ports) + list(targ_ports):
            if port.width_bits != config.data_width_bits:
                raise ValueError(
                    f"port {port.name} width {port.width_bits} != node width "
                    f"{config.data_width_bits}"
                )
        if config.has_programming_port and prog_port is None:
            raise ValueError("configuration requires a programming port")
        self.config = config
        self.init_ports = list(init_ports)
        self.targ_ports = list(targ_ports)
        self.prog_port = prog_port
        self.amap = config.resolved_map
        self.stats: Dict[str, int] = {
            "req_cells": 0,
            "resp_cells": 0,
            "error_packets": 0,
            "unmatched_responses": 0,
        }

        n_init = config.n_initiators
        n_targ = config.n_targets
        shared = config.architecture is Architecture.SHARED_BUS
        self.shared = shared

        # -- arbitration domains (request side) --------------------------------
        n_domains = 1 if shared else n_targ
        self.req_arbiters = [
            make_arbiter(
                config.arbitration,
                n_init,
                priorities=config.priorities,
                latency_budgets=config.latency_budgets,
                bandwidth_allocations=config.bandwidth_allocations,
                bandwidth_window=config.bandwidth_window,
            )
            for _ in range(n_domains)
        ]
        self.req_pipes: List[Pipe[_ReqFlit]] = [
            Pipe(config.pipe_depth) for _ in range(n_domains)
        ]
        # Packet/chunk locks per request domain.
        self._in_packet: List[Optional[int]] = [None] * n_domains
        self._chunk_owner: List[Optional[int]] = [None] * n_domains

        # -- response domains ---------------------------------------------------
        # Requester universe: targets, then one error engine per initiator
        # (shared) or the single error-engine slot n_targets (crossbar).
        n_resp_domains = 1 if shared else n_init
        resp_universe = n_targ + (n_init if shared else 1)
        self.resp_arbiters = [
            RoundRobinArbiter(resp_universe) for _ in range(n_resp_domains)
        ]
        self.resp_pipes: List[Pipe[_RespFlit]] = [
            Pipe(config.pipe_depth) for _ in range(n_resp_domains)
        ]
        self._resp_in_packet: List[Optional[int]] = [None] * n_resp_domains

        # -- per-initiator protocol state ---------------------------------------
        self._route: List[Optional[int]] = [None] * n_init
        self._outstanding: List[List[_Outstanding]] = [[] for _ in range(n_init)]
        self._err_queue: List[List[Tuple[RespCell, int]]] = [
            [] for _ in range(n_init)
        ]

        # -- programming registers -----------------------------------------------
        self._prog_regs: List[int] = self._initial_prog_regs()

        # -- internal signals ------------------------------------------------------
        self._tick = self.signal("tick")
        self._err_pop = [self.signal(f"err_pop{i}") for i in range(n_init)]

        # -- processes ---------------------------------------------------------------
        pin_universe = [
            sig for port in self.init_ports + self.targ_ports
            for sig in port.signals()
        ]
        if self.prog_port is not None:
            pin_universe += self.prog_port.signals()
        clk_writes = [self._tick]
        for port in self.targ_ports:
            clk_writes += port.request_signals()
        for port in self.init_ports:
            clk_writes += port.response_signals()
        self.clocked(
            self._clk_proc,
            reads=pin_universe + [self._tick] + self._err_pop,
            writes=clk_writes,
        )
        sens = [self._tick]
        for port in self.init_ports:
            sens += [port.req, port.add, port.eop, port.lck]
        for port in self.targ_ports:
            sens += [port.gnt]
        self.comb(self._grant_proc, sens)

        rsens = [self._tick]
        for port in self.targ_ports:
            rsens += [port.r_req, port.r_src, port.r_eop]
        for port in self.init_ports:
            rsens += [port.r_gnt]
        self.comb(self._resp_grant_proc, rsens)

        if self.prog_port is not None:
            self.comb(
                self._prog_comb,
                [self._tick, self.prog_port.req, self.prog_port.add],
            )

    # ------------------------------------------------------------------
    # configuration helpers
    # ------------------------------------------------------------------

    def _initial_prog_regs(self) -> List[int]:
        cfg = self.config
        n = cfg.n_initiators
        if cfg.arbitration is ArbitrationPolicy.PROGRAMMABLE_PRIORITY:
            arb = self.req_arbiters[0]
            assert isinstance(arb, ProgrammablePriorityArbiter)
            return list(arb.priorities)
        if cfg.arbitration is ArbitrationPolicy.LATENCY_BASED:
            arb = self.req_arbiters[0]
            assert isinstance(arb, LatencyArbiter)
            return list(arb.budgets)
        return [0] * n

    def _domain_of(self, target: int) -> int:
        return 0 if self.shared else target

    def _resp_domain_of(self, initiator: int) -> int:
        return 0 if self.shared else initiator

    def _error_slot(self, initiator: int) -> int:
        """Requester index of initiator's error engine in resp arbitration."""
        n_targ = self.config.n_targets
        return n_targ + initiator if self.shared else n_targ

    # ------------------------------------------------------------------
    # request-side eligibility (pure; used by both comb and clocked code)
    # ------------------------------------------------------------------

    def _decode(self, initiator: int, address: int) -> int:
        """Target index for a new packet, or ERROR_TARGET."""
        target = self.amap.decode(address)
        if target is None or not self.config.path_allowed(initiator, target):
            return ERROR_TARGET
        return target

    def _head_target(self, initiator: int) -> Optional[int]:
        """Where initiator's current request cell is headed (None if idle)."""
        port = self.init_ports[initiator]
        if not port.req.value:
            return None
        if self._route[initiator] is not None:
            return self._route[initiator]
        return self._decode(initiator, port.add.value)

    def _ordering_ok(self, initiator: int, target: int) -> bool:
        """May initiator open a new packet toward ``target``?"""
        outstanding = self._outstanding[initiator]
        if len(outstanding) >= self.config.max_outstanding:
            return False
        if self.config.protocol_type is ProtocolType.T2:
            return all(entry.target == target for entry in outstanding)
        return True

    def _candidates(self, domain: int) -> List[int]:
        """Initiators eligible for request arbitration in ``domain`` now."""
        result = []
        for i in range(self.config.n_initiators):
            target = self._head_target(i)
            if target is None or target == ERROR_TARGET:
                continue
            if self._domain_of(target) != domain:
                continue
            if self._route[i] is None and not self._ordering_ok(i, target):
                continue
            result.append(i)
        return result

    def _domain_output_fired(self, domain: int) -> bool:
        pipe = self.req_pipes[domain]
        flit = pipe.output
        if flit is None:
            return False
        port = self.targ_ports[flit.target]
        return bool(port.req.value and port.gnt.value)

    # ------------------------------------------------------------------
    # combinational grant logic
    # ------------------------------------------------------------------

    def _grant_proc(self) -> None:
        grants = [0] * self.config.n_initiators
        for domain, pipe in enumerate(self.req_pipes):
            if not pipe.can_accept(self._domain_output_fired(domain)):
                continue
            candidates = self._candidates(domain)
            if not candidates:
                continue
            if self._in_packet[domain] is not None:
                owner = self._in_packet[domain]
                winner = owner if owner in candidates else None
            elif self._chunk_owner[domain] is not None:
                owner = self._chunk_owner[domain]
                winner = owner if owner in candidates else None
            else:
                winner = self.req_arbiters[domain].pick(candidates)
            if winner is not None:
                grants[winner] = 1
        # Error-engine grants (always ready; disjoint from domain grants).
        for i in range(self.config.n_initiators):
            target = self._head_target(i)
            if target != ERROR_TARGET:
                continue
            if self._route[i] is not None or self._ordering_ok(i, ERROR_TARGET):
                grants[i] = 1
        for i, port in enumerate(self.init_ports):
            port.gnt.drive(grants[i])

    def _resp_candidates(self, domain: int) -> List[Tuple[int, int]]:
        """(requester_slot, dest_initiator) pairs eligible for ``domain``."""
        result = []
        lock = self._resp_in_packet[domain]
        for t, port in enumerate(self.targ_ports):
            if not port.r_req.value:
                continue
            dest = port.r_src.value
            if dest >= self.config.n_initiators:
                continue  # corrupt src: no route (checkers will flag the DUT)
            if self._resp_domain_of(dest) != domain:
                continue
            if lock is not None and lock != t:
                continue
            if lock is None and not self._resp_order_ok(dest, t):
                continue
            result.append((t, dest))
        for i in range(self.config.n_initiators):
            if self._resp_domain_of(i) != domain:
                continue
            if not self._err_queue[i]:
                continue
            cell, avail = self._err_queue[i][0]
            if avail > self.sim.now:
                continue
            slot = self._error_slot(i)
            if lock is not None and lock != slot:
                continue
            if lock is None and not self._resp_order_ok(i, ERROR_TARGET):
                continue
            result.append((slot, i))
        return result

    def _resp_order_ok(self, initiator: int, source: int) -> bool:
        """May a response from ``source`` start toward ``initiator``?

        Type II responses must return in request order, so only the head
        of the outstanding queue may answer.  ``source`` is a target index
        or ERROR_TARGET for the error engine.
        """
        outstanding = self._outstanding[initiator]
        if not outstanding:
            # Spurious response (e.g. a corrupted src tag): the node does
            # not police targets — forward it and let the checkers flag it.
            return True
        if self.config.protocol_type is ProtocolType.T2:
            return outstanding[0].target == source
        return any(entry.target == source for entry in outstanding)

    def _resp_grant_proc(self) -> None:
        r_gnts = [0] * self.config.n_targets
        err_pops = [0] * self.config.n_initiators
        for domain, pipe in enumerate(self.resp_pipes):
            flit = pipe.output
            fired = bool(
                flit is not None
                and self.init_ports[flit.dest].r_req.value
                and self.init_ports[flit.dest].r_gnt.value
            )
            if not pipe.can_accept(fired):
                continue
            candidates = self._resp_candidates(domain)
            if not candidates:
                continue
            slots = [slot for slot, _ in candidates]
            winner = self.resp_arbiters[domain].pick(slots)
            if winner < self.config.n_targets:
                r_gnts[winner] = 1
            else:
                dest = dict(candidates)[winner]
                err_pops[dest] = 1
        for t, port in enumerate(self.targ_ports):
            port.r_gnt.drive(r_gnts[t])
        for i, sig in enumerate(self._err_pop):
            sig.drive(err_pops[i])

    def _prog_comb(self) -> None:
        port = self.prog_port
        assert port is not None
        port.ack.drive(port.req.value)
        idx = (port.add.value >> 2) % max(1, len(self._prog_regs))
        port.rdata.drive(self._prog_regs[idx] & port.rdata.mask)

    # ------------------------------------------------------------------
    # clocked datapath
    # ------------------------------------------------------------------

    def _clk_proc(self) -> None:
        cfg = self.config
        # 1. Observe what transferred during the previous cycle.
        fired_req: List[Optional[Cell]] = []
        for port in self.init_ports:
            fired_req.append(
                port.request_cell() if port.request_fired else None
            )
        fired_out = [self._domain_output_fired(d)
                     for d in range(len(self.req_pipes))]
        fired_resp_in: List[Optional[RespCell]] = []
        for port in self.targ_ports:
            fired_resp_in.append(
                port.response_cell() if port.response_fired else None
            )
        resp_out_fired = []
        for domain, pipe in enumerate(self.resp_pipes):
            flit = pipe.output
            resp_out_fired.append(
                bool(
                    flit is not None
                    and self.init_ports[flit.dest].response_fired
                )
            )
        fired_resp_out_flits: List[Optional[_RespFlit]] = [
            self.resp_pipes[d].output if resp_out_fired[d] else None
            for d in range(len(self.resp_pipes))
        ]
        err_pops = [bool(sig.value) for sig in self._err_pop]

        # 2. Route freshly accepted request cells and update protocol state.
        loads: Dict[int, _ReqFlit] = {}  # domain -> flit
        for i, cell in enumerate(fired_req):
            if cell is None:
                continue
            self.stats["req_cells"] += 1
            if self._route[i] is None:
                self._route[i] = self._decode(i, cell.add)
            target = self._route[i]
            if target != ERROR_TARGET:
                domain = self._domain_of(target)
                flit = _ReqFlit(replace(cell, src=i), i, target)
                loads[domain] = flit
                self.req_arbiters[domain].on_grant_cycle(i)
                if cell.eop:
                    self._finish_request_packet(i, target, cell)
                else:
                    self._in_packet[domain] = i
            else:
                if cell.eop:
                    self._finish_request_packet(i, ERROR_TARGET, cell)

        # 3. Advance request pipes.
        for domain, pipe in enumerate(self.req_pipes):
            pipe.advance(fired_out[domain], loads.get(domain))

        # 4. Admit response cells (targets and error engines) and advance
        #    the response pipes.
        resp_loads: Dict[int, _RespFlit] = {}
        for t, cell in enumerate(fired_resp_in):
            if cell is None:
                continue
            self.stats["resp_cells"] += 1
            dest = cell.r_src
            if dest >= cfg.n_initiators:
                self.stats["unmatched_responses"] += 1
                continue
            domain = self._resp_domain_of(dest)
            resp_loads[domain] = _RespFlit(cell, t, dest)
            if cell.r_eop:
                self._resp_in_packet[domain] = None
                self.resp_arbiters[domain].on_packet_end(t)
            else:
                self._resp_in_packet[domain] = t
        for i, popped in enumerate(err_pops):
            if not popped:
                continue
            cell, _avail = self._err_queue[i].pop(0)
            domain = self._resp_domain_of(i)
            slot = self._error_slot(i)
            resp_loads[domain] = _RespFlit(cell, slot, i)
            if cell.r_eop:
                self._resp_in_packet[domain] = None
                self.resp_arbiters[domain].on_packet_end(slot)
            else:
                self._resp_in_packet[domain] = slot
        for domain, pipe in enumerate(self.resp_pipes):
            pipe.advance(resp_out_fired[domain], resp_loads.get(domain))

        # 5. Retire responses delivered to initiators.
        for flit in fired_resp_out_flits:
            if flit is None or not flit.cell.r_eop:
                continue
            self._retire_outstanding(flit)

        # 6. Per-cycle arbiter ageing.
        for domain, arbiter in enumerate(self.req_arbiters):
            waiting = []
            for i in range(cfg.n_initiators):
                target = self._head_target(i)
                if target is not None and target != ERROR_TARGET \
                        and self._domain_of(target) == domain:
                    waiting.append(i)
            arbiter.tick(waiting)

        # 7. Programming port.
        self._prog_clk()

        # 8. Drive registered outputs.
        self._drive_request_outputs()
        self._drive_response_outputs()
        self._tick.drive(self._tick.value ^ 1)

    # -- clocked helpers ------------------------------------------------------

    def _finish_request_packet(self, initiator: int, target: int, eop_cell: Cell) -> None:
        try:
            opcode: Optional[Opcode] = Opcode.decode(eop_cell.opc)
        except OpcodeError:
            opcode = None
        self._outstanding[initiator].append(
            _Outstanding(target, eop_cell.tid, opcode)
        )
        self._route[initiator] = None
        if target == ERROR_TARGET:
            self._queue_error_response(initiator, eop_cell, opcode)
            return
        domain = self._domain_of(target)
        self._in_packet[domain] = None
        self._chunk_owner[domain] = initiator if eop_cell.lck else None
        self.req_arbiters[domain].on_packet_end(initiator)

    def _queue_error_response(
        self, initiator: int, eop_cell: Cell, opcode: Optional[Opcode]
    ) -> None:
        self.stats["error_packets"] += 1
        if opcode is None:
            cells = [RespCell(r_opc=1, r_eop=1, r_src=initiator,
                              r_tid=eop_cell.tid)]
        else:
            cells = build_response_cells(
                opcode,
                self.config.bus_bytes,
                self.config.protocol_type,
                error=True,
                src=initiator,
                tid=eop_cell.tid,
                address=eop_cell.add,
            )
        avail = self.sim.now
        self._err_queue[initiator].extend((cell, avail) for cell in cells)

    def _retire_outstanding(self, flit: _RespFlit) -> None:
        initiator = flit.dest
        source = flit.source
        if source >= self.config.n_targets:  # error engine slot
            source = ERROR_TARGET
        outstanding = self._outstanding[initiator]
        if not outstanding:
            self.stats["unmatched_responses"] += 1
            return
        if self.config.protocol_type is ProtocolType.T2:
            outstanding.pop(0)
            return
        for idx, entry in enumerate(outstanding):
            if entry.target == source and entry.tid == flit.cell.r_tid:
                outstanding.pop(idx)
                return
        self.stats["unmatched_responses"] += 1
        outstanding.pop(0)

    def _prog_clk(self) -> None:
        port = self.prog_port
        if port is None:
            return
        if not (port.req.value and port.ack.value):
            return
        if port.opc.value != T1_WRITE:
            return
        idx = (port.add.value >> 2) % max(1, len(self._prog_regs))
        value = port.wdata.value
        self._prog_regs[idx] = value
        self._apply_prog_register(idx, value)

    def _apply_prog_register(self, idx: int, value: int) -> None:
        cfg = self.config
        if idx >= cfg.n_initiators:
            return
        if cfg.arbitration is ArbitrationPolicy.PROGRAMMABLE_PRIORITY:
            for arbiter in self.req_arbiters:
                assert isinstance(arbiter, ProgrammablePriorityArbiter)
                arbiter.set_priority(idx, value)
        elif cfg.arbitration is ArbitrationPolicy.LATENCY_BASED:
            for arbiter in self.req_arbiters:
                assert isinstance(arbiter, LatencyArbiter)
                arbiter.set_budget(idx, max(1, value))

    def _drive_request_outputs(self) -> None:
        heads: Dict[int, _ReqFlit] = {}
        for pipe in self.req_pipes:
            flit = pipe.output
            if flit is not None:
                heads[flit.target] = flit
        for t, port in enumerate(self.targ_ports):
            flit = heads.get(t)
            if flit is None:
                port.idle_request()
                port.add.drive(0)
                port.opc.drive(0)
                port.data.drive(0)
                port.be.drive(0)
                port.tid.drive(0)
                port.src.drive(0)
                port.pri.drive(0)
            else:
                port.drive_request(flit.cell)

    def _drive_response_outputs(self) -> None:
        heads: Dict[int, _RespFlit] = {}
        for pipe in self.resp_pipes:
            flit = pipe.output
            if flit is not None:
                heads[flit.dest] = flit
        for i, port in enumerate(self.init_ports):
            flit = heads.get(i)
            if flit is None:
                port.idle_response()
                port.r_opc.drive(0)
                port.r_data.drive(0)
                port.r_src.drive(0)
                port.r_tid.drive(0)
            else:
                port.drive_response(flit.cell)

    # ------------------------------------------------------------------
    # introspection (tests, checkers, reports)
    # ------------------------------------------------------------------

    def outstanding_count(self, initiator: int) -> int:
        return len(self._outstanding[initiator])

    def prog_register(self, idx: int) -> int:
        return self._prog_regs[idx]
