"""RTL size and type converters.

Section 3 names four basic interconnect components: nodes, size
converters, type converters and register decoders.  Both converters are
*bridges*: a slave-side (upstream) port facing an initiator or a node, a
master-side (downstream) port facing a target or another node, and a
repacking function between them.

Microarchitecture: store-and-forward at packet granularity.  A request
packet is assembled upstream, repacked
(:func:`~repro.stbus.repack.repack_request`) and re-emitted downstream
starting the cycle after its last cell arrived; responses take the mirror
path.  A Type II upstream side additionally gets a reorder stage so
responses always return in request order, whatever the downstream side
does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..kernel import Module, Simulator
from ..stbus import (
    Cell,
    Opcode,
    OpcodeError,
    ProtocolType,
    RespCell,
    StbusPort,
)
from ..stbus.repack import RepackError, repack_request, repack_response


@dataclass
class _Forwarded:
    """Bookkeeping for a request packet sent downstream."""

    order: int
    src: int
    tid: int  # upstream tid, restored on the response
    down_tid: int  # converter-assigned tid on the downstream link
    opcode: Opcode
    address: int


class RtlBridge(Module):
    """Store-and-forward protocol/width bridge (see module docstring).

    Subclasses fix the legal parameter combinations; instantiate
    :class:`RtlSizeConverter` or :class:`RtlTypeConverter` rather than
    this class directly.
    """

    view = "rtl"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        up_port: StbusPort,
        down_port: StbusPort,
        up_protocol: ProtocolType,
        down_protocol: ProtocolType,
        queue_depth: int = 2,
        parent: Optional[Module] = None,
    ):
        super().__init__(sim, name, parent)
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.up = up_port
        self.down = down_port
        self.up_protocol = up_protocol
        self.down_protocol = down_protocol
        self.queue_depth = queue_depth
        self.stats: Dict[str, int] = {"requests": 0, "responses": 0,
                                      "repack_errors": 0}

        # Request path.
        self._req_assembly: List[Cell] = []
        self._req_queue: List[List[Cell]] = []  # repacked, ready to emit
        self._req_cells: List[Cell] = []  # currently emitting downstream
        self._req_idx = 0

        # Response path.
        self._order_counter = 0
        self._down_tid_counter = 0
        self._forwarded: List[_Forwarded] = []
        self._resp_assembly: List[RespCell] = []
        self._reorder: Dict[int, List[RespCell]] = {}
        self._next_to_deliver = 0
        self._resp_queue: List[List[RespCell]] = []
        self._resp_cells: List[RespCell] = []
        self._resp_idx = 0

        self._tick = self.signal("tick")
        self.clocked(
            self._clk,
            reads=up_port.request_signals()
            + [up_port.gnt, up_port.r_req, up_port.r_gnt]
            + down_port.response_signals()
            + [down_port.gnt, down_port.req, down_port.r_gnt]
            + [self._tick],
            writes=down_port.request_signals()
            + up_port.response_signals()
            + [self._tick],
        )
        self.comb(self._gnt_comb, [self._tick, up_port.req, down_port.r_req])

    # -- combinational accept logic -------------------------------------------

    def _gnt_comb(self) -> None:
        in_flight = len(self._req_queue) + (1 if self._req_cells else 0)
        self.up.gnt.drive(1 if in_flight < self.queue_depth else 0)
        # Responses are always accepted: each matches a forwarded request,
        # so the buffering is already bounded by the outstanding count.
        self.down.r_gnt.drive(1)

    # -- clocked engine ----------------------------------------------------------

    def _clk(self) -> None:
        self._absorb_upstream_request()
        self._emit_downstream_request()
        self._absorb_downstream_response()
        self._emit_upstream_response()
        self._tick.drive(self._tick.value ^ 1)

    def _absorb_upstream_request(self) -> None:
        if not self.up.request_fired:
            return
        cell = self.up.request_cell()
        self._req_assembly.append(cell)
        if not cell.eop:
            return
        cells, self._req_assembly = self._req_assembly, []
        self.stats["requests"] += 1
        try:
            repacked = repack_request(
                cells, self.up.bus_bytes, self.down.bus_bytes,
                self.up_protocol, self.down_protocol,
            )
            opcode = Opcode.decode(cells[0].opc)
        except (RepackError, OpcodeError):
            self.stats["repack_errors"] += 1
            # Answer upstream directly with a single-cell error response.
            self._queue_response([RespCell(r_opc=1, r_eop=1,
                                           r_src=cells[0].src,
                                           r_tid=cells[0].tid)])
            return
        # Remap the tid on the downstream link so responses are
        # unambiguous even when several upstream masters share tid values
        # (the downstream node rewrites source tags on its own link).
        down_tid = self._down_tid_counter & 0xFF
        self._down_tid_counter += 1
        for fwd_cell in repacked:
            fwd_cell.tid = down_tid
        self._forwarded.append(
            _Forwarded(self._order_counter, cells[0].src, cells[0].tid,
                       down_tid, opcode, cells[0].add)
        )
        self._order_counter += 1
        self._req_queue.append(repacked)

    def _emit_downstream_request(self) -> None:
        down = self.down
        if self._req_cells and down.request_fired:
            self._req_idx += 1
            if self._req_idx >= len(self._req_cells):
                self._req_cells = []
                self._req_idx = 0
        if not self._req_cells and self._req_queue:
            self._req_cells = self._req_queue.pop(0)
            self._req_idx = 0
        if self._req_cells:
            down.drive_request(self._req_cells[self._req_idx])
        else:
            down.idle_request()
            down.add.drive(0)
            down.opc.drive(0)
            down.data.drive(0)
            down.be.drive(0)
            down.tid.drive(0)
            down.src.drive(0)
            down.pri.drive(0)

    def _absorb_downstream_response(self) -> None:
        if not self.down.response_fired:
            return
        cell = self.down.response_cell()
        self._resp_assembly.append(cell)
        if not cell.r_eop:
            return
        cells, self._resp_assembly = self._resp_assembly, []
        self.stats["responses"] += 1
        entry = self._match_forwarded(cells[0])
        if entry is None:
            return  # spurious; upstream checkers flag missing responses
        repacked = repack_response(
            cells, entry.opcode, entry.address,
            self.down.bus_bytes, self.up.bus_bytes,
            self.down_protocol, self.up_protocol,
        )
        for cell_out in repacked:
            # Restore the tags of the upstream link (a downstream node
            # rewrites r_src with its own port index).
            cell_out.r_src = entry.src
            cell_out.r_tid = entry.tid
        if self.up_protocol is ProtocolType.T2:
            self._reorder[entry.order] = repacked
            while self._next_to_deliver in self._reorder:
                self._queue_response(self._reorder.pop(self._next_to_deliver))
                self._next_to_deliver += 1
        else:
            self._next_to_deliver = max(self._next_to_deliver, entry.order + 1)
            self._queue_response(repacked)

    def _match_forwarded(self, first: RespCell) -> Optional[_Forwarded]:
        # The converter-assigned downstream tid identifies the response
        # regardless of what the downstream side did to the source tag.
        for idx, entry in enumerate(self._forwarded):
            if entry.down_tid == first.r_tid:
                return self._forwarded.pop(idx)
        if self._forwarded:
            return self._forwarded.pop(0)
        return None

    def _queue_response(self, cells: List[RespCell]) -> None:
        self._resp_queue.append(cells)

    def _emit_upstream_response(self) -> None:
        up = self.up
        if self._resp_cells and up.response_fired:
            self._resp_idx += 1
            if self._resp_idx >= len(self._resp_cells):
                self._resp_cells = []
                self._resp_idx = 0
        if not self._resp_cells and self._resp_queue:
            self._resp_cells = self._resp_queue.pop(0)
            self._resp_idx = 0
        if self._resp_cells:
            up.drive_response(self._resp_cells[self._resp_idx])
        else:
            up.idle_response()
            up.r_opc.drive(0)
            up.r_data.drive(0)
            up.r_src.drive(0)
            up.r_tid.drive(0)


class RtlSizeConverter(RtlBridge):
    """Width bridge: same protocol type, different data bus widths."""

    def __init__(self, sim, name, up_port, down_port, protocol,
                 queue_depth=2, parent=None):
        if up_port.width_bits == down_port.width_bits:
            raise ValueError("size converter needs differing port widths")
        super().__init__(sim, name, up_port, down_port, protocol, protocol,
                         queue_depth, parent)


class RtlTypeConverter(RtlBridge):
    """Protocol bridge: same width, Type II on one side, Type III on the
    other (either direction)."""

    def __init__(self, sim, name, up_port, down_port, up_protocol,
                 down_protocol, queue_depth=2, parent=None):
        if up_port.width_bits != down_port.width_bits:
            raise ValueError("type converter needs equal port widths")
        if up_protocol is down_protocol:
            raise ValueError("type converter needs differing protocol types")
        legal = {ProtocolType.T2, ProtocolType.T3}
        if {up_protocol, down_protocol} != legal:
            raise ValueError("type conversion is between Type II and Type III")
        super().__init__(sim, name, up_port, down_port, up_protocol,
                         down_protocol, queue_depth, parent)
