"""RTL view: cycle-accurate, signal-level models of the STBus components."""

from .pipeline import Pipe
from .node import ERROR_TARGET, RtlNode
from .converter import RtlBridge, RtlSizeConverter, RtlTypeConverter
from .register_decoder import RtlRegisterDecoder

__all__ = [
    "Pipe",
    "RtlNode",
    "ERROR_TARGET",
    "RtlBridge",
    "RtlSizeConverter",
    "RtlTypeConverter",
    "RtlRegisterDecoder",
]
