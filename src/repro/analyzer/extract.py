"""Offline transaction extraction from VCD dumps.

"[STBA] is automatically called by the regression tool and it extracts
from VCD files, got after regression tests, STBus transaction
information."  This module replays the sampled per-cycle values of a port
scope and reassembles the same packets an online monitor would have seen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..stbus import Cell, RespCell
from ..telemetry import NULL_TELEMETRY, Telemetry
from ..vcd import VcdFile

#: Signals that make up a Type II/III port scope in the VCD.
PORT_SIGNALS = (
    "req", "gnt", "add", "opc", "data", "be", "eop", "lck", "tid", "src",
    "pri", "r_req", "r_gnt", "r_opc", "r_data", "r_eop", "r_src", "r_tid",
)


class ExtractionError(ValueError):
    """The VCD does not contain the expected port scope."""


def discover_ports(vcd: VcdFile) -> List[str]:
    """Scopes that look like STBus ports (have req/gnt/r_req signals)."""
    scopes: Dict[str, set] = {}
    for name in vcd.names():
        scope, _, leaf = name.rpartition(".")
        scopes.setdefault(scope, set()).add(leaf)
    return sorted(
        scope for scope, leaves in scopes.items()
        if {"req", "gnt", "r_req", "r_gnt"}.issubset(leaves)
    )


@dataclass
class ExtractedPacket:
    """A request packet recovered from a VCD."""

    port: str
    cells: List[Cell]
    start_cycle: int
    end_cycle: int


@dataclass
class ExtractedResponse:
    """A response packet recovered from a VCD."""

    port: str
    cells: List[RespCell]
    start_cycle: int
    end_cycle: int


@dataclass
class PortTraffic:
    """Everything extracted from one port of one dump."""

    port: str
    requests: List[ExtractedPacket]
    responses: List[ExtractedResponse]
    n_cycles: int

    def summary(self) -> str:
        return (
            f"{self.port}: {len(self.requests)} request packets, "
            f"{len(self.responses)} response packets over {self.n_cycles} "
            "cycles"
        )


def _port_series(vcd: VcdFile, scope: str) -> Dict[str, List[int]]:
    n = vcd.n_cycles
    series = {}
    for leaf in PORT_SIGNALS:
        name = f"{scope}.{leaf}"
        if name not in vcd:
            raise ExtractionError(f"signal {name!r} missing from VCD")
        series[leaf] = vcd[name].expand(n, vcd.timescale)
    return series


def extract_port(vcd: VcdFile, scope: str) -> PortTraffic:
    """Rebuild the packet streams of one port from a parsed VCD."""
    series = _port_series(vcd, scope)
    n = vcd.n_cycles
    requests: List[ExtractedPacket] = []
    responses: List[ExtractedResponse] = []
    req_cells: List[Cell] = []
    req_start = 0
    resp_cells: List[RespCell] = []
    resp_start = 0
    for cycle in range(n):
        if series["req"][cycle] and series["gnt"][cycle]:
            if not req_cells:
                req_start = cycle
            cell = Cell(
                add=series["add"][cycle],
                opc=series["opc"][cycle],
                data=series["data"][cycle],
                be=series["be"][cycle],
                eop=series["eop"][cycle],
                lck=series["lck"][cycle],
                tid=series["tid"][cycle],
                src=series["src"][cycle],
                pri=series["pri"][cycle],
            )
            req_cells.append(cell)
            if cell.eop:
                requests.append(
                    ExtractedPacket(scope, req_cells, req_start, cycle)
                )
                req_cells = []
        if series["r_req"][cycle] and series["r_gnt"][cycle]:
            if not resp_cells:
                resp_start = cycle
            cell = RespCell(
                r_opc=series["r_opc"][cycle],
                r_data=series["r_data"][cycle],
                r_eop=series["r_eop"][cycle],
                r_src=series["r_src"][cycle],
                r_tid=series["r_tid"][cycle],
            )
            resp_cells.append(cell)
            if cell.r_eop:
                responses.append(
                    ExtractedResponse(scope, resp_cells, resp_start, cycle)
                )
                resp_cells = []
    return PortTraffic(scope, requests, responses, n)


def extract_all(vcd: VcdFile, scopes: Optional[Sequence[str]] = None,
                telemetry: Optional["Telemetry"] = None,
                ) -> Dict[str, PortTraffic]:
    """Extract every (or the given) port of a dump.

    ``telemetry`` optionally records one ``analyzer.extract`` span
    covering the replay; ``None`` costs nothing.
    """
    tele = telemetry if telemetry is not None else NULL_TELEMETRY
    if scopes is None:
        scopes = discover_ports(vcd)
    if not scopes:
        raise ExtractionError("no STBus port scopes found in VCD")
    with tele.span("analyzer.extract", ports=len(scopes),
                   cycles=vcd.n_cycles):
        return {scope: extract_port(vcd, scope) for scope in scopes}
