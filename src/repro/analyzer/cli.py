"""Command-line front-end for the STBus Analyzer.

Usage::

    python -m repro.analyzer RTL.vcd BCA.vcd [--threshold 0.99]
                                             [--diff] [--ports SCOPE ...]

Prints the per-port alignment table (and optionally the transaction-level
diff) for two dumps of the same test; exit status 0 means the BCA dump
signs off at the threshold on every port.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..vcd import VcdParseError
from .align import SIGNOFF_THRESHOLD, compare_vcds
from .diff import diff_transactions
from .extract import ExtractionError
from .waveview import render_divergence


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analyzer",
        description="STBus Analyzer: bus-accurate comparison of two VCD "
                    "dumps (RTL vs BCA run of the same seeded test).",
    )
    parser.add_argument("rtl_vcd", help="VCD of the reference (RTL) run")
    parser.add_argument("bca_vcd", help="VCD of the compared (BCA) run")
    parser.add_argument(
        "--threshold", type=float, default=SIGNOFF_THRESHOLD,
        help="per-port sign-off rate (default %(default)s)",
    )
    parser.add_argument(
        "--ports", nargs="*", default=None,
        help="restrict the comparison to these port scopes",
    )
    parser.add_argument(
        "--diff", action="store_true",
        help="also print the transaction-level diff",
    )
    parser.add_argument(
        "--wave", action="store_true",
        help="render a text waveform around each port's first divergence",
    )
    parser.add_argument(
        "--first-divergence", action="store_true",
        help="walk every signal the two dumps share in lockstep and "
             "report the first diverging (signal, cycle) point",
    )
    parser.add_argument(
        "--triage-out", metavar="FILE", default=None,
        help="write a triage.json minimal-repro artifact (implies "
             "--first-divergence); with --config the suspect processes "
             "of the diverging signal's fan-in cone are ranked too",
    )
    parser.add_argument(
        "--config", metavar="FILE", default=None,
        help="the node's *.cfg HDL-parameter file, enabling cone-based "
             "suspect ranking for --first-divergence/--triage-out",
    )
    parser.add_argument(
        "--scoreboard-failed", action="store_true",
        help="declare that an external checker (scoreboard) failed this "
             "run; if the port comparison then finds no functional "
             "divergence, an explicit 'divergence not pin-visible' "
             "diagnostic is printed instead of a bare alignment table",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="write parse/align timings and the per-port alignment-rate "
             "histogram as JSON (side-channel; stdout is unchanged)",
    )
    parser.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write a Chrome/Perfetto trace of the comparison",
    )
    return parser


def _export_telemetry(args, telemetry) -> None:
    """Write the analyzer's side-channel metrics/trace files."""
    import json

    from ..telemetry import assign_lanes, span_seconds, write_chrome_trace

    if args.metrics_out:
        payload = {
            "schema": "repro.telemetry/analyzer-metrics/v1",
            "span_seconds": {
                name: round(seconds, 6)
                for name, seconds in sorted(
                    span_seconds(telemetry.trace.events).items())
            },
        }
        payload.update(telemetry.registry.snapshot())
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")
    if args.trace_out:
        events = telemetry.trace.events
        write_chrome_trace(
            args.trace_out, events,
            lanes=assign_lanes(events, main_pid=telemetry.trace.pid),
            process_name="repro analyzer",
        )


def _run_coordinates(rtl_vcd: str, bca_vcd: str):
    """Recover (config, test, seed) from the regression runner's VCD
    naming scheme ``{config}__{test}__s{seed}__{view}.vcd`` — best
    effort; falls back to neutral placeholders for foreign dumps."""
    import os
    import re

    for path in (rtl_vcd, bca_vcd):
        stem = os.path.splitext(os.path.basename(path))[0]
        match = re.match(r"(?P<cfg>.+)__(?P<test>.+)__s(?P<seed>\d+)__"
                         r"(?:rtl|bca)$", stem)
        if match:
            return (match.group("cfg"), match.group("test"),
                    int(match.group("seed")))
    return "adhoc", "adhoc", 0


def _first_divergence_report(args, scoreboard_diverged: bool) -> int:
    """The ``--first-divergence``/``--triage-out`` path: lockstep-walk
    the dumps, optionally rank cone suspects and write the triage
    artifact.  Returns an exit status (0 aligned, 1 diverged, 2 error)."""
    from ..triage import find_first_divergence

    scan = find_first_divergence(args.rtl_vcd, args.bca_vcd)
    print(scan.summary())
    if scan.only_in_a or scan.only_in_b:
        print(f"  view-private signals skipped: "
              f"{len(scan.only_in_a)} rtl-only, "
              f"{len(scan.only_in_b)} bca-only")
    if scan.truncated:
        print(f"  dumps truncated to the shorter: compared "
              f"{scan.total_cycles} cycle(s)")
    config = None
    if args.config:
        from ..stbus import NodeConfig

        with open(args.config, "r", encoding="utf-8") as handle:
            config = NodeConfig.from_text(handle.read())
    if scan.first is not None and config is not None:
        from ..triage import rank_suspects
        from ..vcd import parse_vcd

        suspects = rank_suspects(
            config, scan.first.signal, scan.first.cycle,
            trace=parse_vcd(args.bca_vcd),
        )
        if suspects.suspects:
            print("suspects, cone-ranked:")
            for pos, suspect in enumerate(suspects.suspects[:8], 1):
                print(f"  {pos}. {suspect.describe()}")
    if args.triage_out:
        from ..triage import triage_entry

        cfg_name, test, seed = _run_coordinates(args.rtl_vcd, args.bca_vcd)
        if config is None:
            print("error: --triage-out needs --config FILE (the node's "
                  "*.cfg) for suspect ranking", file=sys.stderr)
            return 2
        report = triage_entry(
            config, test, seed, args.rtl_vcd, args.bca_vcd,
            reason="manual", out_path=args.triage_out,
        )
        print(f"triage written: {args.triage_out} "
              f"({report.verdict}, {len(report.suspects)} suspect(s))")
    return 1 if (scan.diverged or scoreboard_diverged) else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if not 0.0 < args.threshold <= 1.0:
        print("error: threshold must be in (0, 1]", file=sys.stderr)
        return 2
    telemetry = None
    if args.metrics_out or args.trace_out:
        from ..telemetry import MetricRegistry, Telemetry, TraceCollector

        telemetry = Telemetry(registry=MetricRegistry(),
                              trace=TraceCollector())
    try:
        report = compare_vcds(args.rtl_vcd, args.bca_vcd, scopes=args.ports,
                              telemetry=telemetry)
    except (ExtractionError, VcdParseError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if telemetry is not None:
        _export_telemetry(args, telemetry)
    print(report.render(), end="")
    if args.diff:
        try:
            diff = diff_transactions(args.rtl_vcd, args.bca_vcd,
                                     scopes=args.ports)
        except (ExtractionError, VcdParseError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(diff.render(), end="")
    if args.wave:
        for name in sorted(report.ports):
            wave = render_divergence(args.rtl_vcd, args.bca_vcd,
                                     report.ports[name])
            if wave:
                print(wave, end="")
    ports_diverged = any(
        p.first_divergence is not None for p in report.ports.values()
    )
    if args.scoreboard_failed and not ports_diverged:
        # The checker saw a mismatch the dumped port pins never carry —
        # say so explicitly instead of leaving a clean alignment table
        # to contradict the failing run.
        print("diagnostic: divergence not pin-visible — the scoreboard "
              "failed but every compared port pin matches cycle for "
              "cycle; the mismatch lives in state not dumped at these "
              "ports (deepen the dump, or triage with "
              "--first-divergence over a fuller signal set)")
    if args.first_divergence or args.triage_out:
        try:
            status = _first_divergence_report(args, args.scoreboard_failed)
        except (ExtractionError, VcdParseError, OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if status == 2:
            return 2
    signed_off = all(p.rate >= args.threshold for p in report.ports.values())
    if args.scoreboard_failed:
        signed_off = False
    print(f"verdict: {'SIGNED OFF' if signed_off else 'NOT SIGNED OFF'} "
          f"(threshold {args.threshold * 100:.0f}% per port)")
    return 0 if signed_off else 1
