"""Command-line front-end for the STBus Analyzer.

Usage::

    python -m repro.analyzer RTL.vcd BCA.vcd [--threshold 0.99]
                                             [--diff] [--ports SCOPE ...]

Prints the per-port alignment table (and optionally the transaction-level
diff) for two dumps of the same test; exit status 0 means the BCA dump
signs off at the threshold on every port.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..vcd import VcdParseError
from .align import SIGNOFF_THRESHOLD, compare_vcds
from .diff import diff_transactions
from .extract import ExtractionError
from .waveview import render_divergence


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analyzer",
        description="STBus Analyzer: bus-accurate comparison of two VCD "
                    "dumps (RTL vs BCA run of the same seeded test).",
    )
    parser.add_argument("rtl_vcd", help="VCD of the reference (RTL) run")
    parser.add_argument("bca_vcd", help="VCD of the compared (BCA) run")
    parser.add_argument(
        "--threshold", type=float, default=SIGNOFF_THRESHOLD,
        help="per-port sign-off rate (default %(default)s)",
    )
    parser.add_argument(
        "--ports", nargs="*", default=None,
        help="restrict the comparison to these port scopes",
    )
    parser.add_argument(
        "--diff", action="store_true",
        help="also print the transaction-level diff",
    )
    parser.add_argument(
        "--wave", action="store_true",
        help="render a text waveform around each port's first divergence",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="write parse/align timings and the per-port alignment-rate "
             "histogram as JSON (side-channel; stdout is unchanged)",
    )
    parser.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write a Chrome/Perfetto trace of the comparison",
    )
    return parser


def _export_telemetry(args, telemetry) -> None:
    """Write the analyzer's side-channel metrics/trace files."""
    import json

    from ..telemetry import assign_lanes, span_seconds, write_chrome_trace

    if args.metrics_out:
        payload = {
            "schema": "repro.telemetry/analyzer-metrics/v1",
            "span_seconds": {
                name: round(seconds, 6)
                for name, seconds in sorted(
                    span_seconds(telemetry.trace.events).items())
            },
        }
        payload.update(telemetry.registry.snapshot())
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")
    if args.trace_out:
        events = telemetry.trace.events
        write_chrome_trace(
            args.trace_out, events,
            lanes=assign_lanes(events, main_pid=telemetry.trace.pid),
            process_name="repro analyzer",
        )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if not 0.0 < args.threshold <= 1.0:
        print("error: threshold must be in (0, 1]", file=sys.stderr)
        return 2
    telemetry = None
    if args.metrics_out or args.trace_out:
        from ..telemetry import MetricRegistry, Telemetry, TraceCollector

        telemetry = Telemetry(registry=MetricRegistry(),
                              trace=TraceCollector())
    try:
        report = compare_vcds(args.rtl_vcd, args.bca_vcd, scopes=args.ports,
                              telemetry=telemetry)
    except (ExtractionError, VcdParseError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if telemetry is not None:
        _export_telemetry(args, telemetry)
    print(report.render(), end="")
    if args.diff:
        try:
            diff = diff_transactions(args.rtl_vcd, args.bca_vcd,
                                     scopes=args.ports)
        except (ExtractionError, VcdParseError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(diff.render(), end="")
    if args.wave:
        for name in sorted(report.ports):
            wave = render_divergence(args.rtl_vcd, args.bca_vcd,
                                     report.ports[name])
            if wave:
                print(wave, end="")
    signed_off = all(p.rate >= args.threshold for p in report.ports.values())
    print(f"verdict: {'SIGNED OFF' if signed_off else 'NOT SIGNED OFF'} "
          f"(threshold {args.threshold * 100:.0f}% per port)")
    return 0 if signed_off else 1
