"""Text waveform rendering — debugging aid for the alignment loop.

When the bus-accurate comparison reports a low rate, the next step in the
paper's flow is a human "fixing the BCA model".  This module renders the
cycles around the first divergence of a port as a side-by-side text
waveform, so the engineer sees *which signal* split *at which cycle*
without opening a waveform viewer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from ..vcd import VcdFile, parse_vcd
from .align import PortAlignment
from .extract import PORT_SIGNALS, ExtractionError


def _format_value(value: int, width_hint: int) -> str:
    if width_hint <= 1:
        return str(value)
    return f"{value:x}"


def render_port_wave(
    vcd_a: Union[str, VcdFile],
    vcd_b: Union[str, VcdFile],
    scope: str,
    center_cycle: int,
    window: int = 8,
    labels: Sequence[str] = ("rtl", "bca"),
) -> str:
    """Render ``scope``'s signals from both dumps around ``center_cycle``.

    Diverging cells are marked with ``*``; signals identical across the
    whole window are collapsed into a single row.
    """
    file_a = parse_vcd(vcd_a) if isinstance(vcd_a, str) else vcd_a
    file_b = parse_vcd(vcd_b) if isinstance(vcd_b, str) else vcd_b
    total = min(file_a.n_cycles, file_b.n_cycles)
    if total == 0:
        raise ExtractionError("empty dumps")
    first = max(0, center_cycle - window)
    last = min(total - 1, center_cycle + window)
    cycles = list(range(first, last + 1))

    lines: List[str] = [
        f"port {scope}, cycles {first}..{last} "
        f"(divergences marked '*'):"
    ]
    header = f"{'signal':<12} " + " ".join(f"{c:>5}" for c in cycles)
    lines.append(header)
    lines.append("-" * len(header))
    for leaf in PORT_SIGNALS:
        name = f"{scope}.{leaf}"
        if name not in file_a or name not in file_b:
            raise ExtractionError(f"signal {name!r} missing from a dump")
        series_a = file_a[name].expand(last + 1, file_a.timescale)[first:]
        series_b = file_b[name].expand(last + 1, file_b.timescale)[first:]
        if series_a == series_b:
            row = " ".join(
                f"{_format_value(v, file_a[name].width):>5}"
                for v in series_a
            )
            lines.append(f"{leaf:<12} {row}")
            continue
        for label, series, other in (
            (labels[0], series_a, series_b),
            (labels[1], series_b, series_a),
        ):
            cells = []
            for v, w in zip(series, other):
                mark = "*" if v != w else " "
                cells.append(f"{mark}{_format_value(v, file_a[name].width):>4}")
            lines.append(f"{leaf + ':' + label:<12} " + " ".join(cells))
    return "\n".join(lines) + "\n"


def render_divergence(
    vcd_a: Union[str, VcdFile],
    vcd_b: Union[str, VcdFile],
    alignment: PortAlignment,
    window: int = 8,
) -> Optional[str]:
    """Render the wave around a port's first divergence (None if aligned)."""
    if alignment.first_divergence is None:
        return None
    return render_port_wave(
        vcd_a, vcd_b, alignment.port, alignment.first_divergence, window
    )
