"""Text waveform rendering — debugging aid for the alignment loop.

When the bus-accurate comparison reports a low rate, the next step in the
paper's flow is a human "fixing the BCA model".  This module renders the
cycles around the first divergence of a port as a side-by-side text
waveform, so the engineer sees *which signal* split *at which cycle*
without opening a waveform viewer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from ..vcd import VcdFile, parse_vcd
from .align import PortAlignment
from .extract import PORT_SIGNALS, ExtractionError


def _format_value(value: int, width_hint: int) -> str:
    if width_hint <= 1:
        return str(value)
    return f"{value:x}"


def render_signals_wave(
    vcd_a: Union[str, VcdFile],
    vcd_b: Union[str, VcdFile],
    signals: Sequence[str],
    center_cycle: int,
    window: int = 8,
    labels: Sequence[str] = ("rtl", "bca"),
    title: Optional[str] = None,
) -> str:
    """Render an arbitrary signal list from both dumps around a cycle.

    The generalized sibling of :func:`render_port_wave`: instead of one
    port's fixed pin set, any hierarchical signal names can be windowed —
    the triage report uses it to excerpt the diverging fan-in cone.
    Signals missing from either dump are skipped with a note rather than
    rejected, since a cone legitimately spans view-private state.
    """
    file_a = parse_vcd(vcd_a) if isinstance(vcd_a, str) else vcd_a
    file_b = parse_vcd(vcd_b) if isinstance(vcd_b, str) else vcd_b
    total = min(file_a.n_cycles, file_b.n_cycles)
    if total == 0:
        raise ExtractionError("empty dumps")
    first = max(0, center_cycle - window)
    last = min(total - 1, center_cycle + window)
    cycles = list(range(first, last + 1))

    head = title or "signals"
    lines: List[str] = [
        f"{head}, cycles {first}..{last} (divergences marked '*'):"
    ]
    label_width = max([12] + [len(name) + 1 + max(len(labels[0]),
                                                  len(labels[1]))
                              for name in signals])
    header = f"{'signal':<{label_width}} " \
        + " ".join(f"{c:>5}" for c in cycles)
    lines.append(header)
    lines.append("-" * len(header))
    for name in signals:
        if name not in file_a or name not in file_b:
            missing = []
            if name not in file_a:
                missing.append(labels[0])
            if name not in file_b:
                missing.append(labels[1])
            lines.append(
                f"{name:<{label_width}} (not dumped in "
                f"{'/'.join(missing)})"
            )
            continue
        series_a = file_a[name].expand(last + 1, file_a.timescale)[first:]
        series_b = file_b[name].expand(last + 1, file_b.timescale)[first:]
        if series_a == series_b:
            row = " ".join(
                f"{_format_value(v, file_a[name].width):>5}"
                for v in series_a
            )
            lines.append(f"{name:<{label_width}} {row}")
            continue
        for label, series, other in (
            (labels[0], series_a, series_b),
            (labels[1], series_b, series_a),
        ):
            cells = []
            for v, w in zip(series, other):
                mark = "*" if v != w else " "
                cells.append(
                    f"{mark}{_format_value(v, file_a[name].width):>4}")
            lines.append(f"{name + ':' + label:<{label_width}} "
                         + " ".join(cells))
    return "\n".join(lines) + "\n"


def render_port_wave(
    vcd_a: Union[str, VcdFile],
    vcd_b: Union[str, VcdFile],
    scope: str,
    center_cycle: int,
    window: int = 8,
    labels: Sequence[str] = ("rtl", "bca"),
) -> str:
    """Render ``scope``'s signals from both dumps around ``center_cycle``.

    Diverging cells are marked with ``*``; signals identical across the
    whole window are collapsed into a single row.
    """
    file_a = parse_vcd(vcd_a) if isinstance(vcd_a, str) else vcd_a
    file_b = parse_vcd(vcd_b) if isinstance(vcd_b, str) else vcd_b
    total = min(file_a.n_cycles, file_b.n_cycles)
    if total == 0:
        raise ExtractionError("empty dumps")
    first = max(0, center_cycle - window)
    last = min(total - 1, center_cycle + window)
    cycles = list(range(first, last + 1))

    lines: List[str] = [
        f"port {scope}, cycles {first}..{last} "
        f"(divergences marked '*'):"
    ]
    header = f"{'signal':<12} " + " ".join(f"{c:>5}" for c in cycles)
    lines.append(header)
    lines.append("-" * len(header))
    for leaf in PORT_SIGNALS:
        name = f"{scope}.{leaf}"
        if name not in file_a or name not in file_b:
            raise ExtractionError(f"signal {name!r} missing from a dump")
        series_a = file_a[name].expand(last + 1, file_a.timescale)[first:]
        series_b = file_b[name].expand(last + 1, file_b.timescale)[first:]
        if series_a == series_b:
            row = " ".join(
                f"{_format_value(v, file_a[name].width):>5}"
                for v in series_a
            )
            lines.append(f"{leaf:<12} {row}")
            continue
        for label, series, other in (
            (labels[0], series_a, series_b),
            (labels[1], series_b, series_a),
        ):
            cells = []
            for v, w in zip(series, other):
                mark = "*" if v != w else " "
                cells.append(f"{mark}{_format_value(v, file_a[name].width):>4}")
            lines.append(f"{leaf + ':' + label:<12} " + " ".join(cells))
    return "\n".join(lines) + "\n"


def render_divergence(
    vcd_a: Union[str, VcdFile],
    vcd_b: Union[str, VcdFile],
    alignment: PortAlignment,
    window: int = 8,
) -> Optional[str]:
    """Render the wave around a port's first divergence (None if aligned)."""
    if alignment.first_divergence is None:
        return None
    return render_port_wave(
        vcd_a, vcd_b, alignment.port, alignment.first_divergence, window
    )
