"""STBus Analyzer (STBA): VCD extraction, alignment rates, transaction diff."""

from .extract import (
    ExtractedPacket,
    ExtractedResponse,
    ExtractionError,
    PORT_SIGNALS,
    PortTraffic,
    discover_ports,
    extract_all,
    extract_port,
)
from .align import (
    AlignmentReport,
    PortAlignment,
    SIGNOFF_THRESHOLD,
    compare_vcds,
)
from .diff import PortDiff, TransactionDiff, diff_transactions
from .waveview import render_divergence, render_port_wave, render_signals_wave

__all__ = [
    "PORT_SIGNALS",
    "ExtractionError",
    "ExtractedPacket",
    "ExtractedResponse",
    "PortTraffic",
    "discover_ports",
    "extract_port",
    "extract_all",
    "PortAlignment",
    "AlignmentReport",
    "SIGNOFF_THRESHOLD",
    "compare_vcds",
    "PortDiff",
    "TransactionDiff",
    "diff_transactions",
    "render_port_wave",
    "render_signals_wave",
    "render_divergence",
]
