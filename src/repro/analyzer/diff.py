"""Transaction-level diffing between two dumps.

Beyond the cycle alignment rate, STBA "extracts from VCD files ... STBus
transaction information"; diffing the *packet streams* tells an engineer
whether a misalignment is a pure timing skew (same packets, shifted
cycles) or a functional divergence (different packets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..vcd import VcdFile, parse_vcd
from .extract import PortTraffic, discover_ports, extract_all


@dataclass
class PortDiff:
    """Packet-stream comparison for one port."""

    port: str
    matching_requests: int
    matching_responses: int
    total_requests_a: int
    total_requests_b: int
    total_responses_a: int
    total_responses_b: int
    #: index of the first request packet whose content differs (None = all
    #: common-prefix packets identical)
    first_request_mismatch: Optional[int] = None
    first_response_mismatch: Optional[int] = None
    #: True when packet contents agree and only their cycles differ
    timing_only: bool = False

    @property
    def functionally_equal(self) -> bool:
        return (
            self.first_request_mismatch is None
            and self.first_response_mismatch is None
            and self.total_requests_a == self.total_requests_b
            and self.total_responses_a == self.total_responses_b
        )

    def summary(self) -> str:
        if self.functionally_equal:
            kind = "identical" if not self.timing_only else "timing-skew only"
            return (f"{self.port}: {kind} "
                    f"({self.total_requests_a} req / "
                    f"{self.total_responses_a} resp packets)")
        return (
            f"{self.port}: DIVERGES (req {self.total_requests_a} vs "
            f"{self.total_requests_b}, first mismatch "
            f"{self.first_request_mismatch}; resp {self.total_responses_a} "
            f"vs {self.total_responses_b}, first mismatch "
            f"{self.first_response_mismatch})"
        )


@dataclass
class TransactionDiff:
    """All-port transaction diff between two runs."""

    ports: Dict[str, PortDiff] = field(default_factory=dict)

    @property
    def functionally_equal(self) -> bool:
        return all(p.functionally_equal for p in self.ports.values())

    def render(self) -> str:
        lines = ["Transaction-level diff:"]
        for name in sorted(self.ports):
            lines.append("  " + self.ports[name].summary())
        return "\n".join(lines) + "\n"


def _diff_port(a: PortTraffic, b: PortTraffic) -> PortDiff:
    first_req = None
    match_req = 0
    for idx, (pa, pb) in enumerate(zip(a.requests, b.requests)):
        if [c.key_fields() for c in pa.cells] == \
                [c.key_fields() for c in pb.cells]:
            match_req += 1
        elif first_req is None:
            first_req = idx
    first_resp = None
    match_resp = 0
    for idx, (pa, pb) in enumerate(zip(a.responses, b.responses)):
        if [c.key_fields() for c in pa.cells] == \
                [c.key_fields() for c in pb.cells]:
            match_resp += 1
        elif first_resp is None:
            first_resp = idx
    timing_only = (
        first_req is None and first_resp is None
        and len(a.requests) == len(b.requests)
        and len(a.responses) == len(b.responses)
        and any(
            pa.start_cycle != pb.start_cycle
            for pa, pb in zip(a.requests, b.requests)
        )
    )
    return PortDiff(
        a.port, match_req, match_resp,
        len(a.requests), len(b.requests),
        len(a.responses), len(b.responses),
        first_req, first_resp, timing_only,
    )


def diff_transactions(
    a: Union[str, VcdFile],
    b: Union[str, VcdFile],
    scopes: Optional[Sequence[str]] = None,
) -> TransactionDiff:
    """Extract and diff the packet streams of two dumps."""
    vcd_a = parse_vcd(a) if isinstance(a, str) else a
    vcd_b = parse_vcd(b) if isinstance(b, str) else b
    if scopes is None:
        scopes = sorted(
            set(discover_ports(vcd_a)) & set(discover_ports(vcd_b))
        )
    traffic_a = extract_all(vcd_a, scopes)
    traffic_b = extract_all(vcd_b, scopes)
    diff = TransactionDiff()
    for scope in scopes:
        diff.ports[scope] = _diff_port(traffic_a[scope], traffic_b[scope])
    return diff
