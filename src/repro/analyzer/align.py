"""Bus-accurate comparison — the STBus Analyzer's alignment metric.

"STBus Analyzer (STBA), an STBus internal tool, compares signals
information at each port level. ... The rate that is calculated at each
port level is the number of cycles RTL and BCA signals port are aligned
over total number of clock cycles.  The targeted value, in order to
consider BCA model signed off is 99%."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..telemetry import ALIGNMENT_BUCKETS, NULL_TELEMETRY, Telemetry
from ..vcd import VcdFile, VcdParseError, parse_vcd
from .extract import PORT_SIGNALS, ExtractionError, discover_ports

#: The paper's sign-off threshold.
SIGNOFF_THRESHOLD = 0.99


@dataclass
class PortAlignment:
    """Per-port alignment between the two dumps."""

    port: str
    total_cycles: int
    aligned_cycles: int
    first_divergence: Optional[int]
    #: per-signal mismatch cycle counts (only signals that ever diverged)
    signal_mismatches: Dict[str, int] = field(default_factory=dict)

    @property
    def rate(self) -> float:
        if self.total_cycles == 0:
            return 1.0
        return self.aligned_cycles / self.total_cycles

    @property
    def signed_off(self) -> bool:
        return self.rate >= SIGNOFF_THRESHOLD

    def summary(self) -> str:
        status = "OK " if self.signed_off else "LOW"
        diverge = (
            f" first divergence @{self.first_divergence}"
            if self.first_divergence is not None else ""
        )
        return f"{status} {self.port}: {self.rate * 100:6.2f}%{diverge}"


@dataclass
class AlignmentReport:
    """Whole-dump comparison result."""

    ports: Dict[str, PortAlignment]
    total_cycles: int

    @property
    def min_rate(self) -> float:
        if not self.ports:
            return 1.0
        return min(p.rate for p in self.ports.values())

    @property
    def overall_rate(self) -> float:
        """Aggregate rate across ports (mean of per-port rates)."""
        if not self.ports:
            return 1.0
        return sum(p.rate for p in self.ports.values()) / len(self.ports)

    @property
    def signed_off(self) -> bool:
        """BCA sign-off per the paper: every port at or above 99%."""
        return all(p.signed_off for p in self.ports.values())

    def worst_port(self) -> Optional[PortAlignment]:
        if not self.ports:
            return None
        return min(self.ports.values(), key=lambda p: p.rate)

    def render(self) -> str:
        lines = [
            f"Bus-accurate comparison over {self.total_cycles} cycles",
            f"overall rate {self.overall_rate * 100:.2f}% — "
            f"{'SIGNED OFF' if self.signed_off else 'NOT signed off'} "
            f"(threshold {SIGNOFF_THRESHOLD * 100:.0f}% per port)",
        ]
        for name in sorted(self.ports):
            port = self.ports[name]
            lines.append("  " + port.summary())
            for signal, count in sorted(port.signal_mismatches.items()):
                lines.append(f"      {signal}: {count} mismatching cycles")
        return "\n".join(lines) + "\n"


def _parse_dump(source: Union[str, VcdFile]) -> VcdFile:
    """Parse one dump, naming the offending file when it is truncated,
    empty or otherwise corrupt (a crashed simulation run leaves exactly
    such dumps behind)."""
    if not isinstance(source, str):
        return source
    try:
        return parse_vcd(source)
    except VcdParseError as exc:
        raise ExtractionError(
            f"cannot compare {source}: truncated or corrupt VCD ({exc})"
        ) from exc


def compare_vcds(
    a: Union[str, VcdFile],
    b: Union[str, VcdFile],
    scopes: Optional[Sequence[str]] = None,
    telemetry: Optional[Telemetry] = None,
) -> AlignmentReport:
    """Compare two dumps port by port, cycle by cycle.

    ``a`` and ``b`` are VCD paths or parsed files (conventionally the RTL
    and the BCA run of the same test and seed).  Ports present in either
    dump but not both raise :class:`ExtractionError` — that means the two
    testbenches were *not* identical, which the flow forbids.

    ``telemetry`` optionally records parse/align spans and a per-port
    alignment-rate histogram; ``None`` costs nothing.
    """
    tele = telemetry if telemetry is not None else NULL_TELEMETRY
    with tele.span("analyzer.parse"):
        vcd_a = _parse_dump(a)
        vcd_b = _parse_dump(b)
    ports_a = set(discover_ports(vcd_a))
    ports_b = set(discover_ports(vcd_b))
    if scopes is None:
        if ports_a != ports_b:
            raise ExtractionError(
                f"port scopes differ between dumps: {sorted(ports_a ^ ports_b)}"
            )
        scopes = sorted(ports_a)
    total = min(vcd_a.n_cycles, vcd_b.n_cycles)
    report_ports: Dict[str, PortAlignment] = {}
    with tele.span("analyzer.align", ports=len(scopes), cycles=total):
        for scope in scopes:
            aligned = 0
            first_divergence: Optional[int] = None
            mismatches: Dict[str, int] = {}
            series_a = {}
            series_b = {}
            for leaf in PORT_SIGNALS:
                name = f"{scope}.{leaf}"
                if name not in vcd_a or name not in vcd_b:
                    raise ExtractionError(
                        f"signal {name!r} missing from a dump")
                series_a[leaf] = vcd_a[name].expand(total, vcd_a.timescale)
                series_b[leaf] = vcd_b[name].expand(total, vcd_b.timescale)
            for cycle in range(total):
                ok = True
                for leaf in PORT_SIGNALS:
                    if series_a[leaf][cycle] != series_b[leaf][cycle]:
                        ok = False
                        mismatches[leaf] = mismatches.get(leaf, 0) + 1
                if ok:
                    aligned += 1
                elif first_divergence is None:
                    first_divergence = cycle
            report_ports[scope] = PortAlignment(
                scope, total, aligned, first_divergence, mismatches
            )
    if tele.enabled:
        hist = tele.registry.histogram(
            "analyzer.port_alignment_rate", buckets=ALIGNMENT_BUCKETS)
        for port in report_ports.values():
            hist.observe(port.rate)
    return AlignmentReport(report_ports, total)
