"""Waiver parsing and matching, shared by ``repro.lint`` and
``repro.analysis``.

Both static passes speak the same waiver dialect — a text file with one
``<rule-glob> <location-glob> [# reason]`` per line — so one waiver file
can silence findings from either tool.  This module is deliberately a
leaf: it imports nothing from the rest of the package, which lets
``repro.lint.diagnostics`` re-export it without an import cycle.

Matching is duck-typed: anything with ``rule`` and ``location``
attributes (``repro.lint.diagnostics.Finding``, the analysis findings)
can be waived.  Waived findings stay in reports — flagged, but excluded
from the error counts that gate the flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Iterable, List, Sequence


@dataclass(frozen=True)
class Waiver:
    """Suppress findings whose rule and location match the glob patterns."""

    rule: str
    location: str
    reason: str = ""

    def matches(self, finding) -> bool:
        """``finding`` is anything with ``rule``/``location`` attributes."""
        return fnmatchcase(finding.rule, self.rule) and fnmatchcase(
            finding.location, self.location
        )


class WaiverError(ValueError):
    """A waiver file line could not be parsed."""


def parse_waivers(text: str) -> List[Waiver]:
    """Parse the waiver file format.

    One waiver per line: ``<rule-glob> <location-glob> [# reason]``.
    Blank lines and pure comment lines are skipped.
    """
    waivers: List[Waiver] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line, _, comment = raw.partition("#")
        line = line.strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            raise WaiverError(
                f"waiver line {lineno}: expected '<rule> <location>', "
                f"got {raw.strip()!r}"
            )
        waivers.append(Waiver(parts[0], parts[1], comment.strip()))
    return waivers


def apply_waivers(findings: Iterable, waivers: Sequence[Waiver]) -> None:
    """Mark findings matched by any waiver (in place, via ``.waived``)."""
    if not waivers:
        return
    for finding in findings:
        if any(w.matches(finding) for w in waivers):
            finding.waived = True


def load_waiver_file(path: str) -> List[Waiver]:
    """Read and parse one waiver file (shared CLI helper)."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_waivers(handle.read())
