"""The per-configuration symbolic analysis report and its orchestrator.

:func:`run_symbolic_analysis` ties the subsystem together for one
configuration: lift both bare views, run the functional equivalence
engines, and (when the caller hands over the probe-based UNR report)
rewrite its decode verdicts with the exact interval-coverage engine.
The resulting :class:`SymbolicReport` hangs off
:class:`repro.analysis.runner.ConfigAnalysisReport` under a ``symbolic``
key that only exists when ``--symbolic`` ran — non-symbolic output stays
byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ...lint.diagnostics import Finding
from ...stbus import NodeConfig
from .equiv import (
    DEFAULT_DOMAIN_BUDGET,
    MISMATCH,
    PortEquivalence,
    check_functional_equivalence,
)
from .lift import LiftReport
from .reach import UnrUpgrade, upgrade_unr_report

__all__ = ["SymbolicReport", "run_symbolic_analysis"]


@dataclass
class SymbolicReport:
    """Symbolic results for one configuration."""

    config_name: str
    budget: int = DEFAULT_DOMAIN_BUDGET
    bca_bugs: List[str] = field(default_factory=list)
    lift: Dict[str, LiftReport] = field(default_factory=dict)
    ports: List[PortEquivalence] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)
    unr_upgrade: Optional[UnrUpgrade] = None

    @property
    def equivalence_clean(self) -> bool:
        return all(p.verdict != MISMATCH for p in self.ports)

    @property
    def mismatched_ports(self) -> List[str]:
        return [p.port for p in self.ports if p.verdict == MISMATCH]

    @property
    def unknown_unr(self) -> int:
        if self.unr_upgrade is None:
            return 0
        return self.unr_upgrade.unknown_after

    def render(self) -> str:
        lines = [f"{self.config_name}: symbolic analysis"]
        for view in sorted(self.lift):
            report = self.lift[view]
            lines.append(
                f"  lift[{view}]: {report.n_clean} clean, "
                f"{report.n_partial} partial, {report.n_opaque} opaque "
                f"of {report.n_processes} process(es)"
            )
        for port in self.ports:
            lines.append(f"  {port.render()}")
        for finding in self.findings:
            lines.append(f"  {finding.render()}")
        if self.unr_upgrade is not None:
            lines.append(
                "  " + self.unr_upgrade.render().replace("\n", "\n  ")
            )
        return "\n".join(lines) + "\n"

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "config": self.config_name,
            "budget": self.budget,
            "equivalence_clean": self.equivalence_clean,
            "lift": {view: report.to_dict()
                     for view, report in sorted(self.lift.items())},
            "ports": [p.to_dict() for p in self.ports],
            "findings": [f.to_dict() for f in self.findings],
        }
        if self.bca_bugs:
            out["bca_bugs"] = list(self.bca_bugs)
        if self.unr_upgrade is not None:
            out["unr_upgrade"] = self.unr_upgrade.to_dict()
        return out


def run_symbolic_analysis(
    config: NodeConfig,
    *,
    budget: int = DEFAULT_DOMAIN_BUDGET,
    bca_bugs: Iterable[str] = (),
    unr_report=None,
) -> SymbolicReport:
    """Run the full symbolic pass for one configuration.

    ``unr_report`` — the probe-based :class:`~repro.analysis.unr.UnrReport`
    already computed by the caller; when given, its decode verdicts are
    upgraded *in place* by the exact engine and the delta is recorded.
    ``bca_bugs`` — injected BCA defects for the dual harness; used by
    the bug-registry detection check (an empty tuple analyzes the
    shipped models).
    """
    ports, findings, lifted = check_functional_equivalence(
        config, budget=budget, bca_bugs=bca_bugs,
    )
    report = SymbolicReport(
        config_name=config.name,
        budget=budget,
        bca_bugs=sorted(bca_bugs),
        lift=lifted,
        ports=ports,
        findings=findings,
    )
    if unr_report is not None:
        report.unr_upgrade = upgrade_unr_report(unr_report, config)
    return report
