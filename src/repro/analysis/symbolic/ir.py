"""Bitvector expression IR for lifted process bodies.

A deliberately small language: integers, named free variables (signal
reads), the arithmetic/bit operators Python processes actually use,
comparisons (yielding 0/1), short-circuit boolean combinations with
Python truthiness semantics, ``Mux`` for ``if/else``, and ``Opaque`` —
the honest "the lifter could not translate this" node.  Soundness rests
on two properties:

* evaluation of a closed, opaque-free expression agrees exactly with
  what the Python process body computes for the same signal values
  (the lifter only emits nodes whose semantics it reproduced 1:1);
* any construct outside the language becomes ``Opaque`` with a reason,
  and :func:`evaluate` *refuses* to evaluate through it
  (:class:`OpaqueValueError`) instead of guessing.

Expressions are immutable and hashable, so structural equality is plain
``==`` and sub-expressions can be shared freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple


class Expr:
    """Base class for all IR nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Const(Expr):
    """An integer literal (or a resolved Python-level constant)."""

    value: int


@dataclass(frozen=True)
class Var(Expr):
    """A free variable: one signal read, by hierarchical name."""

    name: str
    width: int = 1


@dataclass(frozen=True)
class UnOp(Expr):
    """Unary operator: ``-``, ``~`` or ``not``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary operator over two sub-expressions."""

    op: str  # + - * // % << >> & | ^
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Compare(Expr):
    """A comparison, evaluating to 0 or 1."""

    op: str  # == != < <= > >=
    left: Expr
    right: Expr


@dataclass(frozen=True)
class BoolOp(Expr):
    """``and`` / ``or`` with Python's value-returning semantics."""

    op: str  # "and" | "or"
    operands: Tuple[Expr, ...]


@dataclass(frozen=True)
class Mux(Expr):
    """``if_true if cond else if_false`` (cond by Python truthiness)."""

    cond: Expr
    if_true: Expr
    if_false: Expr


@dataclass(frozen=True)
class Opaque(Expr):
    """A value the lifter could not translate.

    ``reason`` names the offending construct and source line so reports
    (and the lift self-check) can say *why* the process degraded.
    """

    reason: str


class OpaqueValueError(Exception):
    """Raised when evaluation reaches an :class:`Opaque` node."""


_BIN_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": lambda a, b: a // b,
    "%": lambda a, b: a % b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
}

_CMP_OPS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def evaluate(expr: Expr, env: Dict[str, int]) -> int:
    """Evaluate a lifted expression under a variable assignment.

    Mirrors the Python semantics of the lifted source exactly; raises
    :class:`OpaqueValueError` on any :class:`Opaque` node and ``KeyError``
    on a free variable missing from ``env``.
    """
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Var):
        return env[expr.name]
    if isinstance(expr, UnOp):
        value = evaluate(expr.operand, env)
        if expr.op == "-":
            return -value
        if expr.op == "~":
            return ~value
        if expr.op == "not":
            return int(not value)
        raise ValueError(f"unknown unary op {expr.op!r}")
    if isinstance(expr, BinOp):
        return _BIN_OPS[expr.op](
            evaluate(expr.left, env), evaluate(expr.right, env)
        )
    if isinstance(expr, Compare):
        return int(_CMP_OPS[expr.op](
            evaluate(expr.left, env), evaluate(expr.right, env)
        ))
    if isinstance(expr, BoolOp):
        # Python semantics: return the deciding operand's value.
        result = evaluate(expr.operands[0], env)
        for operand in expr.operands[1:]:
            if expr.op == "and" and not result:
                return result
            if expr.op == "or" and result:
                return result
            result = evaluate(operand, env)
        return result
    if isinstance(expr, Mux):
        if evaluate(expr.cond, env):
            return evaluate(expr.if_true, env)
        return evaluate(expr.if_false, env)
    if isinstance(expr, Opaque):
        raise OpaqueValueError(expr.reason)
    raise TypeError(f"not an IR node: {expr!r}")


def free_vars(expr: Expr) -> FrozenSet[str]:
    """Names of all :class:`Var` nodes in the expression."""
    if isinstance(expr, Var):
        return frozenset((expr.name,))
    if isinstance(expr, UnOp):
        return free_vars(expr.operand)
    if isinstance(expr, (BinOp, Compare)):
        return free_vars(expr.left) | free_vars(expr.right)
    if isinstance(expr, BoolOp):
        result: FrozenSet[str] = frozenset()
        for operand in expr.operands:
            result |= free_vars(operand)
        return result
    if isinstance(expr, Mux):
        return free_vars(expr.cond) | free_vars(expr.if_true) \
            | free_vars(expr.if_false)
    return frozenset()


def opaque_reasons(expr: Expr) -> Tuple[str, ...]:
    """All OPAQUE reasons in the expression, in traversal order."""
    if isinstance(expr, Opaque):
        return (expr.reason,)
    if isinstance(expr, UnOp):
        return opaque_reasons(expr.operand)
    if isinstance(expr, (BinOp, Compare)):
        return opaque_reasons(expr.left) + opaque_reasons(expr.right)
    if isinstance(expr, BoolOp):
        result: Tuple[str, ...] = ()
        for operand in expr.operands:
            result += opaque_reasons(operand)
        return result
    if isinstance(expr, Mux):
        return (opaque_reasons(expr.cond) + opaque_reasons(expr.if_true)
                + opaque_reasons(expr.if_false))
    return ()


def is_closed(expr: Expr) -> bool:
    """True when the expression has no free variables and no OPAQUE."""
    return not free_vars(expr) and not opaque_reasons(expr)


def render(expr: Expr) -> str:
    """Compact single-line text form (reports and debugging)."""
    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, UnOp):
        op = expr.op + (" " if expr.op == "not" else "")
        return f"{op}{render(expr.operand)}"
    if isinstance(expr, BinOp):
        return f"({render(expr.left)} {expr.op} {render(expr.right)})"
    if isinstance(expr, Compare):
        return f"({render(expr.left)} {expr.op} {render(expr.right)})"
    if isinstance(expr, BoolOp):
        joined = f" {expr.op} ".join(render(o) for o in expr.operands)
        return f"({joined})"
    if isinstance(expr, Mux):
        return (f"mux({render(expr.cond)}, {render(expr.if_true)}, "
                f"{render(expr.if_false)})")
    if isinstance(expr, Opaque):
        return f"OPAQUE<{expr.reason}>"
    raise TypeError(f"not an IR node: {expr!r}")
