"""Exact decode reachability: interval coverage instead of probes.

The probe engine in :mod:`repro.analysis.unr` samples the address map at
region boundaries and extremes; when every probe decodes to an allowed
target it must return UNKNOWN, because a finite probe set cannot prove
anything about the space between probes.  This module replaces that
argument with an *exact* one over the same domain:

* the resolved address map is an ordered, non-overlapping set of
  intervals — computing the union against ``[0, 2^32)`` is a linear
  scan, and any gap is a concrete decode-error witness address;
* when the union covers the space, a decode error can still be observed
  through a region whose target no initiator may reach (the node routes
  such requests to the error engine);
* when neither exists, *no* 32-bit address can produce a decode error —
  a proof, not a sample, so the UNKNOWN verdict disappears.

:func:`upgrade_unr_report` rewrites the probe-based verdicts of an
existing :class:`~repro.analysis.unr.UnrReport` in place and attaches a
structured witness vector (initiator, opcode, address) to every verdict
it proves REACHABLE, returning the before/after delta for reports and
the golden file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..unr import REACHABLE, UNKNOWN, UNREACHABLE, UnrReport
from ...stbus import NodeConfig, Opcode

__all__ = [
    "UnrDelta",
    "UnrUpgrade",
    "coverage_gaps",
    "exact_decode_verdict",
    "upgrade_unr_report",
]

_ADDRESS_SPACE = 1 << 32


def coverage_gaps(address_map) -> List[Tuple[int, int]]:
    """Half-open ``[start, end)`` gaps of the map within ``[0, 2^32)``.

    The map's regions are already sorted and non-overlapping (the
    :class:`~repro.stbus.routing.AddressMap` constructor enforces both),
    so a single pass computes the exact complement.
    """
    gaps: List[Tuple[int, int]] = []
    cursor = 0
    for region in address_map.regions:
        base = min(region.base, _ADDRESS_SPACE)
        if base > cursor:
            gaps.append((cursor, base))
        cursor = max(cursor, min(region.end, _ADDRESS_SPACE))
    if cursor < _ADDRESS_SPACE:
        gaps.append((cursor, _ADDRESS_SPACE))
    return gaps


def _witness_vector(config: NodeConfig, address: int,
                    expect: str) -> Dict[str, object]:
    """A concrete input vector exhibiting a decode error.

    The opcode is the aligned bus-wide LOAD (always legal); any
    initiator works because a mis-decoding request never consults the
    connectivity mask on the way to the error engine.
    """
    opcode = Opcode.load(config.bus_bytes)
    aligned = address - (address % config.bus_bytes)
    return {
        "initiator": 0,
        "opcode": str(opcode),
        "address": f"{aligned:#x}",
        "expect": expect,
    }


def exact_decode_verdict(
    config: NodeConfig,
) -> Tuple[str, str, Optional[Dict[str, object]]]:
    """Exact (verdict, reason, witness) for the decode-error bins.

    Never returns UNKNOWN: the interval argument is total over the
    32-bit address space.
    """
    address_map = config.resolved_map
    gaps = coverage_gaps(address_map)
    if gaps:
        start, end = gaps[0]
        covered = _ADDRESS_SPACE - sum(e - s for s, e in gaps)
        reason = (
            f"proven: interval union of {len(address_map.regions)} "
            f"region(s) covers {covered:#x} of the 2^32 space, leaving "
            f"{len(gaps)} gap(s); first gap [{start:#x},{end:#x}) "
            "decodes to no region"
        )
        return REACHABLE, reason, _witness_vector(
            config, start, "decode-error response (address in map gap)"
        )
    for region in address_map.regions:
        if not any(config.path_allowed(i, region.target)
                   for i in range(config.n_initiators)):
            reason = (
                f"proven: the map covers [0x0,{_ADDRESS_SPACE:#x}) but "
                f"region [{region.base:#x},{region.end:#x}) maps to "
                f"targ{region.target}, which the connectivity mask "
                "allows to no initiator — the node routes every such "
                "request to the error engine"
            )
            return REACHABLE, reason, _witness_vector(
                config, region.base,
                f"decode-error response (targ{region.target} path-masked "
                "for every initiator)",
            )
    reason = (
        f"interval-coverage proof: {len(address_map.regions)} region(s) "
        f"union to [0x0,{_ADDRESS_SPACE:#x}) with no gap, and every "
        "region's target is reachable by >=1 allowed initiator — no "
        "32-bit address can produce a decode error"
    )
    return UNREACHABLE, reason, None


@dataclass
class UnrDelta:
    """One bin verdict rewritten by the exact engine."""

    bin_key: str
    old_verdict: str
    new_verdict: str
    old_reason: str
    new_reason: str
    witness: Optional[Dict[str, object]] = None

    def render(self) -> str:
        arrow = (f"{self.old_verdict} -> {self.new_verdict}"
                 if self.old_verdict != self.new_verdict
                 else f"{self.new_verdict} (probe argument replaced "
                      "by exact proof)")
        return f"{self.bin_key}: {arrow}"

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "bin": self.bin_key,
            "old_verdict": self.old_verdict,
            "new_verdict": self.new_verdict,
            "new_reason": self.new_reason,
        }
        if self.witness is not None:
            out["witness"] = self.witness
        return out


@dataclass
class UnrUpgrade:
    """Summary of an exact-engine pass over one UNR report."""

    config_name: str
    unknown_before: int = 0
    unknown_after: int = 0
    deltas: List[UnrDelta] = field(default_factory=list)

    @property
    def unknown_free(self) -> bool:
        return self.unknown_after == 0

    def render(self) -> str:
        lines = [
            f"{self.config_name}: exact UNR upgrade — "
            f"{self.unknown_before} unknown before, "
            f"{self.unknown_after} after"
        ]
        lines.extend(f"  {d.render()}" for d in self.deltas)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "config": self.config_name,
            "unknown_before": self.unknown_before,
            "unknown_after": self.unknown_after,
            "deltas": [d.to_dict() for d in self.deltas],
        }


def upgrade_unr_report(report: UnrReport, config: NodeConfig) -> UnrUpgrade:
    """Replace probe-based verdicts with exact ones, in place.

    Rewrites the ``decode:error`` / ``response:error`` bins (the only
    ones the probe engine can leave UNKNOWN) with the interval-coverage
    result and attaches the structured witness vector; the delta list
    records every rewrite, including probe-REACHABLE verdicts whose
    sampled witness is replaced by the exact one, so the golden file
    pins the whole upgrade.
    """
    upgrade = UnrUpgrade(
        config_name=report.config_name,
        unknown_before=report.counts()[UNKNOWN],
    )
    verdict, reason, witness = exact_decode_verdict(config)
    for cell in report.verdicts:
        if (cell.group, cell.bin) in (("decode", "error"),
                                      ("response", "error")):
            upgrade.deltas.append(UnrDelta(
                bin_key=cell.key,
                old_verdict=cell.verdict,
                new_verdict=verdict,
                old_reason=cell.reason,
                new_reason=reason,
                witness=witness,
            ))
            cell.verdict = verdict
            cell.reason = reason
            cell.witness = witness
    upgrade.unknown_after = report.counts()[UNKNOWN]
    return upgrade
