"""Comb-constant facts proven from fully-lifted output functions.

:mod:`repro.analysis.constants` deliberately never proves a
combinational output constant — dynamically, a comb process *could*
compute anything.  The lifter changes that: when a comb process's
assignment to a signal is *closed* (no free variables, no OPAQUE), the
driven value is the same on every activation, and evaluating the closed
expression once yields a proven constant.

Soundness requires sole ownership: the fact only holds if no *other*
process ever writes the signal (another writer — lifted or not — could
drive a different value in some delta).  Writers are taken from the
elaboration dry-run's ``observed_writes`` plus ``declared_writes``, the
same ground truth the dataflow graph uses.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .ir import evaluate, is_closed
from .lift import LiftReport, lift_simulator

__all__ = ["symbolic_comb_constants", "comb_constant_drive"]


def _writer_names(sim) -> Dict[str, set]:
    """Map signal name → names of every process known to write it."""
    writers: Dict[str, set] = {}
    for info in list(sim.comb_processes) + list(sim.clocked_processes):
        written = set(info.observed_writes)
        if info.declared_writes is not None:
            written |= set(info.declared_writes)
        for sig in written:
            writers.setdefault(sig.name, set()).add(info.name)
    return writers


def symbolic_comb_constants(
    sim, lifted: Optional[LiftReport] = None
) -> Dict[str, Tuple[int, str]]:
    """Signals proven constant by closed comb output functions.

    Returns ``{signal_name: (value, reason)}``.  A signal qualifies only
    when every one of its writers is a comb process whose lifted
    assignment to it is closed, and all such writers agree on the value.
    """
    if lifted is None:
        lifted = lift_simulator(sim)
    writers = _writer_names(sim)
    comb_names = {info.name for info in sim.comb_processes}

    # candidate: signal -> {process_name: value}
    candidates: Dict[str, Dict[str, int]] = {}
    for proc in lifted.processes:
        if proc.kind != "comb":
            continue
        for assign in proc.assigns:
            if is_closed(assign.expr):
                value = evaluate(assign.expr, {})
                candidates.setdefault(assign.target, {})[proc.name] = value

    facts: Dict[str, Tuple[int, str]] = {}
    for name, by_proc in sorted(candidates.items()):
        sig_writers = writers.get(name, set())
        if sig_writers - comb_names:
            continue  # a clocked process also writes it
        if sig_writers - set(by_proc):
            continue  # an unproven comb writer remains
        values = set(by_proc.values())
        if len(values) != 1:
            continue  # proven writers disagree — not a constant net
        value = values.pop()
        facts[name] = (
            value,
            "symbolic: closed comb output function "
            f"({', '.join(sorted(by_proc))}) always drives {value}",
        )
    return facts


def comb_constant_drive(sim, signal_name: str) -> Optional[int]:
    """The proven constant a comb-driven signal always carries, or None.

    Convenience wrapper for single-signal queries (the lint dead-net
    rule); lifts the whole simulator, so callers with many queries
    should use :func:`symbolic_comb_constants` once instead.
    """
    facts = symbolic_comb_constants(sim)
    cell = facts.get(signal_name)
    return None if cell is None else cell[0]
