"""Functional RTL≡BCA equivalence: per-port proofs, not cone shapes.

Two complementary engines, both driving *bare* dual harnesses (the two
node views instantiated on identical port bundles, no BFMs, no
checkers):

**Pointwise comb enumeration.**  The node's combinational outputs —
request grants, response grants, programming ack/rdata — are functions
of the current pin values and the (initial, identical) node state.
Enumerating the input domain of each cone and comparing the settled
outputs across views is a *complete* functional proof at the
arbitration-relevant initial state: widths here are small and the
domain is the product of a handful of per-port stimulus states.  When a
configuration's domain exceeds the budget the cone is skipped with an
explicit ``symbolic-domain-too-large`` diagnostic — never silently.
When both views' output function lifted cleanly to IR over exactly the
stimulus pins, the proof runs on the IR instead of the simulator; if
the two IR expressions are structurally identical the cone is proven
for *all* inputs without enumerating at all.

**Bounded lockstep execution.**  Sequential behaviour (datapath
routing, response matching, arbitration state evolution, chunk locks,
programming-port side effects) is proven equal on a deterministic,
configuration-derived scenario set: both views receive byte-identical
external stimulus — packet streams, an always-ready echo responder
that reflects observed src/tid back, programming-port writes — and
every node-driven interface pin is compared every settled cycle.  The
scenarios are chosen so that each entry of the injectable BCA bug
registry falls inside the compared behaviour on at least one matrix
configuration (sub-word stores, >4-initiator source tags, chunk-locked
contention, LRU recency, programming-port reprogramming).

A mismatch from either engine carries a concrete witness: the stimulus
assignment (comb) or the scenario/cycle/pin triple (lockstep).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ...bca.node import BcaNode
from ...kernel.module import Module
from ...kernel.signal import Signal
from ...kernel.simulator import Simulator
from ...lint.diagnostics import Finding, Severity
from ...rtl.node import RtlNode
from ...stbus import (
    NodeConfig,
    Opcode,
    PROGRAMMABLE_POLICIES,
    StbusPort,
    T1_READ,
    T1_WRITE,
    Transaction,
    Type1Port,
    build_request_cells,
    build_response_cells,
)
from .ir import evaluate, free_vars, opaque_reasons
from .lift import LiftReport, lift_simulator
from .reach import coverage_gaps

__all__ = [
    "DEFAULT_DOMAIN_BUDGET",
    "PortEquivalence",
    "check_functional_equivalence",
]

#: Maximum number of enumeration points per comb cone before the engine
#: logs ``symbolic-domain-too-large`` and leaves the cone to lockstep.
DEFAULT_DOMAIN_BUDGET = 8192

EQUIVALENT = "EQUIVALENT"
MISMATCH = "MISMATCH"

#: Node-driven pins per port role (everything else is external stimulus).
_INIT_OUTPUTS = ("gnt", "r_req", "r_opc", "r_data", "r_eop", "r_src",
                 "r_tid")
_TARG_OUTPUTS = ("req", "add", "opc", "data", "be", "eop", "lck", "tid",
                 "src", "pri", "r_gnt")

_RESPONSE_LATENCY = 2


@dataclass
class PortEquivalence:
    """Combined functional verdict for one interface port."""

    port: str
    verdict: str = EQUIVALENT
    comb_points: int = 0
    comb_symbolic: bool = False
    comb_skipped: Optional[str] = None
    lockstep_cycles: int = 0
    scenarios: List[str] = field(default_factory=list)
    witness: Optional[Dict[str, object]] = None

    def render(self) -> str:
        bits = [f"{self.port}: {self.verdict}"]
        if self.comb_symbolic:
            bits.append("comb proven on IR (structural identity)")
        elif self.comb_points:
            bits.append(f"comb {self.comb_points} point(s)")
        if self.comb_skipped:
            bits.append(f"comb skipped: {self.comb_skipped}")
        bits.append(f"lockstep {self.lockstep_cycles} cycle(s) over "
                    f"{len(self.scenarios)} scenario(s)")
        if self.witness is not None:
            bits.append(f"witness: {self.witness}")
        return " — ".join(bits)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "port": self.port,
            "verdict": self.verdict,
            "comb_points": self.comb_points,
            "comb_symbolic": self.comb_symbolic,
            "lockstep_cycles": self.lockstep_cycles,
            "scenarios": list(self.scenarios),
        }
        if self.comb_skipped is not None:
            out["comb_skipped"] = self.comb_skipped
        if self.witness is not None:
            out["witness"] = self.witness
        return out


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------

class _Harness:
    """One bare view: node + port bundles, no environment components."""

    def __init__(self, config: NodeConfig, view: str,
                 bugs: Iterable[str] = ()):
        self.view = view
        self.sim = Simulator()
        self.top = Module(self.sim, "tb")
        width = config.data_width_bits
        self.init_ports = [
            StbusPort(self.top, f"init{i}", width)
            for i in range(config.n_initiators)
        ]
        self.targ_ports = [
            StbusPort(self.top, f"targ{t}", width)
            for t in range(config.n_targets)
        ]
        self.prog_port = (Type1Port(self.top, "prog")
                          if config.has_programming_port else None)
        if view == "rtl":
            self.dut = RtlNode(self.sim, "dut", config, self.init_ports,
                               self.targ_ports, prog_port=self.prog_port,
                               parent=self.top)
        else:
            self.dut = BcaNode(self.sim, "dut", config, self.init_ports,
                               self.targ_ports, prog_port=self.prog_port,
                               parent=self.top, bugs=bugs)
        self.sim.elaborate()
        self.pins: Dict[str, Signal] = {}
        for port in self.init_ports + self.targ_ports:
            for sig in port.signals():
                self.pins[sig.name] = sig
        if self.prog_port is not None:
            for sig in (self.prog_port.req, self.prog_port.ack,
                        self.prog_port.opc, self.prog_port.add,
                        self.prog_port.wdata, self.prog_port.rdata,
                        self.prog_port.be):
                self.pins[sig.name] = sig

    def settle(self) -> None:
        # External drives (writer None) sit in the commit queue; _settle
        # commits them, reports the changes, and runs the delta loop —
        # poke() would commit silently without waking comb sensitivity.
        self.sim._settle()

    def drive(self, name: str, value: int) -> None:
        self.pins[name].drive(value)


def _output_pins(config: NodeConfig) -> List[Tuple[str, str]]:
    """(port, signal-name) for every node-driven interface pin."""
    pins: List[Tuple[str, str]] = []
    for i in range(config.n_initiators):
        for attr in _INIT_OUTPUTS:
            pins.append((f"init{i}", f"tb.init{i}.{attr}"))
    for t in range(config.n_targets):
        for attr in _TARG_OUTPUTS:
            pins.append((f"targ{t}", f"tb.targ{t}.{attr}"))
    if config.has_programming_port:
        pins.append(("prog", "tb.prog.ack"))
        pins.append(("prog", "tb.prog.rdata"))
    return pins


def _port_of(name: str) -> str:
    return name.split(".")[1]


# ---------------------------------------------------------------------------
# comb cone enumeration
# ---------------------------------------------------------------------------

@dataclass
class _Cone:
    """One comb enumeration problem: stimulus axes and watched outputs."""

    name: str
    # Each axis: (signal name, candidate values) — or a joint axis of
    # several signals enumerated together as tuples of (name, value).
    axes: List[List[Tuple[Tuple[str, int], ...]]]
    outputs: List[str]

    @property
    def domain_size(self) -> int:
        size = 1
        for axis in self.axes:
            size *= len(axis)
        return size

    def points(self):
        for combo in itertools.product(*self.axes):
            env: Dict[str, int] = {}
            for group in combo:
                env.update(dict(group))
            yield env


def _request_axis(config: NodeConfig, i: int, addresses: List[int],
                  variants: bool) -> List[Tuple[Tuple[str, int], ...]]:
    """Joint stimulus states for one initiator's request channel."""
    p = f"tb.init{i}"
    opc = Opcode.load(config.bus_bytes).encode()
    states = [(
        (f"{p}.req", 0), (f"{p}.add", 0), (f"{p}.opc", 0),
        (f"{p}.eop", 0), (f"{p}.lck", 0), (f"{p}.pri", 0),
    )]
    for addr in addresses:
        states.append((
            (f"{p}.req", 1), (f"{p}.add", addr), (f"{p}.opc", opc),
            (f"{p}.eop", 1), (f"{p}.lck", 0), (f"{p}.pri", 0),
        ))
    if variants and addresses:
        addr = addresses[0]
        # mid-packet (eop low) and chunk-locked final cells
        states.append((
            (f"{p}.req", 1), (f"{p}.add", addr), (f"{p}.opc", opc),
            (f"{p}.eop", 0), (f"{p}.lck", 0), (f"{p}.pri", 0),
        ))
        states.append((
            (f"{p}.req", 1), (f"{p}.add", addr), (f"{p}.opc", opc),
            (f"{p}.eop", 1), (f"{p}.lck", 1), (f"{p}.pri", 0),
        ))
    return states


def _response_axis(config: NodeConfig, t: int,
                   variants: bool) -> List[Tuple[Tuple[str, int], ...]]:
    p = f"tb.targ{t}"
    states = [((f"{p}.r_req", 0), (f"{p}.r_src", 0), (f"{p}.r_eop", 0))]
    for src in range(config.n_initiators):
        states.append((
            (f"{p}.r_req", 1), (f"{p}.r_src", src), (f"{p}.r_eop", 1),
        ))
    if variants:
        states.append((
            (f"{p}.r_req", 1), (f"{p}.r_src", 0), (f"{p}.r_eop", 0),
        ))
    return states


def _decode_addresses(config: NodeConfig) -> List[int]:
    """One representative per decode class: region bases + first gap."""
    addresses = [r.base for r in config.resolved_map.regions[:4]]
    gaps = coverage_gaps(config.resolved_map)
    if gaps:
        start = gaps[0][0]
        addresses.append(start - (start % config.bus_bytes))
    return addresses


def _build_cones(config: NodeConfig) -> List[_Cone]:
    addresses = _decode_addresses(config)
    cones = []
    gnt_axis = [
        tuple((f"tb.targ{t}.gnt", v) for t in range(config.n_targets))
        for v in (1, 0)
    ]
    cones.append(_Cone(
        name="request-grant",
        axes=[gnt_axis] + [
            _request_axis(config, i, addresses, variants=(i == 0))
            for i in range(config.n_initiators)
        ],
        outputs=[f"tb.init{i}.gnt" for i in range(config.n_initiators)],
    ))
    rgnt_axis = [
        tuple((f"tb.init{i}.r_gnt", v) for i in range(config.n_initiators))
        for v in (1, 0)
    ]
    cones.append(_Cone(
        name="response-grant",
        axes=[rgnt_axis] + [
            _response_axis(config, t, variants=(t == 0))
            for t in range(config.n_targets)
        ],
        outputs=[f"tb.targ{t}.r_gnt" for t in range(config.n_targets)],
    ))
    if config.has_programming_port:
        n_regs = max(1, config.n_initiators)
        addr_axis = [(("tb.prog.add", 4 * i),)
                     for i in range(min(n_regs + 1, 8))]
        cones.append(_Cone(
            name="programming",
            axes=[[(("tb.prog.req", 0),), (("tb.prog.req", 1),)],
                  addr_axis],
            outputs=["tb.prog.ack", "tb.prog.rdata"],
        ))
    return cones


def _ir_output_exprs(cone: _Cone, lifted: Dict[str, LiftReport]
                     ) -> Optional[Dict[str, Dict[str, object]]]:
    """Per-view clean IR expressions for every cone output, or None.

    Qualifies only when, in *both* views, each output has exactly one
    comb assignment, opaque-free, whose free variables are all stimulus
    pins of this cone (so IR evaluation needs no hidden state).
    """
    stimulus = set()
    for axis in cone.axes:
        for group in axis:
            stimulus.update(name for name, _ in group)
    result: Dict[str, Dict[str, object]] = {"rtl": {}, "bca": {}}
    for view, report in lifted.items():
        for output in cone.outputs:
            exprs = [
                assign.expr
                for proc in report.processes if proc.kind == "comb"
                for assign in proc.assigns if assign.target == output
            ]
            if len(exprs) != 1 or opaque_reasons(exprs[0]):
                return None
            if not free_vars(exprs[0]) <= stimulus:
                return None
            result[view][output] = exprs[0]
    return result


def _run_comb_engine(
    config: NodeConfig,
    rtl: _Harness,
    bca: _Harness,
    lifted: Dict[str, LiftReport],
    budget: int,
    ports: Dict[str, PortEquivalence],
    findings: List[Finding],
) -> None:
    for cone in _build_cones(config):
        cone_ports = sorted({_port_of(o) for o in cone.outputs})
        ir_exprs = _ir_output_exprs(cone, lifted)
        if ir_exprs is not None:
            if all(ir_exprs["rtl"][o] == ir_exprs["bca"][o]
                   for o in cone.outputs):
                # Structurally identical output functions: equal for
                # every input assignment, no enumeration needed.
                for port in cone_ports:
                    ports[port].comb_symbolic = True
                continue
        if cone.domain_size > budget:
            reason = (
                f"{cone.name} cone domain has {cone.domain_size} points "
                f"(budget {budget}); relying on lockstep for these pins"
            )
            for port in cone_ports:
                ports[port].comb_skipped = reason
            findings.append(Finding(
                rule="symbolic-domain-too-large",
                severity=Severity.INFO,
                message=f"{config.name}: {reason}",
                process=f"xview:{cone.name}",
                hint="raise the budget with --symbolic-budget to "
                     "enumerate this cone exhaustively",
            ))
            continue
        for env in cone.points():
            if ir_exprs is not None:
                values = {
                    view: {o: evaluate(ir_exprs[view][o], env)
                           for o in cone.outputs}
                    for view in ("rtl", "bca")
                }
            else:
                for name, value in env.items():
                    rtl.drive(name, value)
                    bca.drive(name, value)
                rtl.settle()
                bca.settle()
                values = {
                    "rtl": {o: rtl.pins[o].value for o in cone.outputs},
                    "bca": {o: bca.pins[o].value for o in cone.outputs},
                }
            for port in cone_ports:
                ports[port].comb_points += 1
            for output in cone.outputs:
                if values["rtl"][output] != values["bca"][output]:
                    port = ports[_port_of(output)]
                    if port.witness is None:
                        port.witness = {
                            "engine": "comb",
                            "cone": cone.name,
                            "signal": output,
                            "rtl": values["rtl"][output],
                            "bca": values["bca"][output],
                            "inputs": {k: env[k] for k in sorted(env)},
                        }
                    port.verdict = MISMATCH
        # Park both harnesses back at all-idle before the next cone.
        for harness in (rtl, bca):
            for port_obj in harness.init_ports:
                port_obj.idle_request()
                port_obj.r_gnt.drive(0)
            for port_obj in harness.targ_ports:
                port_obj.gnt.drive(0)
                port_obj.idle_response()
            if harness.prog_port is not None:
                harness.prog_port.req.drive(0)
            harness.settle()


# ---------------------------------------------------------------------------
# lockstep scenarios
# ---------------------------------------------------------------------------

@dataclass
class _Scenario:
    name: str
    #: initiator -> (start cycle, packet list); each packet is a cell list.
    traffic: Dict[int, Tuple[int, List[list]]] = field(default_factory=dict)
    #: (kind, address, wdata) programming operations, run back-to-back.
    prog_ops: List[Tuple[int, int, int]] = field(default_factory=list)
    max_cycles: int = 150


def _packet(config: NodeConfig, opcode: Opcode, address: int,
            initiator: int, *, lck: int = 0, tid: int = 0) -> List[list]:
    data = b""
    if opcode.kind.carries_request_data:
        data = bytes((address + 11 * k) & 0xFF for k in range(opcode.size))
    txn = Transaction(opcode=opcode, address=address, data=data,
                      tid=tid, lck=lck, initiator=initiator)
    return build_request_cells(txn, config.bus_bytes, config.protocol_type)


def _first_region(config: NodeConfig, initiator: int):
    for region in config.resolved_map.regions:
        if config.path_allowed(initiator, region.target):
            return region
    return None


def _scenarios(config: NodeConfig) -> List[_Scenario]:
    scenarios: List[_Scenario] = []
    bus = config.bus_bytes
    load = Opcode.load(bus)
    store = Opcode.store(bus)
    amap = config.resolved_map

    # 1. Solo sweep: one initiator visits every decode class.
    packets: List[list] = []
    for region in amap.regions:
        if not config.path_allowed(0, region.target):
            continue
        packets.append(_packet(config, load, region.base, 0, tid=1))
        packets.append(_packet(config, store, region.base, 0, tid=2))
    gaps = coverage_gaps(amap)
    if gaps:
        addr = gaps[0][0]
        packets.append(
            _packet(config, load, addr - (addr % bus), 0, tid=3)
        )
    if packets:
        scenarios.append(_Scenario("solo-sweep", traffic={0: (0, packets)}))

    # 2. Sub-word, bus-unaligned store/load (the lane-placement class).
    region = _first_region(config, 0)
    if bus > 1 and region is not None:
        byte_op_s = Opcode.store(1)
        byte_op_l = Opcode.load(1)
        addr = region.base + 1
        scenarios.append(_Scenario("subword-unaligned", traffic={0: (0, [
            _packet(config, byte_op_s, addr, 0, tid=4),
            _packet(config, byte_op_l, addr, 0, tid=5),
        ])}))

    # 3. Contention: every allowed initiator hammers one shared target.
    shared = None
    for t in range(config.n_targets):
        allowed = [i for i in range(config.n_initiators)
                   if config.path_allowed(i, t)]
        if len(allowed) >= 2:
            shared = (t, allowed)
            break
    if shared is not None:
        t, allowed = shared
        base = amap.region_of(t).base
        scenarios.append(_Scenario("contention", traffic={
            i: (0, [_packet(config, load, base, i, tid=1),
                    _packet(config, load, base, i, tid=2)])
            for i in allowed
        }))

        # 4. Chunk lock: the locked pair comes from the initiator every
        # policy's initial-state tie-break would *lose* (the highest
        # index), so ignoring the lock visibly hands the chunk window to
        # the contender; the contender starts a cycle later (the locked
        # packet must win its first grant) and requests continuously.
        lo, hi = allowed[0], allowed[-1]
        scenarios.append(_Scenario("chunk-lock", traffic={
            hi: (0, [_packet(config, load, base, hi, lck=1, tid=1),
                     _packet(config, load, base, hi, tid=2)]),
            lo: (1, [_packet(config, load, base, lo, tid=3),
                     _packet(config, load, base, lo, tid=4),
                     _packet(config, load, base, lo, tid=5)]),
        }))

    # 5. Source sweep: every initiator's tag crosses the node.
    traffic = {}
    for i in range(config.n_initiators):
        region = _first_region(config, i)
        if region is not None:
            traffic[i] = (2 * i, [_packet(config, load, region.base, i,
                                          tid=i & 0xFF)])
    if traffic:
        scenarios.append(_Scenario("src-sweep", traffic=traffic))

    # 6. Reprogram-then-contend: arbitration parameters flip first.
    if config.has_programming_port and shared is not None:
        t, allowed = shared
        base = amap.region_of(t).base
        prog_ops = [(T1_WRITE, 0, 1), (T1_WRITE, 4 * allowed[-1], 9),
                    (T1_READ, 0, 0)]
        scenarios.append(_Scenario("prog-then-contend", prog_ops=prog_ops,
                                   traffic={
            i: (8, [_packet(config, load, base, i, tid=1),
                    _packet(config, load, base, i, tid=2)])
            for i in allowed
        }))
    return scenarios


class _ViewDriver:
    """Deterministic external world for one view of one scenario.

    All decisions are functions of the scenario and the pins *observed*
    on this view, so both views see byte-identical stimulus up to their
    first behavioural divergence — which is exactly what the per-cycle
    pin comparison reports.
    """

    def __init__(self, harness: _Harness, scenario: _Scenario,
                 config: NodeConfig):
        self.h = harness
        self.config = config
        self.traffic = {
            i: [start, [list(p) for p in packets], 0]
            for i, (start, packets) in scenario.traffic.items()
        }
        self.prog_ops = list(scenario.prog_ops)
        self.responses: Dict[int, List[list]] = {
            t: [] for t in range(config.n_targets)
        }
        self.collect: Dict[int, List] = {
            t: [] for t in range(config.n_targets)
        }

    def apply(self, cycle: int) -> None:
        for i, port in enumerate(self.h.init_ports):
            port.r_gnt.drive(1)
            state = self.traffic.get(i)
            if state and state[1] and cycle >= state[0]:
                port.drive_request(state[1][0][state[2]])
            else:
                port.idle_request()
        for t, port in enumerate(self.h.targ_ports):
            port.gnt.drive(1)
            queue = self.responses[t]
            if queue and queue[0][0] <= cycle:
                port.drive_response(queue[0][1][queue[0][2]])
            else:
                port.idle_response()
        if self.h.prog_port is not None:
            port = self.h.prog_port
            if self.prog_ops:
                kind, addr, wdata = self.prog_ops[0]
                port.req.drive(1)
                port.opc.drive(kind)
                port.add.drive(addr)
                port.wdata.drive(wdata & port.wdata.mask)
                port.be.drive(port.be.mask)
            else:
                port.req.drive(0)

    def _respond(self, t: int, cells: List, cycle: int) -> None:
        first = cells[0]
        opcode = Opcode.decode(first.opc)
        data = b""
        if opcode.kind.carries_response_data:
            data = bytes((first.add + 17 * k) & 0xFF
                         for k in range(opcode.size))
        resp = build_response_cells(
            opcode, self.config.bus_bytes, self.config.protocol_type,
            data=data, src=first.src, tid=first.tid, address=first.add,
        )
        self.responses[t].append([cycle + _RESPONSE_LATENCY, resp, 0])

    def update(self, cycle: int) -> None:
        for i, port in enumerate(self.h.init_ports):
            state = self.traffic.get(i)
            if (state and state[1] and cycle >= state[0]
                    and port.request_fired):
                state[2] += 1
                if state[2] >= len(state[1][0]):
                    state[1].pop(0)
                    state[2] = 0
        for t, port in enumerate(self.h.targ_ports):
            if port.req.value and port.gnt.value:
                cell = port.request_cell()
                self.collect[t].append(cell)
                if cell.eop:
                    self._respond(t, self.collect[t], cycle)
                    self.collect[t] = []
            queue = self.responses[t]
            if (queue and queue[0][0] <= cycle
                    and port.r_req.value and port.r_gnt.value):
                queue[0][2] += 1
                if queue[0][2] >= len(queue[0][1]):
                    queue.pop(0)
        if self.h.prog_port is not None and self.prog_ops:
            port = self.h.prog_port
            if port.req.value and port.ack.value:
                self.prog_ops.pop(0)

    @property
    def quiescent(self) -> bool:
        return (not self.prog_ops
                and all(not s[1] for s in self.traffic.values())
                and all(not q for q in self.responses.values())
                and all(not c for c in self.collect.values()))


def _run_lockstep_engine(
    config: NodeConfig,
    bca_bugs: Iterable[str],
    ports: Dict[str, PortEquivalence],
) -> None:
    outputs = _output_pins(config)
    for scenario in _scenarios(config):
        rtl = _Harness(config, "rtl")
        bca = _Harness(config, "bca", bugs=bca_bugs)
        drivers = (_ViewDriver(rtl, scenario, config),
                   _ViewDriver(bca, scenario, config))
        for port in ports.values():
            port.scenarios.append(scenario.name)
        drained = 0
        for cycle in range(scenario.max_cycles):
            for driver in drivers:
                driver.apply(cycle)
                driver.h.settle()
            mismatch = None
            for port_name, pin in outputs:
                r = rtl.pins[pin].value
                b = bca.pins[pin].value
                if r != b:
                    mismatch = (port_name, pin, r, b)
                    break
            for port in ports.values():
                port.lockstep_cycles += 1
            if mismatch is not None:
                port_name, pin, r, b = mismatch
                port = ports[port_name]
                port.verdict = MISMATCH
                if port.witness is None:
                    port.witness = {
                        "engine": "lockstep",
                        "scenario": scenario.name,
                        "cycle": cycle,
                        "signal": pin,
                        "rtl": r,
                        "bca": b,
                    }
                break
            for driver in drivers:
                driver.update(cycle)
                driver.h.sim.step()
            if all(d.quiescent for d in drivers):
                drained += 1
                if drained >= 4:
                    break
            else:
                drained = 0


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def check_functional_equivalence(
    config: NodeConfig,
    *,
    budget: int = DEFAULT_DOMAIN_BUDGET,
    bca_bugs: Iterable[str] = (),
) -> Tuple[List[PortEquivalence], List[Finding], Dict[str, LiftReport]]:
    """Prove (or refute) per-port functional RTL≡BCA equivalence.

    Returns ``(port verdicts, findings, per-view lift reports)``.  A
    MISMATCH port contributes an ``xview-function`` ERROR finding with
    its witness; a skipped comb cone contributes the
    ``symbolic-domain-too-large`` INFO diagnostic.
    """
    ports: Dict[str, PortEquivalence] = {}
    for i in range(config.n_initiators):
        ports[f"init{i}"] = PortEquivalence(port=f"init{i}")
    for t in range(config.n_targets):
        ports[f"targ{t}"] = PortEquivalence(port=f"targ{t}")
    if config.has_programming_port:
        ports["prog"] = PortEquivalence(port="prog")

    findings: List[Finding] = []
    rtl = _Harness(config, "rtl")
    bca = _Harness(config, "bca", bugs=bca_bugs)
    lifted = {
        "rtl": lift_simulator(rtl.sim),
        "bca": lift_simulator(bca.sim),
    }
    _run_comb_engine(config, rtl, bca, lifted, budget, ports, findings)
    _run_lockstep_engine(config, bca_bugs, ports)

    for port in ports.values():
        if port.verdict == MISMATCH:
            findings.append(Finding(
                rule="xview-function",
                severity=Severity.ERROR,
                message=(
                    f"{config.name}: port {port.port} computes different "
                    f"functions in RTL and BCA — witness {port.witness}"
                ),
                process=f"xview:{port.port}",
                hint="the two views disagree on observable behaviour; "
                     "diff the node models at the witness cycle",
            ))
    return list(ports.values()), findings, lifted
