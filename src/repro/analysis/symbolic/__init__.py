"""Symbolic process semantics: lift, prove, reach.

The substrate the functional cross-view proofs and the exact UNR engine
stand on:

* :mod:`~repro.analysis.symbolic.ir` — a small bitvector expression IR
  (constants, variables, arithmetic/bit ops, comparisons, ``if/else`` as
  mux, and an explicit ``OPAQUE`` node for everything the lifter cannot
  translate);
* :mod:`~repro.analysis.symbolic.lift` — the AST lifter: per registered
  process, ``inspect.getsource`` + ``ast`` → one IR assignment per
  driven signal (a symbolic transition function for clocked processes, a
  symbolic output function for comb processes), degrading honestly to
  OPAQUE statements instead of guessing;
* :mod:`~repro.analysis.symbolic.consts` — comb-constant facts proven by
  evaluating fully-lifted closed output functions;
* :mod:`~repro.analysis.symbolic.equiv` — functional RTL≡BCA equivalence:
  pointwise comb-cone enumeration plus bounded lockstep execution of both
  views under identical stimulus, one verdict per interface port;
* :mod:`~repro.analysis.symbolic.reach` — the exact address-interval
  reachability engine that upgrades probe-based UNKNOWN verdicts to
  REACHABLE (with a concrete witness vector) or UNREACHABLE (with an
  interval-coverage proof).

Everything here is reachable through ``python -m repro.analysis
--symbolic`` and :func:`repro.analysis.analyze_config` with
``symbolic=True``; with the flag off none of these modules is imported
and the analysis output stays byte-identical to the non-symbolic pass.
"""

from .consts import symbolic_comb_constants
from .equiv import (
    DEFAULT_DOMAIN_BUDGET,
    PortEquivalence,
    check_functional_equivalence,
)
from .ir import (
    BinOp,
    BoolOp,
    Compare,
    Const,
    Expr,
    Mux,
    Opaque,
    OpaqueValueError,
    UnOp,
    Var,
    evaluate,
    free_vars,
    is_closed,
    opaque_reasons,
    render,
)
from .lift import LiftedAssign, LiftedProcess, LiftReport, lift_process, lift_simulator
from .reach import exact_decode_verdict, upgrade_unr_report
from .report import SymbolicReport, run_symbolic_analysis

__all__ = [
    "BinOp",
    "BoolOp",
    "Compare",
    "Const",
    "DEFAULT_DOMAIN_BUDGET",
    "Expr",
    "LiftReport",
    "LiftedAssign",
    "LiftedProcess",
    "Mux",
    "Opaque",
    "OpaqueValueError",
    "PortEquivalence",
    "SymbolicReport",
    "UnOp",
    "Var",
    "check_functional_equivalence",
    "evaluate",
    "exact_decode_verdict",
    "free_vars",
    "is_closed",
    "lift_process",
    "lift_simulator",
    "opaque_reasons",
    "render",
    "run_symbolic_analysis",
    "symbolic_comb_constants",
    "upgrade_unr_report",
]
