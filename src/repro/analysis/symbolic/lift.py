"""AST lifter: registered process bodies → bitvector IR assignments.

For each :class:`~repro.kernel.simulator.ProcessInfo` the lifter parses
the process source (captured lazily by the kernel via
``inspect.getsource``) and translates the body into one IR expression
per *driven signal*: a symbolic transition function for clocked
processes, a symbolic output function for comb processes.

The translation is deliberately conservative.  It only emits IR whose
evaluation provably agrees with the Python source:

* attribute chains rooted at the process's ``self`` (or closure cells /
  globals) are resolved *statically* on the live object graph — never by
  calling anything; a chain ending in ``.value`` on a
  :class:`~repro.kernel.signal.Signal` becomes a free variable, a chain
  ending in a Python int becomes a constant;
* ``X.drive(expr)`` statements record an assignment; ``assert`` is a
  no-op; ``if/else`` merges per-target with ``Mux`` (an undriven side
  holds the signal's previous value, which is exactly the kernel's
  deferred-commit semantics);
* everything else — loops, calls, subscripts, conditionally-defined
  locals, properties — degrades *honestly* to :class:`Opaque` nodes or
  opaque statements carrying the construct name and source line, so a
  partially-lifted process can never be mistaken for a proven one.

Line numbers in OPAQUE reasons are relative to the start of the process
source (the kernel dedents the captured text before parsing).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...kernel.signal import Signal
from .ir import (
    BinOp,
    BoolOp,
    Compare,
    Const,
    Expr,
    Mux,
    Opaque,
    UnOp,
    Var,
    free_vars,
    opaque_reasons,
    render,
)

__all__ = [
    "LiftedAssign",
    "LiftedProcess",
    "LiftReport",
    "lift_process",
    "lift_simulator",
]


@dataclass
class LiftedAssign:
    """One driven signal and the expression it receives."""

    target: str
    width: int
    expr: Expr
    lineno: int

    @property
    def clean(self) -> bool:
        return not opaque_reasons(self.expr)

    def render(self) -> str:
        return f"{self.target} := {render(self.expr)}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "target": self.target,
            "width": self.width,
            "expr": render(self.expr),
            "clean": self.clean,
        }


@dataclass
class LiftedProcess:
    """Lift result for one registered process.

    ``status`` is one of:

    * ``clean`` — every statement translated, no OPAQUE anywhere;
    * ``partial`` — some assignments recovered, but at least one OPAQUE
      expression or untranslated statement remains;
    * ``opaque`` — nothing could be recovered (or the source itself was
      unavailable; then ``error`` says why).
    """

    name: str
    kind: str  # "comb" | "clocked"
    assigns: List[LiftedAssign] = field(default_factory=list)
    opaque_statements: List[str] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def clean(self) -> bool:
        return (self.error is None and not self.opaque_statements
                and all(a.clean for a in self.assigns))

    @property
    def status(self) -> str:
        if self.clean:
            return "clean"
        if self.assigns and any(a.clean for a in self.assigns):
            return "partial"
        return "opaque"

    def assign_for(self, target: str) -> Optional[LiftedAssign]:
        for assign in self.assigns:
            if assign.target == target:
                return assign
        return None

    def all_opaque_reasons(self) -> List[str]:
        reasons = list(self.opaque_statements)
        if self.error is not None:
            reasons.append(self.error)
        for assign in self.assigns:
            reasons.extend(opaque_reasons(assign.expr))
        return reasons

    def render(self) -> str:
        lines = [f"{self.kind} {self.name}: {self.status}"]
        for assign in self.assigns:
            lines.append(f"  {assign.render()}")
        for reason in self.opaque_statements:
            lines.append(f"  OPAQUE stmt: {reason}")
        if self.error is not None:
            lines.append(f"  error: {self.error}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "kind": self.kind,
            "status": self.status,
            "assigns": [a.to_dict() for a in self.assigns],
        }
        if self.opaque_statements:
            out["opaque_statements"] = list(self.opaque_statements)
        if self.error is not None:
            out["error"] = self.error
        return out


@dataclass
class LiftReport:
    """Lift results for every process of one simulator."""

    processes: List[LiftedProcess] = field(default_factory=list)

    @property
    def n_processes(self) -> int:
        return len(self.processes)

    @property
    def n_clean(self) -> int:
        return sum(1 for p in self.processes if p.status == "clean")

    @property
    def n_partial(self) -> int:
        return sum(1 for p in self.processes if p.status == "partial")

    @property
    def n_opaque(self) -> int:
        return sum(1 for p in self.processes if p.status == "opaque")

    def process_for(self, name: str) -> Optional[LiftedProcess]:
        for proc in self.processes:
            if proc.name == name:
                return proc
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_processes": self.n_processes,
            "n_clean": self.n_clean,
            "n_partial": self.n_partial,
            "n_opaque": self.n_opaque,
            "processes": {
                p.name: p.status for p in sorted(
                    self.processes, key=lambda p: p.name
                )
            },
        }


_NORMAL = 0
_RETURN = 1

_AST_BIN = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.FloorDiv: "//",
    ast.Mod: "%", ast.LShift: "<<", ast.RShift: ">>",
    ast.BitAnd: "&", ast.BitOr: "|", ast.BitXor: "^",
}

_AST_CMP = {
    ast.Eq: "==", ast.NotEq: "!=", ast.Lt: "<", ast.LtE: "<=",
    ast.Gt: ">", ast.GtE: ">=",
}

_UNRESOLVED = object()


class _Frame:
    """Mutable lexical state while walking one statement list."""

    __slots__ = ("objs", "exprs", "assigns")

    def __init__(self) -> None:
        self.objs: Dict[str, object] = {}
        self.exprs: Dict[str, Expr] = {}
        # target name -> (expr, width, lineno); insertion-ordered.
        self.assigns: Dict[str, Tuple[Expr, int, int]] = {}

    def copy(self) -> "_Frame":
        child = _Frame()
        child.objs = dict(self.objs)
        child.exprs = dict(self.exprs)
        child.assigns = dict(self.assigns)
        return child


def _src(node: ast.AST) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on our input
        text = type(node).__name__
    if len(text) > 60:
        text = text[:57] + "..."
    return text


class _Lifter:
    """One-shot translator for a single process."""

    def __init__(self, info) -> None:
        self.info = info
        func = info.process
        self.bound_self = getattr(func, "__self__", None)
        raw = getattr(func, "__func__", func)
        self.globals: Dict[str, object] = getattr(raw, "__globals__", {}) or {}
        self.closure: Dict[str, object] = {}
        code = getattr(raw, "__code__", None)
        cells = getattr(raw, "__closure__", None)
        if code is not None and cells:
            for name, cell in zip(code.co_freevars, cells):
                try:
                    self.closure[name] = cell.cell_contents
                except ValueError:  # pragma: no cover - unfilled cell
                    pass
        self.opaque_statements: List[str] = []

    # -- entry point ---------------------------------------------------

    def run(self) -> LiftedProcess:
        node = self.info.source_ast()
        result = LiftedProcess(name=self.info.name, kind=self.info.kind)
        if node is None:
            result.error = "source unavailable (inspect.getsource failed)"
            return result
        frame = _Frame()
        if isinstance(node, ast.Lambda):
            body: List[ast.stmt] = [ast.Expr(value=node.body)]
            ast.fix_missing_locations(ast.Module(body=body, type_ignores=[]))
            params = [a.arg for a in node.args.args]
        else:
            body = list(node.body)
            params = [a.arg for a in node.args.args]
        if params and self.bound_self is not None:
            frame.objs[params[0]] = self.bound_self
            params = params[1:]
        for name in params:
            # Processes are zero-argument callables; a surviving extra
            # parameter means the registration wrapped something we do
            # not understand.
            frame.exprs[name] = Opaque(f"unbound parameter {name!r}")
        self._exec_body(body, frame)
        result.opaque_statements = list(self.opaque_statements)
        for target, (expr, width, lineno) in frame.assigns.items():
            result.assigns.append(
                LiftedAssign(target=target, width=width, expr=expr,
                             lineno=lineno)
            )
        return result

    # -- statements ----------------------------------------------------

    def _opaque_stmt(self, node: ast.AST, what: str) -> None:
        self.opaque_statements.append(
            f"{what} (line {getattr(node, 'lineno', 0)}): {_src(node)}"
        )

    def _exec_body(self, stmts: List[ast.stmt], frame: _Frame) -> int:
        for stmt in stmts:
            if self._exec_stmt(stmt, frame) == _RETURN:
                return _RETURN
        return _NORMAL

    def _exec_stmt(self, stmt: ast.stmt, frame: _Frame) -> int:
        if isinstance(stmt, ast.Expr):
            self._exec_expr_stmt(stmt, frame)
            return _NORMAL
        if isinstance(stmt, ast.Assign):
            self._exec_assign(stmt, frame)
            return _NORMAL
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None and isinstance(stmt.target, ast.Name):
                self._bind_local(stmt.target.id, stmt.value, frame)
            return _NORMAL
        if isinstance(stmt, ast.AugAssign):
            self._exec_aug_assign(stmt, frame)
            return _NORMAL
        if isinstance(stmt, (ast.Assert, ast.Pass)):
            # An assert that fails crashes the simulation outright; on
            # every run the lifter models, it passed.  Semantically a
            # no-op for the value functions.
            return _NORMAL
        if isinstance(stmt, ast.Return):
            # The kernel ignores process return values.
            return _RETURN
        if isinstance(stmt, ast.If):
            return self._exec_if(stmt, frame)
        self._opaque_stmt(stmt, f"unsupported statement {type(stmt).__name__}")
        return _NORMAL

    def _exec_expr_stmt(self, stmt: ast.Expr, frame: _Frame) -> None:
        value = stmt.value
        if isinstance(value, ast.Constant):  # docstring
            return
        if isinstance(value, ast.Call):
            func = value.func
            if (isinstance(func, ast.Attribute) and func.attr == "drive"
                    and len(value.args) == 1 and not value.keywords):
                target = self._resolve_object(func.value, frame)
                if isinstance(target, Signal):
                    expr = self._lift_expr(value.args[0], frame)
                    frame.assigns[target.name] = (
                        expr, target.width, getattr(stmt, "lineno", 0)
                    )
                    return
            self._opaque_stmt(stmt, "untranslated call")
            return
        self._opaque_stmt(stmt, "unsupported expression statement")

    def _exec_assign(self, stmt: ast.Assign, frame: _Frame) -> None:
        if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
            self._opaque_stmt(stmt, "unsupported assignment target")
            return
        self._bind_local(stmt.targets[0].id, stmt.value, frame)

    def _bind_local(self, name: str, value: ast.expr, frame: _Frame) -> None:
        obj = self._resolve_object(value, frame)
        if obj is not _UNRESOLVED and not isinstance(obj, bool) \
                and not isinstance(obj, int):
            frame.objs[name] = obj
            frame.exprs.pop(name, None)
            return
        frame.exprs[name] = self._lift_expr(value, frame)
        frame.objs.pop(name, None)

    def _exec_aug_assign(self, stmt: ast.AugAssign, frame: _Frame) -> None:
        op = _AST_BIN.get(type(stmt.op))
        if (isinstance(stmt.target, ast.Name) and op is not None
                and stmt.target.id in frame.exprs):
            old = frame.exprs[stmt.target.id]
            frame.exprs[stmt.target.id] = BinOp(
                op, old, self._lift_expr(stmt.value, frame)
            )
            return
        self._opaque_stmt(stmt, "unsupported augmented assignment")

    def _exec_if(self, stmt: ast.If, frame: _Frame) -> int:
        static = self._static_truth(stmt.test, frame)
        if static is True:
            return self._exec_body(stmt.body, frame)
        if static is False:
            return self._exec_body(stmt.orelse, frame)
        cond = self._lift_expr(stmt.test, frame)
        then_frame = frame.copy()
        else_frame = frame.copy()
        then_flag = self._exec_body(stmt.body, then_frame)
        else_flag = self._exec_body(stmt.orelse, else_frame)
        if then_flag == _RETURN or else_flag == _RETURN:
            # A data-dependent early return makes everything after this
            # statement conditional in a way straight-line merge cannot
            # express; degrade the whole process instead of guessing.
            self._opaque_stmt(stmt, "conditional early return")
        self._merge(frame, cond, then_frame, else_frame, stmt)
        return _NORMAL

    def _merge(self, frame: _Frame, cond: Expr, then_frame: _Frame,
               else_frame: _Frame, stmt: ast.If) -> None:
        for target in dict(then_frame.assigns, **else_frame.assigns):
            then_cell = then_frame.assigns.get(target)
            else_cell = else_frame.assigns.get(target)
            cell = then_cell or else_cell
            assert cell is not None
            _, width, lineno = cell
            # An undriven side holds the previous committed value —
            # exactly the kernel's deferred-commit semantics.
            then_expr = then_cell[0] if then_cell else Var(target, width)
            else_expr = else_cell[0] if else_cell else Var(target, width)
            merged = then_expr if then_expr == else_expr \
                else Mux(cond, then_expr, else_expr)
            frame.assigns[target] = (merged, width, lineno)
        for name in dict(then_frame.exprs, **else_frame.exprs):
            then_expr = then_frame.exprs.get(name)
            else_expr = else_frame.exprs.get(name)
            if then_expr is None or else_expr is None:
                frame.exprs[name] = Opaque(
                    f"conditionally-defined local {name!r} "
                    f"(line {stmt.lineno})"
                )
            elif then_expr == else_expr:
                frame.exprs[name] = then_expr
            else:
                frame.exprs[name] = Mux(cond, then_expr, else_expr)
            frame.objs.pop(name, None)
        for name in dict(then_frame.objs, **else_frame.objs):
            then_obj = then_frame.objs.get(name, _UNRESOLVED)
            else_obj = else_frame.objs.get(name, _UNRESOLVED)
            if then_obj is else_obj:
                frame.objs[name] = then_obj
            else:
                frame.objs.pop(name, None)
                frame.exprs[name] = Opaque(
                    f"conditionally-bound object {name!r} "
                    f"(line {stmt.lineno})"
                )

    # -- static object resolution --------------------------------------

    def _resolve_object(self, node: ast.expr, frame: _Frame):
        """Resolve an attribute chain to a live Python object, or
        ``_UNRESOLVED``.  Never calls anything: properties and other
        descriptors on the owning class stop resolution cold."""
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            if node.id in frame.exprs:
                return _UNRESOLVED
            if node.id in frame.objs:
                return frame.objs[node.id]
            if node.id in self.closure:
                return self.closure[node.id]
            if node.id in self.globals:
                return self.globals[node.id]
            return _UNRESOLVED
        if isinstance(node, ast.Attribute):
            base = self._resolve_object(node.value, frame)
            if base is _UNRESOLVED or base is None:
                return _UNRESOLVED
            cls_attr = getattr(type(base), node.attr, None)
            if isinstance(cls_attr, property):
                # Reading a property executes code against live state;
                # that is simulation, not static resolution.
                return _UNRESOLVED
            try:
                return getattr(base, node.attr)
            except AttributeError:
                return _UNRESOLVED
        return _UNRESOLVED

    def _static_truth(self, test: ast.expr, frame: _Frame) -> Optional[bool]:
        """Decide a condition at lift time when it only involves static
        object identity (``x is None``) or resolved constants."""
        if isinstance(test, ast.Compare) and len(test.ops) == 1 \
                and isinstance(test.ops[0], (ast.Is, ast.IsNot)):
            left = self._resolve_object(test.left, frame)
            right = self._resolve_object(test.comparators[0], frame)
            if left is not _UNRESOLVED and right is not _UNRESOLVED:
                same = left is right
                return same if isinstance(test.ops[0], ast.Is) else not same
            return None
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            inner = self._static_truth(test.operand, frame)
            return None if inner is None else not inner
        obj = self._resolve_object(test, frame)
        if isinstance(obj, (bool, int)) and obj is not _UNRESOLVED:
            return bool(obj)
        return None

    # -- expressions ---------------------------------------------------

    def _lift_expr(self, node: ast.expr, frame: _Frame) -> Expr:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return Const(int(node.value))
            if isinstance(node.value, int):
                return Const(node.value)
            return Opaque(
                f"non-integer constant (line {node.lineno}): {_src(node)}"
            )
        if isinstance(node, ast.Name) and node.id in frame.exprs:
            return frame.exprs[node.id]
        if isinstance(node, ast.Attribute) and node.attr == "value":
            base = self._resolve_object(node.value, frame)
            if isinstance(base, Signal):
                return Var(base.name, base.width)
        if isinstance(node, (ast.Name, ast.Attribute)):
            obj = self._resolve_object(node, frame)
            if isinstance(obj, bool):
                return Const(int(obj))
            if isinstance(obj, int):
                return Const(obj)
            if isinstance(obj, Signal):
                return Opaque(
                    f"bare signal reference (line {node.lineno}): "
                    f"{_src(node)}"
                )
            return Opaque(
                f"unresolved name (line {node.lineno}): {_src(node)}"
            )
        if isinstance(node, ast.BinOp):
            op = _AST_BIN.get(type(node.op))
            if op is None:
                return Opaque(
                    f"unsupported operator {type(node.op).__name__} "
                    f"(line {node.lineno})"
                )
            return BinOp(op, self._lift_expr(node.left, frame),
                         self._lift_expr(node.right, frame))
        if isinstance(node, ast.UnaryOp):
            operand = self._lift_expr(node.operand, frame)
            if isinstance(node.op, ast.UAdd):
                return operand
            if isinstance(node.op, ast.USub):
                return UnOp("-", operand)
            if isinstance(node.op, ast.Invert):
                return UnOp("~", operand)
            if isinstance(node.op, ast.Not):
                return UnOp("not", operand)
        if isinstance(node, ast.BoolOp):
            op = "and" if isinstance(node.op, ast.And) else "or"
            return BoolOp(op, tuple(
                self._lift_expr(v, frame) for v in node.values
            ))
        if isinstance(node, ast.Compare):
            return self._lift_compare(node, frame)
        if isinstance(node, ast.IfExp):
            return Mux(self._lift_expr(node.test, frame),
                       self._lift_expr(node.body, frame),
                       self._lift_expr(node.orelse, frame))
        return Opaque(
            f"unsupported expression {type(node).__name__} "
            f"(line {getattr(node, 'lineno', 0)}): {_src(node)}"
        )

    def _lift_compare(self, node: ast.Compare, frame: _Frame) -> Expr:
        parts: List[Expr] = []
        left_node = node.left
        left = self._lift_expr(left_node, frame)
        for op_node, right_node in zip(node.ops, node.comparators):
            if isinstance(op_node, (ast.Is, ast.IsNot)):
                lobj = self._resolve_object(left_node, frame)
                robj = self._resolve_object(right_node, frame)
                if lobj is not _UNRESOLVED and robj is not _UNRESOLVED:
                    same = lobj is robj
                    if isinstance(op_node, ast.IsNot):
                        same = not same
                    parts.append(Const(int(same)))
                else:
                    parts.append(Opaque(
                        f"identity comparison (line {node.lineno}): "
                        f"{_src(node)}"
                    ))
                left_node = right_node
                left = self._lift_expr(right_node, frame)
                continue
            op = _AST_CMP.get(type(op_node))
            if op is None:
                parts.append(Opaque(
                    f"unsupported comparison {type(op_node).__name__} "
                    f"(line {node.lineno})"
                ))
                left_node = right_node
                left = self._lift_expr(right_node, frame)
                continue
            right = self._lift_expr(right_node, frame)
            parts.append(Compare(op, left, right))
            left_node = right_node
            left = right
        if len(parts) == 1:
            return parts[0]
        return BoolOp("and", tuple(parts))


def lift_process(info) -> LiftedProcess:
    """Lift one registered process into IR assignments."""
    return _Lifter(info).run()


def lift_simulator(sim) -> LiftReport:
    """Lift every comb and clocked process registered on a simulator."""
    report = LiftReport()
    for info in list(sim.comb_processes) + list(sim.clocked_processes):
        report.processes.append(lift_process(info))
    return report
