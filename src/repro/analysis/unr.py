"""Coverage unreachability (UNR) proofs.

The functional coverage space of :func:`repro.catg.coverage.build_node_coverage`
is already *pruned*: bins a configuration cannot reach (a T2 node cannot
reorder, a node without a programming port cannot take register accesses)
are excluded so that "100% coverage" stays meaningful.  This module is
the independent check of that pruning — and of the bins that remain.

It evaluates the **full, un-pruned bin universe** against the
configuration and the static facts (constant nets, signal widths,
address-map structure) and emits one verdict per bin:

* ``UNREACHABLE`` — a proof exists, recorded as the *blocking constant*
  or structural constraint (e.g. ``tb.prog.req`` is the constant 0, or
  ``be`` is one bit wide so no value below the full mask is a partial
  enable).
* ``REACHABLE`` — a witness exists (an opcode, an address, a topology
  fact) showing some legal stimulus hits the bin.
* ``UNKNOWN`` — neither; the engine refuses to guess.  UNKNOWN is the
  *sound* default: a wrong UNREACHABLE would let the flow sign off with
  a coverage hole papered over, while a wrong UNKNOWN merely leaves a
  bin for simulation to close.

Cross-checking the verdicts against the pruned model gives the two
interesting sets:

* bins **in the model** proven UNREACHABLE — modeling bugs: coverage can
  never reach 100%, surfaced as ``unr-model-unreachable`` errors;
* bins **excluded from the model** proven UNREACHABLE — the pruning,
  validated independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..catg.coverage import _LEN_BINS, build_node_coverage
from ..lint.diagnostics import Finding, Severity
from ..stbus import NodeConfig, ProtocolType, all_opcodes
from .constants import ConstantFacts

REACHABLE = "REACHABLE"
UNREACHABLE = "UNREACHABLE"
UNKNOWN = "UNKNOWN"


@dataclass
class BinVerdict:
    """Static verdict for one (group, bin) of the full universe."""

    group: str
    bin: str
    verdict: str
    reason: str  # witness (REACHABLE) or blocking constant (UNREACHABLE)
    in_model: bool  # present in the pruned per-config coverage model
    #: Structured witness vector attached by the exact symbolic engine
    #: (``--symbolic``); None on the plain probe-based pass, and then
    #: absent from the serialized form so non-symbolic output is
    #: byte-identical to earlier schema revisions.
    witness: Optional[Dict[str, object]] = None

    @property
    def key(self) -> str:
        return f"{self.group}:{self.bin}"

    def render(self) -> str:
        where = "model" if self.in_model else "pruned"
        return (f"{self.verdict:<12} {self.key:<28} [{where}] "
                f"{self.reason}")

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "group": self.group,
            "bin": self.bin,
            "verdict": self.verdict,
            "reason": self.reason,
            "in_model": self.in_model,
        }
        if self.witness is not None:
            out["witness"] = self.witness
        return out


@dataclass
class UnrReport:
    """All bin verdicts for one configuration."""

    config_name: str
    verdicts: List[BinVerdict] = field(default_factory=list)

    def verdict_for(self, group: str, bin_name: str) -> Optional[BinVerdict]:
        for verdict in self.verdicts:
            if verdict.group == group and verdict.bin == bin_name:
                return verdict
        return None

    def counts(self) -> Dict[str, int]:
        counts = {REACHABLE: 0, UNREACHABLE: 0, UNKNOWN: 0}
        for verdict in self.verdicts:
            counts[verdict.verdict] += 1
        return counts

    def model_unreachable(self) -> List[BinVerdict]:
        """Bins the model *keeps* but the engine proves unreachable.

        Any entry here is a modeling bug: regression coverage can never
        reach 100% on this configuration.
        """
        return [v for v in self.verdicts
                if v.in_model and v.verdict == UNREACHABLE]

    def pruning_validated(self) -> List[BinVerdict]:
        """Excluded bins independently proven unreachable."""
        return [v for v in self.verdicts
                if not v.in_model and v.verdict == UNREACHABLE]

    def findings(self) -> List[Finding]:
        """Model-unreachable bins as gate-able findings."""
        return [
            Finding(
                rule="unr-model-unreachable",
                severity=Severity.ERROR,
                message=(
                    f"coverage bin {v.key} is in the model but statically "
                    f"unreachable: {v.reason} — 100% coverage is "
                    "impossible on this configuration"
                ),
                signal=None,
                process=f"coverage:{v.key}",
                hint="prune the bin in build_node_coverage() or fix the "
                     "configuration constraint blocking it",
            )
            for v in self.model_unreachable()
        ]

    def render(self) -> str:
        counts = self.counts()
        lines = [
            f"{self.config_name}: UNR analysis over "
            f"{len(self.verdicts)} bins — "
            f"{counts[REACHABLE]} reachable, "
            f"{counts[UNREACHABLE]} unreachable, "
            f"{counts[UNKNOWN]} unknown"
        ]
        bad = self.model_unreachable()
        if bad:
            lines.append("  MODEL BUGS (in-model bins proven unreachable):")
            lines.extend(f"    {v.render()}" for v in bad)
        pruned = self.pruning_validated()
        if pruned:
            lines.append(
                f"  pruning validated: {len(pruned)} excluded bin(s) "
                "independently proven unreachable"
            )
            lines.extend(f"    {v.render()}" for v in pruned)
        unknown = [v for v in self.verdicts if v.verdict == UNKNOWN]
        if unknown:
            lines.append("  unknown (left for simulation to close):")
            lines.extend(f"    {v.render()}" for v in unknown)
        return "\n".join(lines) + "\n"

    def to_dict(self) -> Dict[str, object]:
        from . import SCHEMA_VERSION

        counts = self.counts()
        return {
            "schema_version": SCHEMA_VERSION,
            "config": self.config_name,
            "n_bins": len(self.verdicts),
            "reachable": counts[REACHABLE],
            "unreachable": counts[UNREACHABLE],
            "unknown": counts[UNKNOWN],
            "model_unreachable": [v.key for v in self.model_unreachable()],
            "verdicts": [v.to_dict() for v in self.verdicts],
        }


# ---------------------------------------------------------------------------
# the verdict engine
# ---------------------------------------------------------------------------

def _constant_str(constants: Optional[ConstantFacts], name: str
                  ) -> Optional[Tuple[int, str]]:
    """Look up a proven-constant net by hierarchical name."""
    if constants is None:
        return None
    for sig, value, reason in constants:
        if sig.name == name:
            return value, reason
    return None


def _probe_addresses(config: NodeConfig) -> List[int]:
    """Deterministic probe set for the decode-error search."""
    probes = [0x0, 0xFFFF_FFFF]
    for region in config.resolved_map.regions:
        probes.extend((region.base, max(0, region.base - 1),
                       region.end - 1, region.end & 0xFFFF_FFFF))
    return sorted(set(p for p in probes if 0 <= p <= 0xFFFF_FFFF))


def _decode_error_verdict(config: NodeConfig) -> Tuple[str, str]:
    """Can any initiator observe a decode error?

    Probes the resolved address map at region boundaries and the address
    extremes.  A hole or a disallowed path is a witness; a fully-covered
    probe set proves nothing about the space between probes, so the
    verdict degrades to UNKNOWN — the deliberate conservatism example:
    the map *might* cover the whole 32-bit space, but the engine only
    ever claims what its probes actually showed.
    """
    address_map = config.resolved_map
    for address in _probe_addresses(config):
        target = address_map.decode(address)
        if target is None:
            return REACHABLE, (
                f"witness: address {address:#x} decodes to no region"
            )
        if not any(config.path_allowed(i, target)
                   for i in range(config.n_initiators)):
            return REACHABLE, (
                f"witness: address {address:#x} decodes to targ{target}, "
                "reachable by no initiator (path masked)"
            )
    return UNKNOWN, (
        "every probed address decodes to an allowed target; the probe "
        "set cannot prove the full 2^32 space is covered, so the engine "
        "conservatively refuses an UNREACHABLE verdict"
    )


def analyze_unreachability(
    config: NodeConfig,
    *,
    constants: Optional[ConstantFacts] = None,
) -> UnrReport:
    """Evaluate the full un-pruned coverage universe for one config.

    ``constants`` — proven-constant facts from the elaborated testbench
    (when available they sharpen the programming-port verdicts with the
    actual blocking net; without them the engine falls back to the
    configuration-level argument).
    """
    report = UnrReport(config_name=config.name)
    model = build_node_coverage(config)

    def in_model(group: str, bin_name: str) -> bool:
        cover_group = model.groups.get(group)
        return bool(cover_group) and bin_name in cover_group.bins

    def emit(group: str, bin_name: str, verdict: str, reason: str) -> None:
        report.verdicts.append(BinVerdict(
            group=group, bin=str(bin_name), verdict=verdict, reason=reason,
            in_model=in_model(group, str(bin_name)),
        ))

    bus_bytes = config.bus_bytes
    max_cells = max(1, 64 // bus_bytes)

    # -- opcode: every legal opcode is generatable by the sequence layer.
    for opcode in all_opcodes():
        emit("opcode", str(opcode), REACHABLE,
             f"witness: {opcode.size}-byte {opcode.kind.name} is a legal "
             "operation the sequence layer emits directly")

    # -- request_len: bounded by the 64-byte maximum operation.
    for bin_name in _LEN_BINS:
        cells = int(bin_name)
        if cells <= max_cells:
            emit("request_len", bin_name, REACHABLE,
                 f"witness: a {cells * bus_bytes}-byte STORE packs into "
                 f"{cells} cell(s) on the {bus_bytes}-byte bus")
        else:
            emit("request_len", bin_name, UNREACHABLE,
                 f"blocking constraint: max operation is 64 bytes = "
                 f"{max_cells} cell(s) on the {bus_bytes}-byte bus; "
                 f"no packet reaches {cells} cells")

    # -- path: the connectivity mask is the whole story.
    for i in range(config.n_initiators):
        for t in range(config.n_targets):
            bin_name = f"init{i}->targ{t}"
            if config.path_allowed(i, t):
                emit("path", bin_name, REACHABLE,
                     "witness: path allowed by the connectivity mask; "
                     "any mapped address for the target hits it")
            else:
                emit("path", bin_name, UNREACHABLE,
                     f"blocking constraint: path_allowed({i}, {t}) is "
                     "False — the node routes the request to the error "
                     "engine, never to the target")

    # -- be: a 1-byte bus has no partial enable distinct from the full mask.
    emit("be", "full", REACHABLE,
         "witness: every aligned whole-word access asserts the full mask")
    if bus_bytes == 1:
        emit("be", "partial", UNREACHABLE,
             "blocking constant: be is 1 bit wide, value range [0..1]; "
             "its only non-zero value 1 *is* the full mask, so no cell "
             "can carry a partial enable")
    else:
        emit("be", "partial", REACHABLE,
             f"witness: a sub-word STORE drives be below the full mask "
             f"{(1 << bus_bytes) - 1:#x}")

    # -- chunk: lck is a free request bit.
    emit("chunk", "plain", REACHABLE,
         "witness: ordinary (unlocked) operations")
    emit("chunk", "locked", REACHABLE,
         "witness: the locked-sequence tests assert lck")

    # -- response / decode share the decode-error argument.
    decode_verdict, decode_reason = _decode_error_verdict(config)
    emit("response", "ok", REACHABLE,
         "witness: any correctly-decoded operation completes with an "
         "ok response")
    emit("response", "error", decode_verdict, decode_reason)
    emit("decode", "hit", REACHABLE,
         "witness: region_of() provides a mapped address per target")
    emit("decode", "error", decode_verdict, decode_reason)

    # -- outstanding: the collector clamps depth at max_outstanding.
    for depth in range(1, config.max_outstanding + 1):
        if depth == 1:
            emit("outstanding", "1", REACHABLE,
                 "witness: any solitary request reaches depth 1")
        else:
            emit("outstanding", str(depth), REACHABLE,
                 f"witness: back-to-back requests with credit "
                 f"{config.max_outstanding} stack to depth {depth}")

    # -- conflict: contention needs two initiators allowed at one target.
    emit("conflict", "solo", REACHABLE,
         "witness: any single request is a solo grant cycle")
    contended_targets = [
        t for t in range(config.n_targets)
        if sum(1 for i in range(config.n_initiators)
               if config.path_allowed(i, t)) >= 2
    ]
    if config.n_initiators < 2:
        emit("conflict", "contended", UNREACHABLE,
             "blocking constraint: a single-initiator node never has "
             "two requesters in one cycle")
    elif not contended_targets:
        emit("conflict", "contended", UNREACHABLE,
             "blocking constraint: the connectivity mask gives no "
             "target two allowed initiators")
    else:
        emit("conflict", "contended", REACHABLE,
             f"witness: targ{contended_targets[0]} is reachable by "
             ">=2 initiators issuing in the same cycle")

    # -- ordering: reordering needs T3, credit > 1 and multiple targets.
    emit("ordering", "in_order", REACHABLE,
         "witness: a solitary request's response always matches the "
         "order head")
    if config.protocol_type is not ProtocolType.T3:
        emit("ordering", "out_of_order", UNREACHABLE,
             "blocking constraint: protocol_type=T2 — the node enforces "
             "same-initiator response ordering, so responses return in "
             "request order")
    elif config.max_outstanding <= 1:
        emit("ordering", "out_of_order", UNREACHABLE,
             "blocking constraint: max_outstanding=1 — at most one "
             "response in flight, nothing to reorder")
    elif config.n_targets <= 1:
        emit("ordering", "out_of_order", UNREACHABLE,
             "blocking constraint: a single target serves responses in "
             "arrival order")
    else:
        emit("ordering", "out_of_order", REACHABLE,
             "witness: two T3 requests to targets with different "
             "latencies return reordered")

    # -- programming: the register port must exist and toggle.
    if not config.has_programming_port:
        for bin_name in ("write", "read"):
            emit("programming", bin_name, UNREACHABLE,
                 "blocking constant: tb.prog.req = 0 (port absent, "
                 "modeled tied to 0) — the sampling condition req & ack "
                 "can never fire")
    else:
        blocked = None
        for net in ("tb.prog.req", "tb.prog.ack"):
            fact = _constant_str(constants, net)
            if fact is not None and fact[0] == 0:
                blocked = (net, fact[0])
                break
        for bin_name in ("write", "read"):
            if blocked is not None:
                emit("programming", bin_name, UNREACHABLE,
                     f"blocking constant: {blocked[0]} = {blocked[1]} "
                     "(proven by the constant engine) — the sampling "
                     "condition req & ack can never fire")
            else:
                emit("programming", bin_name, REACHABLE,
                     "witness: the programming master drives req and the "
                     "node's register decode acks it")

    return report
