"""Command-line front end: ``python -m repro.analysis``.

Examples::

    # analyze the stock node configuration (default when no source given)
    python -m repro.analysis --stock

    # the full built-in sweep, JSON output
    python -m repro.analysis --matrix --format json

    # the *.cfg files of a configuration directory, races only
    python -m repro.analysis configs/ --rules race-delta-overwrite

    # change-impact analysis against a fingerprint baseline
    python -m repro.analysis impact --matrix --baseline baseline.json

Waiver files use the same dialect as ``repro.lint`` (one
``<rule-glob> <location-glob> [# reason]`` per line); one file can waive
findings of both tools.

Exit status: 0 when no error-severity findings remain after waivers,
1 when errors remain (with ``--strict``, warnings too), 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from .races import ANALYSIS_RULES, resolve_analysis_rules
from .runner import ConfigAnalysisReport, analyze_config
from .waivers import Waiver, WaiverError, load_waiver_file

USAGE_EXIT = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analysis",
        description="Static dataflow analysis: cones of influence, "
                    "race/CDC detection and coverage-unreachability "
                    "(UNR) proofs over elaborated designs.",
    )
    what = parser.add_argument_group("what to analyze (pick one)")
    what.add_argument(
        "config_dir", nargs="?", default=None,
        help="directory of *.cfg node configurations to analyze",
    )
    what.add_argument(
        "--matrix", action="store_true",
        help="analyze the built-in >36-configuration sweep",
    )
    what.add_argument(
        "--small", action="store_true",
        help="with --matrix: reduced 8-configuration subset",
    )
    what.add_argument(
        "--stock", action="store_true",
        help="analyze the stock (default) node configuration",
    )
    parser.add_argument(
        "--view", choices=("rtl", "bca"), action="append", default=None,
        help="restrict to one view (repeatable; default: both, plus the "
             "cross-view cone check)",
    )
    parser.add_argument(
        "--rules", metavar="ID", action="append", default=None,
        help="run only the named rule (repeatable)",
    )
    parser.add_argument(
        "--waivers", metavar="FILE", default=None,
        help="waiver file (same format as repro.lint): one "
             "'<rule-glob> <location-glob> [# reason]' per line",
    )
    parser.add_argument(
        "--waive", metavar="RULE:LOCATION", action="append", default=[],
        help="inline waiver (repeatable), e.g. "
             "--waive 'cdc-crossing:tb.dut.*'",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--no-unr", action="store_false", dest="unr",
        help="skip the coverage-unreachability verdicts (on by default)",
    )
    parser.add_argument(
        "--symbolic", action="store_true",
        help="run the symbolic pass: lift process bodies to IR, prove "
             "per-port functional RTL=BCA equivalence, and upgrade the "
             "UNR decode verdicts with the exact interval engine",
    )
    parser.add_argument(
        "--symbolic-budget", metavar="N", type=int, default=None,
        help="comb-cone enumeration budget for --symbolic (points per "
             "cone; larger cones are skipped with a "
             "symbolic-domain-too-large diagnostic)",
    )
    parser.add_argument(
        "--inject-bug", metavar="NAME", action="append", default=[],
        help="with --symbolic: inject a registered BCA bug into the "
             "equivalence harness (repeatable) to check it is caught",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit nonzero on warnings too, not only errors",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _load_waivers(args: argparse.Namespace) -> List[Waiver]:
    waivers: List[Waiver] = []
    if args.waivers:
        waivers.extend(load_waiver_file(args.waivers))
    for spec in args.waive:
        rule, sep, location = spec.partition(":")
        if not sep or not rule or not location:
            raise WaiverError(f"--waive expects RULE:LOCATION, got {spec!r}")
        waivers.append(Waiver(rule, location, "command line"))
    return waivers


def _gate(has_errors: bool, has_warnings: bool, strict: bool) -> int:
    if has_errors:
        return 1
    if strict and has_warnings:
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "impact":
        # Change-impact analysis is a distinct sub-tool with its own
        # argument surface (manifests in/out rather than rule gating).
        from .impact_cli import main as impact_main

        return impact_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        from ..lint.diagnostics import format_rule_listing, rule_doc

        entries = [
            (rule_id, rule.severity.value, rule.summary,
             rule_doc(rule.check))
            for rule_id, rule in sorted(ANALYSIS_RULES.items())
        ]
        entries.append((
            "xview-cone", "error",
            "RTL and BCA views must give each port the same fan-in cone",
            "Structural check: the two views' per-port fan-in cones "
            "(signal membership) must be identical.",
        ))
        entries.append((
            "xview-function", "error",
            "RTL and BCA must compute the same function per port "
            "(--symbolic)",
            "Functional check: pointwise comb enumeration plus bounded "
            "lockstep execution must agree on every node-driven pin.",
        ))
        entries.append((
            "symbolic-domain-too-large", "info",
            "a comb cone exceeded the enumeration budget (--symbolic)",
            "The cone's input domain was larger than --symbolic-budget; "
            "its pins are covered by the lockstep engine instead.",
        ))
        entries.append((
            "unr-model-unreachable", "error",
            "a coverage-model bin must not be statically unreachable",
            "An in-model coverage bin proven unreachable means 100% "
            "coverage is impossible on this configuration.",
        ))
        print(format_rule_listing(entries))
        return 0

    sources = [bool(args.config_dir), args.matrix, args.stock]
    if sum(sources) > 1:
        parser.print_usage(sys.stderr)
        print("repro-analysis: pick at most one of CONFIG_DIR, --matrix "
              "or --stock", file=sys.stderr)
        return USAGE_EXIT

    try:
        waivers = _load_waivers(args)
        rules = resolve_analysis_rules(args.rules)
    except (WaiverError, ValueError, OSError) as exc:
        print(f"repro-analysis: {exc}", file=sys.stderr)
        return USAGE_EXIT

    if args.matrix:
        from ..regression.configs import configuration_matrix
        configs = configuration_matrix(small=args.small)
    elif args.config_dir:
        from ..regression.configs import load_config_dir
        from ..stbus import ConfigError
        try:
            configs = load_config_dir(args.config_dir)
        except ConfigError as exc:
            print(f"repro-analysis: {exc}", file=sys.stderr)
            return USAGE_EXIT
    else:
        # Default (and --stock): the stock node configuration.
        from ..stbus import NodeConfig
        configs = [NodeConfig()]

    from ..lint.diagnostics import Severity

    if args.inject_bug:
        from ..bca import validate_bugs
        try:
            validate_bugs(args.inject_bug)
        except ValueError as exc:
            print(f"repro-analysis: {exc}", file=sys.stderr)
            return USAGE_EXIT

    views = tuple(args.view) if args.view else ("rtl", "bca")
    reports: List[ConfigAnalysisReport] = []
    for config in configs:
        reports.append(
            analyze_config(config, views=views, rules=rules,
                           waivers=waivers, unr=args.unr,
                           symbolic=args.symbolic,
                           symbolic_budget=args.symbolic_budget,
                           bca_bugs=tuple(args.inject_bug))
        )

    has_errors = any(r.has_errors for r in reports)
    has_warnings = any(
        f.severity is Severity.WARNING and not f.waived
        for r in reports for f in r.all_findings()
    )
    if args.format == "json":
        from . import SCHEMA_VERSION

        print(json.dumps(
            {
                "schema_version": SCHEMA_VERSION,
                "clean": all(r.clean for r in reports),
                "has_errors": has_errors,
                "configs": [r.to_dict() for r in reports],
            },
            indent=2,
        ))
    else:
        for report in reports:
            print(report.render(), end="")
        n_bad = sum(1 for r in reports if r.has_errors)
        print(f"analyzed {len(reports)} configuration(s) x "
              f"{len(views)} view(s): "
              + ("all clean of errors" if not n_bad
                 else f"{n_bad} with errors"))
        if args.symbolic:
            sym = [r.symbolic for r in reports if r.symbolic is not None]
            n_mismatch = sum(len(s.mismatched_ports) for s in sym)
            n_unknown = sum(s.unknown_unr for s in sym)
            print(f"symbolic: {n_mismatch} mismatched port(s), "
                  f"{n_unknown} UNKNOWN UNR verdict(s) across "
                  f"{len(sym)} configuration(s)")
    return _gate(has_errors, has_warnings, args.strict)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
