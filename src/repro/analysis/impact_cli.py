"""``python -m repro.analysis impact`` — fingerprint manifests and
change-impact reports.

Examples::

    # snapshot the current checkout's fingerprints (the baseline)
    python -m repro.analysis impact --matrix --small --write baseline.json

    # after editing sources: what changed, what must re-run?
    python -m repro.analysis impact --matrix --small --baseline baseline.json

    # machine-readable, over a config directory
    python -m repro.analysis impact configs/ --baseline baseline.json --format json

With ``--baseline`` the report lists the semantically-changed
processes, the affected fan-out cones, and the predicted re-run set;
exit status is 1 when anything is affected, 0 when every design is
provably unaffected.  ``--write`` snapshots the *current* fingerprints
(combinable with ``--baseline`` to diff and then roll the baseline
forward in one invocation).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

USAGE_EXIT = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analysis impact",
        description="Static change-impact analysis: per-process "
                    "semantic fingerprints, manifest diffing and "
                    "fan-out-cone re-run prediction.",
    )
    what = parser.add_argument_group("what to fingerprint (pick one)")
    what.add_argument(
        "config_dir", nargs="?", default=None,
        help="directory of *.cfg node configurations",
    )
    what.add_argument(
        "--matrix", action="store_true",
        help="fingerprint the built-in >36-configuration sweep",
    )
    what.add_argument(
        "--small", action="store_true",
        help="with --matrix: reduced 8-configuration subset",
    )
    what.add_argument(
        "--stock", action="store_true",
        help="fingerprint the stock (default) node configuration",
    )
    parser.add_argument(
        "--view", choices=("rtl", "bca"), action="append", default=None,
        help="restrict to one view (repeatable; default: both)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="diff the current fingerprints against this manifest",
    )
    parser.add_argument(
        "--write", metavar="FILE", default=None,
        help="write the current fingerprint manifest to FILE",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    sources = [bool(args.config_dir), args.matrix, args.stock]
    if sum(sources) > 1:
        parser.print_usage(sys.stderr)
        print("repro-analysis impact: pick at most one of CONFIG_DIR, "
              "--matrix or --stock", file=sys.stderr)
        return USAGE_EXIT
    if not args.baseline and not args.write:
        parser.print_usage(sys.stderr)
        print("repro-analysis impact: nothing to do — pass --baseline "
              "to diff and/or --write to snapshot", file=sys.stderr)
        return USAGE_EXIT

    from .impact import DesignManifest, ImpactIndex, ManifestError

    if args.matrix:
        from ..regression.configs import configuration_matrix
        configs = configuration_matrix(small=args.small)
    elif args.config_dir:
        from ..regression.configs import load_config_dir
        from ..stbus import ConfigError
        try:
            configs = load_config_dir(args.config_dir)
        except ConfigError as exc:
            print(f"repro-analysis impact: {exc}", file=sys.stderr)
            return USAGE_EXIT
    else:
        from ..stbus import NodeConfig
        configs = [NodeConfig()]

    baseline = None
    if args.baseline:
        try:
            baseline = DesignManifest.read(args.baseline)
        except ManifestError as exc:
            print(f"repro-analysis impact: {exc}", file=sys.stderr)
            return USAGE_EXIT

    views = tuple(args.view) if args.view else ("rtl", "bca")
    index = ImpactIndex(configs, views=views)
    current = index.manifest()

    notes: List[str] = []
    if args.write:
        current.write(args.write)
        notes.append(
            f"wrote manifest: {len(current.designs)} design(s), "
            f"{current.n_processes} process(es) -> {args.write}")

    if baseline is None:
        if args.format == "json":
            payload = {
                "schema_version": _schema_version(),
                "written": args.write,
                "n_designs": len(current.designs),
                "n_processes": current.n_processes,
                "counters": index.counters(),
            }
            print(json.dumps(payload, indent=2))
        else:
            for note in notes:
                print(note)
        return 0

    from .impact import diff_manifests

    report = diff_manifests(baseline, current, graphs=index.graphs)
    if args.format == "json":
        payload = report.to_dict()
        payload["counters"] = index.counters()
        if args.write:
            payload["written"] = args.write
        print(json.dumps(payload, indent=2))
    else:
        print(report.render(), end="")
        for note in notes:
            print(note)
    return 1 if report.affected else 0


def _schema_version() -> int:
    from . import SCHEMA_VERSION

    return SCHEMA_VERSION


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
