"""Run the dataflow analyses over simulators and configurations.

Mirrors :mod:`repro.lint.runner`: :func:`analyze_simulator` handles one
elaborated design, :func:`analyze_config` builds the common verification
environment around both views of a node configuration, runs the race /
CDC / tie-off rules on each, diffs the port cones across the views, and
attaches the configuration's UNR report (sharpened by the RTL view's
constant facts when available).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..kernel import Simulator
from ..lint.diagnostics import Finding, Severity
from ..lint.graph import DesignGraph
from ..stbus import NodeConfig
from .races import (
    ANALYSIS_RULES,
    DEFAULT_ANALYSIS_RULES,
    AnalysisContext,
    AnalysisRule,
    resolve_analysis_rules,
)
from .unr import UnrReport, analyze_unreachability
from .waivers import Waiver, apply_waivers
from .xview import cone_equivalence_findings


@dataclass
class AnalysisReport:
    """All analysis findings for one design (one simulator instance)."""

    design: str
    findings: List[Finding] = field(default_factory=list)
    n_signals: int = 0
    n_edges: int = 0
    n_constants: int = 0
    complete: bool = True

    def _live(self) -> List[Finding]:
        return [f for f in self.findings if not f.waived]

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self._live() if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self._live() if f.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    @property
    def clean(self) -> bool:
        return not self._live()

    def sort(self) -> None:
        self.findings.sort(
            key=lambda f: (f.severity.rank, f.rule, f.location, f.message)
        )

    def summary(self) -> str:
        n_err, n_warn = len(self.errors), len(self.warnings)
        n_waived = sum(1 for f in self.findings if f.waived)
        verdict = "CLEAN" if self.clean \
            else f"{n_err} error(s), {n_warn} warning(s)"
        extra = f", {n_waived} waived" if n_waived else ""
        completeness = "" if self.complete \
            else " (dataflow incomplete: undeclared clocked processes)"
        return (
            f"{self.design}: {verdict}{extra} "
            f"[{self.n_signals} signals, {self.n_edges} dataflow edges, "
            f"{self.n_constants} proven constants]{completeness}"
        )

    def render(self, show_waived: bool = True) -> str:
        lines = [self.summary()]
        for finding in self.findings:
            if finding.waived and not show_waived:
                continue
            lines.append("  " + finding.render().replace("\n", "\n  "))
        return "\n".join(lines) + "\n"

    def to_dict(self) -> Dict[str, object]:
        from . import SCHEMA_VERSION

        return {
            "schema_version": SCHEMA_VERSION,
            "design": self.design,
            "n_signals": self.n_signals,
            "n_edges": self.n_edges,
            "n_constants": self.n_constants,
            "complete": self.complete,
            "clean": self.clean,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [f.to_dict() for f in self.findings],
        }


def analyze_simulator(
    sim: Simulator,
    *,
    design: str = "design",
    rules: Optional[Sequence[AnalysisRule]] = None,
    waivers: Sequence[Waiver] = (),
) -> AnalysisReport:
    """Statically analyze one design; no cycle is ever simulated."""
    graph = DesignGraph.from_simulator(sim)
    ctx = AnalysisContext.from_graph(graph)
    report = AnalysisReport(
        design=design,
        n_signals=len(graph.signals),
        n_edges=ctx.dataflow.n_edges,
        n_constants=len(ctx.constants),
        complete=ctx.dataflow.complete,
    )
    for rule in rules if rules is not None else DEFAULT_ANALYSIS_RULES:
        report.findings.extend(rule.check(ctx))
    apply_waivers(report.findings, waivers)
    report.sort()
    return report


@dataclass
class ConfigAnalysisReport:
    """Analysis outcome for one configuration: views + cones + UNR."""

    config_name: str
    views: Dict[str, AnalysisReport] = field(default_factory=dict)
    cross_view: List[Finding] = field(default_factory=list)
    unr: Optional[UnrReport] = None
    unr_findings: List[Finding] = field(default_factory=list)
    #: Symbolic pass results (``--symbolic`` only); None otherwise, and
    #: then absent from both render() and to_dict() so non-symbolic
    #: output stays byte-identical.
    symbolic: Optional[object] = None

    def _symbolic_findings(self) -> List[Finding]:
        return [] if self.symbolic is None else self.symbolic.findings

    @property
    def has_errors(self) -> bool:
        gated = (self.cross_view + self.unr_findings
                 + self._symbolic_findings())
        return any(r.has_errors for r in self.views.values()) or any(
            f.severity is Severity.ERROR and not f.waived for f in gated
        )

    @property
    def clean(self) -> bool:
        extra = (self.cross_view + self.unr_findings
                 + self._symbolic_findings())
        return all(r.clean for r in self.views.values()) and not any(
            not f.waived for f in extra
        )

    def all_findings(self) -> List[Finding]:
        findings: List[Finding] = []
        for report in self.views.values():
            findings.extend(report.findings)
        findings.extend(self.cross_view)
        findings.extend(self.unr_findings)
        findings.extend(self._symbolic_findings())
        return findings

    def render(self) -> str:
        lines = []
        for view in sorted(self.views):
            lines.append(self.views[view].render().rstrip("\n"))
        if self.cross_view:
            lines.append(f"{self.config_name}: cross-view cones")
            for finding in self.cross_view:
                lines.append("  " + finding.render().replace("\n", "\n  "))
        elif len(self.views) > 1:
            lines.append(
                f"{self.config_name}: cross-view cones OK "
                "(RTL and BCA port cones match)"
            )
        for finding in self.unr_findings:
            lines.append("  " + finding.render().replace("\n", "\n  "))
        if self.unr is not None:
            lines.append(self.unr.render().rstrip("\n"))
        if self.symbolic is not None:
            lines.append(self.symbolic.render().rstrip("\n"))
        return "\n".join(lines) + "\n"

    def to_dict(self) -> Dict[str, object]:
        from . import SCHEMA_VERSION

        out: Dict[str, object] = {
            "schema_version": SCHEMA_VERSION,
            "config": self.config_name,
            "clean": self.clean,
            "has_errors": self.has_errors,
            "views": {v: r.to_dict() for v, r in self.views.items()},
            "cross_view": [f.to_dict() for f in self.cross_view],
            "unr_findings": [f.to_dict() for f in self.unr_findings],
            "unr": self.unr.to_dict() if self.unr is not None else None,
        }
        if self.symbolic is not None:
            out["symbolic"] = self.symbolic.to_dict()
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def analyze_config(
    config: NodeConfig,
    *,
    views: Sequence[str] = ("rtl", "bca"),
    rules: Optional[Sequence[AnalysisRule]] = None,
    waivers: Sequence[Waiver] = (),
    unr: bool = True,
    symbolic: bool = False,
    symbolic_budget: Optional[int] = None,
    bca_bugs: Sequence[str] = (),
) -> ConfigAnalysisReport:
    """Analyze every requested view of one configuration.

    With both views requested, also diffs the per-port fan-in cones.
    With ``unr`` on (the default), attaches the coverage-unreachability
    report, using the first analyzed view's constant facts to sharpen
    the blocking-constant messages.

    With ``symbolic`` on, additionally runs the symbolic pass: lift both
    views, prove per-port functional RTL≡BCA equivalence, and upgrade
    the UNR report's probe-based decode verdicts with the exact
    interval-coverage engine.  ``symbolic_budget`` caps the comb-cone
    enumeration domain (None = the engine default); ``bca_bugs`` injects
    defects into the BCA harness so the detection of the bug registry
    can itself be checked.
    """
    from ..lint.runner import build_env
    from .constants import derive_constants

    result = ConfigAnalysisReport(config_name=config.name)
    graphs: Dict[str, DesignGraph] = {}
    for view in views:
        env = build_env(config, view)
        graph = DesignGraph.from_simulator(env.sim)
        graphs[view] = graph
        ctx = AnalysisContext.from_graph(graph)
        report = AnalysisReport(
            design=f"{config.name}/{view}",
            n_signals=len(graph.signals),
            n_edges=ctx.dataflow.n_edges,
            n_constants=len(ctx.constants),
            complete=ctx.dataflow.complete,
        )
        for rule in rules if rules is not None else DEFAULT_ANALYSIS_RULES:
            report.findings.extend(rule.check(ctx))
        apply_waivers(report.findings, waivers)
        report.sort()
        result.views[view] = report

    if "rtl" in graphs and "bca" in graphs:
        result.cross_view = cone_equivalence_findings(
            config.name, graphs["rtl"], graphs["bca"]
        )
        apply_waivers(result.cross_view, waivers)

    if unr:
        constants = None
        for view in views:
            if view in graphs:
                constants = derive_constants(graphs[view])
                break
        result.unr = analyze_unreachability(config, constants=constants)
        result.unr_findings = result.unr.findings()
        apply_waivers(result.unr_findings, waivers)

    if symbolic:
        # Imported lazily: with --symbolic off the subpackage never
        # loads and the report layout stays exactly as before.
        from .symbolic import run_symbolic_analysis
        from .symbolic.equiv import DEFAULT_DOMAIN_BUDGET

        result.symbolic = run_symbolic_analysis(
            config,
            budget=(DEFAULT_DOMAIN_BUDGET if symbolic_budget is None
                    else symbolic_budget),
            bca_bugs=bca_bugs,
            unr_report=result.unr,
        )
        apply_waivers(result.symbolic.findings, waivers)
    return result


__all__ = [
    "ANALYSIS_RULES",
    "AnalysisReport",
    "AnalysisRule",
    "ConfigAnalysisReport",
    "analyze_config",
    "analyze_simulator",
    "resolve_analysis_rules",
]
