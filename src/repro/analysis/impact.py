"""Static change-impact analysis: semantic fingerprints and cone-scoped keys.

PR 9's result cache keys every entry on a monolithic hash of all design
sources, so touching a comment in one BCA decoder invalidates the whole
matrix.  This module makes re-verification cost proportional to the
*semantic* size of an edit:

* **Per-process semantic fingerprints.**  Each registered process is
  hashed over a normalized form of its body — comments, docstrings and
  formatting stripped; constants substituted by value exactly the way
  the symbolic lifter does — together with its declared read/write
  sets, sensitivity list and clock domain.  A comment-only edit, a
  docstring edit, a reformat or a constant rename leaves the
  fingerprint unchanged; a real body edit, a read/write-set change or
  a sensitivity change produces a new one.

* **The conservatism ladder.**  Normalization degrades honestly, and
  every fallback can only cause extra re-runs, never a stale hit:

  1. ``semantic-ir`` — the body lifts clean through
     :mod:`repro.analysis.symbolic`; the fingerprint hashes the sorted
     IR assignments (constants substituted, comments/formatting gone).
  2. ``semantic-ast`` — the lift was partial/opaque but the source
     parses; the fingerprint hashes the docstring-stripped AST dump
     (comment/format-insensitive, but constant renames re-run).
  3. ``raw-source`` — the source was recovered but not normalizable;
     the fingerprint hashes the raw source text (any edit re-runs).
  4. ``opaque`` — the source is unrecoverable; the *whole design* falls
     back to the monolithic design hash, with a structured diagnostic.

  Non-process code (constructors, sequence generation, checker logic,
  report rendering) is covered by the **environment residual hash**:
  every design-root module's AST with registered process bodies elided
  and docstrings stripped.  Any non-process change flips it — and with
  it every cone-scoped key — so orchestration edits behave exactly like
  the monolithic hash.  A module that fails to parse is hashed raw.

* **The design fingerprint manifest** (schema-versioned, one record per
  (config, view)) snapshots the fingerprints so two checkouts can be
  diffed: :func:`diff_manifests` maps a baseline/current pair to the
  set of semantically-changed processes per design.

* **Change-impact closure.**  Changed processes are pushed through the
  dataflow graph's fan-out cones (RTL and BCA independently) to the
  set of affected signals; every (config, view) — and therefore every
  (config, test, seed, view) cache entry — is classified affected or
  provably unaffected.

* **Cone-scoped cache keys.**  :class:`ImpactIndex` hands the result
  cache a per-job design key: the environment residual hash plus the
  sorted fingerprints of every process in the fan-in cone of the
  entry's observed signals (the VCD traces every signal and the
  checkers/coverage probe observe the ports, so the observation cone of
  a full-trace run is the entire design — the scoping power is that
  RTL and BCA process sets differ, and config-conditional processes
  exist only in some designs).  Unrelated or comment-only edits keep
  their cache hits by construction.
"""

from __future__ import annotations

import ast
import copy
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..cache.store import DESIGN_ROOTS, design_source_hash
from ..ioutil import atomic_write

#: Schema tag of the design fingerprint manifest; manifests from an
#: incompatible schema are rejected, not misread.
MANIFEST_SCHEMA = "repro.analysis/impact-manifest/v1"

#: Fingerprint normalization modes, strongest first (the conservatism
#: ladder of the module docstring).
MODE_SEMANTIC_IR = "semantic-ir"
MODE_SEMANTIC_AST = "semantic-ast"
MODE_RAW_SOURCE = "raw-source"
MODE_OPAQUE = "opaque"

#: The views every impact computation covers by default.
DEFAULT_VIEWS: Tuple[str, ...] = ("rtl", "bca")


class ManifestError(ValueError):
    """A manifest file could not be read or has the wrong schema."""


# ---------------------------------------------------------------------------
# Per-process fingerprints
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProcessFingerprint:
    """Stable semantic identity of one registered process.

    ``digest`` is ``None`` exactly when ``mode`` is ``opaque`` — an
    unrecoverable process has no per-process identity and forces the
    whole-design fallback for its design.
    """

    name: str
    kind: str  # "comb" | "clocked"
    mode: str  # MODE_* above
    digest: Optional[str]
    reason: Optional[str] = None
    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": self.kind,
            "mode": self.mode,
            "digest": self.digest,
            "reads": list(self.reads),
            "writes": list(self.writes),
        }
        if self.reason is not None:
            out["reason"] = self.reason
        return out

    @classmethod
    def from_dict(cls, name: str, data: Dict[str, object]
                  ) -> "ProcessFingerprint":
        return cls(
            name=name,
            kind=str(data["kind"]),
            mode=str(data["mode"]),
            digest=data.get("digest"),  # type: ignore[arg-type]
            reason=data.get("reason"),  # type: ignore[arg-type]
            reads=tuple(data.get("reads", ())),  # type: ignore[arg-type]
            writes=tuple(data.get("writes", ())),  # type: ignore[arg-type]
        )


class _StripDocstrings(ast.NodeTransformer):
    """Drop every bare-string expression statement (docstrings included).

    A bare string constant is semantically a no-op wherever it appears,
    so stripping all of them makes the dump insensitive to docstring
    edits without changing behavior.
    """

    def visit_Expr(self, node: ast.Expr):  # noqa: N802 (ast API)
        if isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, str):
            return None
        return self.generic_visit(node)


def _normalized_ast_dump(node: ast.AST) -> str:
    """Docstring-stripped, position-free dump of a process body."""
    cleaned = _StripDocstrings().visit(copy.deepcopy(node))
    return ast.dump(cleaned)


def _normalized_body(info) -> Tuple[str, Optional[str], Optional[str]]:
    """``(mode, body text, reason)`` for one process, per the ladder."""
    try:
        from .symbolic.lift import lift_process

        lifted = lift_process(info)
    except Exception as exc:  # lifter crash: degrade, never guess
        lifted = None
        lift_reason = f"lifter failed: {type(exc).__name__}: {exc}"
    else:
        lift_reason = None
    if lifted is not None and lifted.status == "clean":
        body = "\n".join(sorted(a.render() for a in lifted.assigns))
        return MODE_SEMANTIC_IR, body, None
    node = info.source_ast()
    if node is not None:
        try:
            return MODE_SEMANTIC_AST, _normalized_ast_dump(node), None
        except Exception as exc:
            lift_reason = (
                f"AST normalization failed: {type(exc).__name__}: {exc}"
            )
    text = info.source()
    if text is not None:
        return MODE_RAW_SOURCE, text, (
            lift_reason or "source recovered but not normalizable"
        )
    return MODE_OPAQUE, None, (
        "source unavailable (inspect.getsource failed)"
    )


def _dataflow_sets(info) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """The (reads, writes) signal names the dataflow graph uses for
    ``info`` — observed sets for comb, declarations for clocked."""
    if info.kind == "comb":
        reads = {s.name for s in info.sensitivity}
        reads.update(s.name for s in info.observed_reads)
        writes = {s.name for s in info.observed_writes}
    else:
        reads = {s.name for s in (info.declared_reads or ())}
        writes = {s.name for s in (info.declared_writes or ())}
        writes.update(s.name for s, _ in info.declared_tie_offs)
    return tuple(sorted(reads)), tuple(sorted(writes))


def process_fingerprint(info) -> ProcessFingerprint:
    """Semantic fingerprint of one :class:`~repro.kernel.ProcessInfo`."""
    reads, writes = _dataflow_sets(info)
    mode, body, reason = _normalized_body(info)
    if mode == MODE_OPAQUE:
        return ProcessFingerprint(
            name=info.name, kind=info.kind, mode=mode, digest=None,
            reason=reason, reads=reads, writes=writes,
        )
    payload = json.dumps({
        "kind": info.kind,
        "sensitivity": sorted(s.name for s in info.sensitivity),
        "declared_reads": (
            sorted(s.name for s in info.declared_reads)
            if info.declared_reads is not None else None
        ),
        "declared_writes": (
            sorted(s.name for s in info.declared_writes)
            if info.declared_writes is not None else None
        ),
        "tie_offs": sorted(
            [s.name, value] for s, value in info.declared_tie_offs
        ),
        "domain": info.domain,
        "body_mode": mode,
        "body": body,
    }, sort_keys=True)
    return ProcessFingerprint(
        name=info.name, kind=info.kind, mode=mode,
        digest=hashlib.sha256(payload.encode("utf-8")).hexdigest(),
        reason=reason, reads=reads, writes=writes,
    )


# ---------------------------------------------------------------------------
# Environment residual hash (everything that is not a process body)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EnvironmentDigest:
    """Hash of the design-root sources with process bodies elided.

    ``diagnostics`` names files that failed to parse and were hashed
    raw (still sound — raw hashing over-invalidates, never under-).
    """

    digest: str
    n_files: int
    n_elided: int
    diagnostics: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "digest": self.digest,
            "n_files": self.n_files,
            "n_elided": self.n_elided,
            "diagnostics": list(self.diagnostics),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "EnvironmentDigest":
        return cls(
            digest=str(data["digest"]),
            n_files=int(data["n_files"]),  # type: ignore[arg-type]
            n_elided=int(data["n_elided"]),  # type: ignore[arg-type]
            diagnostics=tuple(data.get("diagnostics", ())),  # type: ignore[arg-type]
        )


def process_spans(infos: Iterable) -> Set[Tuple[str, int, str]]:
    """``(absolute file, first line, name)`` of every process callable.

    A process whose underlying function has no code object (e.g. a
    ``functools.partial``) contributes no span — its defining module is
    then hashed with the body *included*, so edits to it invalidate
    everything: conservative, never stale.
    """
    spans: Set[Tuple[str, int, str]] = set()
    for info in infos:
        func = getattr(info.process, "__func__", info.process)
        code = getattr(func, "__code__", None)
        if code is None:
            continue
        try:
            filename = os.path.abspath(code.co_filename)
        except (TypeError, ValueError):  # pragma: no cover - exotic code
            continue
        spans.add((filename, code.co_firstlineno,
                   getattr(func, "__name__", "<unknown>")))
    return spans


class _ElideProcessBodies(_StripDocstrings):
    """Strip docstrings and replace registered process bodies with
    placeholders, so the residual dump captures exactly the
    non-process content of a module."""

    def __init__(self, spans: Set[Tuple[int, str]],
                 lambda_lines: Dict[int, int]) -> None:
        #: (lineno, name) pairs to elide; lambdas use name "<lambda>".
        self.spans = spans
        #: lineno -> number of lambdas on that line; an ambiguous line
        #: (several lambdas) is never elided — conservative.
        self.lambda_lines = lambda_lines
        self.n_elided = 0

    def _matches(self, node, name: str) -> bool:
        if (node.lineno, name) in self.spans:
            return True
        decorators = getattr(node, "decorator_list", None)
        if decorators:
            return (decorators[0].lineno, name) in self.spans
        return False

    def _visit_def(self, node):
        node = self.generic_visit(node)
        if self._matches(node, node.name):
            self.n_elided += 1
            node.body = [ast.Pass()]
        return node

    def visit_FunctionDef(self, node):  # noqa: N802 (ast API)
        return self._visit_def(node)

    def visit_AsyncFunctionDef(self, node):  # noqa: N802 (ast API)
        return self._visit_def(node)

    def visit_Lambda(self, node):  # noqa: N802 (ast API)
        node = self.generic_visit(node)
        if self._matches(node, "<lambda>") \
                and self.lambda_lines.get(node.lineno, 0) == 1:
            self.n_elided += 1
            node.body = ast.Constant(value=0)
        return node


def _normalize_newlines(data: bytes) -> bytes:
    return data.replace(b"\r\n", b"\n").replace(b"\r", b"\n")


def environment_digest(
    spans: Set[Tuple[str, int, str]],
    roots: Sequence[str] = DESIGN_ROOTS,
) -> EnvironmentDigest:
    """Residual hash of the design roots with process bodies elided."""
    package_dir = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    by_file: Dict[str, Set[Tuple[int, str]]] = {}
    for filename, lineno, name in spans:
        by_file.setdefault(filename, set()).add((lineno, name))
    digest = hashlib.sha256()
    n_files = 0
    n_elided = 0
    diagnostics: List[str] = []
    for root in roots:
        root_dir = os.path.join(package_dir, root)
        for dirpath, dirnames, filenames in os.walk(root_dir):
            dirnames[:] = sorted(
                d for d in dirnames if d != "__pycache__")
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                full = os.path.join(dirpath, name)
                rel = os.path.relpath(full, package_dir)
                with open(full, "rb") as handle:
                    raw = _normalize_newlines(handle.read())
                try:
                    tree = ast.parse(raw.decode("utf-8"))
                    lambda_lines: Dict[int, int] = {}
                    for node in ast.walk(tree):
                        if isinstance(node, ast.Lambda):
                            lambda_lines[node.lineno] = (
                                lambda_lines.get(node.lineno, 0) + 1)
                    eliding = _ElideProcessBodies(
                        by_file.get(os.path.abspath(full), set()),
                        lambda_lines,
                    )
                    body = ast.dump(eliding.visit(tree)).encode("utf-8")
                    n_elided += eliding.n_elided
                except (SyntaxError, UnicodeDecodeError) as exc:
                    # Unparsable file: hash it raw (comment edits in it
                    # will over-invalidate; never under-invalidate).
                    body = raw
                    diagnostics.append(f"{rel}: hashed raw ({exc})")
                digest.update(rel.encode("utf-8"))
                digest.update(b"\0")
                digest.update(body)
                digest.update(b"\0")
                n_files += 1
    return EnvironmentDigest(
        digest=digest.hexdigest(), n_files=n_files, n_elided=n_elided,
        diagnostics=tuple(sorted(diagnostics)),
    )


# ---------------------------------------------------------------------------
# Per-(config, view) fingerprints and the manifest
# ---------------------------------------------------------------------------


@dataclass
class DesignFingerprints:
    """Fingerprints of every process of one (config, view) design."""

    config_name: str
    view: str
    config_digest: str
    processes: Dict[str, ProcessFingerprint] = field(default_factory=dict)

    @property
    def opaque_processes(self) -> Tuple[str, ...]:
        return tuple(sorted(
            name for name, fp in self.processes.items()
            if fp.mode == MODE_OPAQUE
        ))

    @property
    def fallback_reason(self) -> Optional[str]:
        """Why this design cannot use a cone-scoped key (or ``None``)."""
        opaque = self.opaque_processes
        if opaque:
            return ("opaque-process: unrecoverable source for "
                    + ", ".join(opaque))
        return None

    def design_key(self, environment: EnvironmentDigest,
                   whole_design: str) -> str:
        """The cone-scoped design key: the environment residual hash
        plus the sorted fingerprints of every process in the fan-in
        cone of the observed signals.  A full-trace run observes every
        signal (VCD + checkers + coverage probe), so the cone is the
        whole process set of *this* design — still per-(config, view),
        which is where the scoping power lives.  Any opaque process
        degrades to the monolithic design hash: conservative, never
        stale."""
        if self.fallback_reason is not None:
            return whole_design
        payload = json.dumps({
            "schema": MANIFEST_SCHEMA,
            "environment": environment.digest,
            "processes": sorted(
                (name, fp.digest) for name, fp in self.processes.items()
            ),
        }, sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_dict(self) -> Dict[str, object]:
        return {
            "config": self.config_name,
            "view": self.view,
            "config_digest": self.config_digest,
            "processes": {
                name: fp.to_dict()
                for name, fp in sorted(self.processes.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DesignFingerprints":
        processes = {
            name: ProcessFingerprint.from_dict(name, fp)
            for name, fp in data.get("processes", {}).items()  # type: ignore[union-attr]
        }
        return cls(
            config_name=str(data["config"]),
            view=str(data["view"]),
            config_digest=str(data["config_digest"]),
            processes=processes,
        )


def _design_label(config_name: str, view: str) -> str:
    return f"{config_name}::{view}"


def _config_digest(config) -> str:
    # Resolve the address map first, exactly like the cache key does:
    # elaboration materializes the default map onto the config, so a
    # resolved and an unresolved copy must fingerprint identically.
    config.resolved_map
    return hashlib.sha256(config.to_text().encode("utf-8")).hexdigest()


def design_fingerprints(config, view: str):
    """Build one design and fingerprint it.

    Returns ``(DesignFingerprints, DesignGraph)`` — the graph is kept so
    the impact closure can run fan-out cones without re-elaborating.
    """
    from ..lint.graph import DesignGraph
    from ..lint.runner import build_env

    env = build_env(config, view)
    graph = DesignGraph.from_simulator(env.sim)
    fingerprints = DesignFingerprints(
        config_name=config.name, view=view,
        config_digest=_config_digest(config),
    )
    names_seen: Dict[str, int] = {}
    for info in list(graph.comb) + list(graph.clocked):
        fp = process_fingerprint(info)
        name = fp.name
        # Registration names are unique in practice; if a design ever
        # reuses one, disambiguate deterministically by occurrence.
        count = names_seen.get(name, 0)
        names_seen[name] = count + 1
        if count:
            name = f"{name}#{count}"
        fingerprints.processes[name] = fp
    return fingerprints, graph


@dataclass
class DesignManifest:
    """Schema-versioned snapshot of every design's fingerprints."""

    design_hash: str
    environment: EnvironmentDigest
    designs: Dict[str, DesignFingerprints] = field(default_factory=dict)
    schema: str = MANIFEST_SCHEMA

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": self.schema,
            "design_hash": self.design_hash,
            "environment": self.environment.to_dict(),
            "designs": {
                label: design.to_dict()
                for label, design in sorted(self.designs.items())
            },
        }

    @classmethod
    def from_dict(cls, data: object) -> "DesignManifest":
        if not isinstance(data, dict):
            raise ManifestError(
                f"manifest must be a JSON object, got {type(data).__name__}")
        schema = data.get("schema")
        if schema != MANIFEST_SCHEMA:
            raise ManifestError(
                f"manifest schema {schema!r} is not {MANIFEST_SCHEMA!r}; "
                "rebuild the baseline with this checkout")
        try:
            return cls(
                design_hash=str(data["design_hash"]),
                environment=EnvironmentDigest.from_dict(
                    data["environment"]),
                designs={
                    label: DesignFingerprints.from_dict(design)
                    for label, design in data["designs"].items()
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ManifestError(f"malformed manifest: {exc}")

    def write(self, path: str) -> None:
        with atomic_write(path) as handle:
            json.dump(self.to_dict(), handle, indent=1, sort_keys=True)
            handle.write("\n")

    @classmethod
    def read(cls, path: str) -> "DesignManifest":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as exc:
            raise ManifestError(f"cannot read manifest {path!r}: {exc}")
        except ValueError as exc:
            raise ManifestError(f"manifest {path!r} is not JSON: {exc}")
        return cls.from_dict(data)

    @property
    def n_processes(self) -> int:
        return sum(len(d.processes) for d in self.designs.values())


# ---------------------------------------------------------------------------
# The index: eager fingerprints + cone-scoped key resolution
# ---------------------------------------------------------------------------


class ImpactIndex:
    """Fingerprints of every (config, view) of one batch, plus the
    cone-scoped design-key resolver the result cache consumes.

    Built eagerly (all designs elaborated up front) so the environment
    residual hash elides *every* registered process body — including
    config-conditional processes that exist only in some designs — and
    is therefore one stable value shared by all keys.
    """

    def __init__(self, configs: Sequence,
                 views: Sequence[str] = DEFAULT_VIEWS) -> None:
        self.views = tuple(views)
        self.designs: Dict[str, DesignFingerprints] = {}
        self.graphs: Dict[str, object] = {}
        self.whole_design = design_source_hash()
        infos: List[object] = []
        for config in configs:
            for view in self.views:
                label = _design_label(config.name, view)
                if label in self.designs:
                    continue
                fingerprints, graph = design_fingerprints(config, view)
                self.designs[label] = fingerprints
                self.graphs[label] = graph
                infos.extend(list(graph.comb) + list(graph.clocked))
        self.environment = environment_digest(process_spans(infos))
        self._keys: Dict[str, str] = {}
        self.events: List[Dict[str, object]] = []
        self._counters: Dict[str, int] = {
            "impact.designs": len(self.designs),
            "impact.processes": 0,
            "impact.semantic_ir": 0,
            "impact.semantic_ast": 0,
            "impact.raw_source": 0,
            "impact.opaque": 0,
            "impact.cone_keys": 0,
            "impact.design_fallbacks": 0,
        }
        mode_counter = {
            MODE_SEMANTIC_IR: "impact.semantic_ir",
            MODE_SEMANTIC_AST: "impact.semantic_ast",
            MODE_RAW_SOURCE: "impact.raw_source",
            MODE_OPAQUE: "impact.opaque",
        }
        for label, design in sorted(self.designs.items()):
            for fp in design.processes.values():
                self._counters["impact.processes"] += 1
                self._counters[mode_counter[fp.mode]] += 1
            key = design.design_key(self.environment, self.whole_design)
            self._keys[label] = key
            fallback = design.fallback_reason
            if fallback is None:
                self._counters["impact.cone_keys"] += 1
                self.events.append({
                    "event": "impact.design-key", "design": label,
                    "mode": "cone", "key": key,
                })
            else:
                self._counters["impact.design_fallbacks"] += 1
                self.events.append({
                    "event": "impact.design-key", "design": label,
                    "mode": "whole-design", "key": key,
                    "reason": fallback,
                })

    def counters(self) -> Dict[str, int]:
        return dict(self._counters)

    def design_key(self, config_name: str, view: str) -> str:
        """The cone-scoped key component for one (config, view); the
        monolithic design hash for designs this index never saw (a job
        outside the indexed batch must not get a fabricated key)."""
        return self._keys.get(
            _design_label(config_name, view), self.whole_design)

    def resolver(self) -> Callable:
        """Per-job design resolver for
        :class:`repro.cache.ResultCache`."""
        def resolve(job) -> str:
            return self.design_key(job.config.name, job.view)

        return resolve

    def manifest(self) -> DesignManifest:
        return DesignManifest(
            design_hash=self.whole_design,
            environment=self.environment,
            designs=dict(self.designs),
        )


def build_manifest(configs: Sequence,
                   views: Sequence[str] = DEFAULT_VIEWS) -> DesignManifest:
    """Fingerprint ``configs`` under the current sources."""
    return ImpactIndex(configs, views=views).manifest()


# ---------------------------------------------------------------------------
# Manifest differ + change-impact closure
# ---------------------------------------------------------------------------


@dataclass
class DesignImpact:
    """Impact classification for one (config, view) design.

    ``affected`` means the design's cache entries must re-execute;
    ``reason`` says why (or ``"unchanged"``).  For process-level
    changes, ``affected_signals`` is the union of the changed
    processes' fan-out cones — the signals a re-run can legitimately
    change.
    """

    config_name: str
    view: str
    affected: bool
    reason: str
    changed_processes: Tuple[str, ...] = ()
    affected_signals: Tuple[str, ...] = ()

    @property
    def label(self) -> str:
        return _design_label(self.config_name, self.view)

    def to_dict(self) -> Dict[str, object]:
        return {
            "config": self.config_name,
            "view": self.view,
            "affected": self.affected,
            "reason": self.reason,
            "changed_processes": list(self.changed_processes),
            "affected_signals": list(self.affected_signals),
        }


@dataclass
class ImpactReport:
    """What changed between two manifests and what must re-run."""

    baseline_design_hash: str
    current_design_hash: str
    environment_changed: bool
    designs: List[DesignImpact] = field(default_factory=list)

    @property
    def affected(self) -> List[DesignImpact]:
        return [d for d in self.designs if d.affected]

    @property
    def unaffected(self) -> List[DesignImpact]:
        return [d for d in self.designs if not d.affected]

    @property
    def changed_processes(self) -> Tuple[str, ...]:
        out: Set[str] = set()
        for design in self.designs:
            out.update(design.changed_processes)
        return tuple(sorted(out))

    @property
    def rerun_fraction(self) -> float:
        if not self.designs:
            return 0.0
        return len(self.affected) / len(self.designs)

    def to_dict(self) -> Dict[str, object]:
        from . import SCHEMA_VERSION

        return {
            "schema_version": SCHEMA_VERSION,
            "baseline_design_hash": self.baseline_design_hash,
            "current_design_hash": self.current_design_hash,
            "environment_changed": self.environment_changed,
            "changed_processes": list(self.changed_processes),
            "n_designs": len(self.designs),
            "n_affected": len(self.affected),
            "rerun_fraction": round(self.rerun_fraction, 4),
            "designs": [d.to_dict() for d in self.designs],
        }

    def render(self) -> str:
        lines = [
            "Change impact: "
            f"{len(self.affected)}/{len(self.designs)} design(s) affected "
            f"({self.rerun_fraction * 100:.1f}% predicted re-run)",
        ]
        if self.environment_changed:
            lines.append(
                "  environment changed (non-process design code): every "
                "entry re-runs")
        changed = self.changed_processes
        if changed:
            lines.append(f"  changed processes ({len(changed)}):")
            for name in changed:
                lines.append(f"    {name}")
        for design in self.designs:
            if not design.affected:
                continue
            lines.append(
                f"  AFFECTED {design.label}: {design.reason}")
            if design.changed_processes:
                lines.append(
                    "    processes: "
                    + ", ".join(design.changed_processes))
            if design.affected_signals:
                shown = design.affected_signals[:8]
                suffix = (
                    f" (+{len(design.affected_signals) - len(shown)} more)"
                    if len(design.affected_signals) > len(shown) else ""
                )
                lines.append(
                    "    fan-out cone: " + ", ".join(shown) + suffix)
        unaffected = self.unaffected
        if unaffected:
            lines.append(
                f"  provably unaffected ({len(unaffected)}): "
                + ", ".join(d.label for d in unaffected))
        lines.append(
            "  predicted re-run set: every (test, seed) of the affected "
            "designs; all other cache entries stay warm")
        return "\n".join(lines) + "\n"


def affected_signal_cone(graph, process_names: Iterable[str]
                         ) -> Tuple[str, ...]:
    """Fan-out closure of the named processes' writes over ``graph``
    (a :class:`~repro.lint.graph.DesignGraph`): the written signals
    plus everything they can transitively influence."""
    from .dataflow import DataflowGraph

    dataflow = DataflowGraph(graph)
    by_name = {sig.name: sig for sig in graph.signals}
    wanted = set(process_names)
    affected: Set[str] = set()
    for info in list(graph.comb) + list(graph.clocked):
        if info.name not in wanted:
            continue
        _, writes = _dataflow_sets(info)
        for name in writes:
            affected.add(name)
            sig = by_name.get(name)
            if sig is not None:
                affected.update(
                    s.name for s in dataflow.fan_out_cone(sig))
    return tuple(sorted(affected))


def diff_manifests(
    baseline: DesignManifest,
    current: DesignManifest,
    graphs: Optional[Dict[str, object]] = None,
) -> ImpactReport:
    """Classify every design of two manifests as affected or provably
    unaffected.  Every uncertain case (schema'd fallback, missing
    design, environment change) classifies as affected — the differ
    never guesses a design safe."""
    env_changed = (
        baseline.environment.digest != current.environment.digest)
    report = ImpactReport(
        baseline_design_hash=baseline.design_hash,
        current_design_hash=current.design_hash,
        environment_changed=env_changed,
    )
    for label in sorted(set(baseline.designs) | set(current.designs)):
        base = baseline.designs.get(label)
        cur = current.designs.get(label)
        anchor = cur if cur is not None else base
        config_name, view = anchor.config_name, anchor.view
        if base is None or cur is None:
            report.designs.append(DesignImpact(
                config_name=config_name, view=view, affected=True,
                reason=("design added since baseline" if base is None
                        else "design removed since baseline"),
            ))
            continue
        if env_changed:
            report.designs.append(DesignImpact(
                config_name=config_name, view=view, affected=True,
                reason="environment changed (non-process design code)",
            ))
            continue
        fallback = base.fallback_reason or cur.fallback_reason
        if fallback is not None:
            report.designs.append(DesignImpact(
                config_name=config_name, view=view, affected=True,
                reason=f"conservative fallback ({fallback})",
            ))
            continue
        if base.config_digest != cur.config_digest:
            report.designs.append(DesignImpact(
                config_name=config_name, view=view, affected=True,
                reason="configuration text changed",
            ))
            continue
        changed = sorted(
            set(base.processes) ^ set(cur.processes)
            | {
                name for name in set(base.processes) & set(cur.processes)
                if base.processes[name].digest != cur.processes[name].digest
            }
        )
        if not changed:
            report.designs.append(DesignImpact(
                config_name=config_name, view=view, affected=False,
                reason="unchanged",
            ))
            continue
        signals: Tuple[str, ...] = ()
        graph = (graphs or {}).get(label)
        if graph is not None:
            signals = affected_signal_cone(graph, changed)
        report.designs.append(DesignImpact(
            config_name=config_name, view=view, affected=True,
            reason=f"{len(changed)} semantically-changed process(es)",
            changed_processes=tuple(changed),
            affected_signals=signals,
        ))
    return report
