"""Ordering-race, tie-off-conflict and clock-domain-crossing rules.

These rules target the hazard classes the kernel's *runtime* checks
cannot see:

* ``MultipleDriverError`` fires only when two processes drive different
  values onto one net in the *same* delta.  A clocked process committing
  a value at the posedge and a combinational process overwriting it
  while the deltas settle land in different delta slots — silent at
  runtime, and the last writer wins by scheduling accident.  That is the
  ``race-delta-overwrite`` rule.
* The kernel has one implicit clock, so nothing at runtime models a
  clock-domain crossing.  Designs annotate domains statically
  (``domain=`` at registration or ``Simulator.assign_clock_domain``);
  the ``cdc-crossing`` rule then flags any net registered in one domain
  and sampled in another — including through arbitrary combinational
  logic in between.  With no annotations everything shares the implicit
  default domain and the rule is vacuously quiet.
* Two processes tying one net to *different* constants is a contradiction
  in the declarations themselves (``tie-off-conflict``); the constant
  engine refuses to pick a side, so the conflict must surface here.

Rules follow the same registry shape as :mod:`repro.lint.rules` but
check an :class:`AnalysisContext` (design graph + dataflow graph +
constant facts) instead of a bare design graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..lint.diagnostics import Finding, Severity
from ..lint.graph import DesignGraph
from .constants import ConstantFacts, derive_constants
from .dataflow import DataflowGraph


@dataclass
class AnalysisContext:
    """Everything an analysis rule may consult."""

    graph: DesignGraph
    dataflow: DataflowGraph
    constants: ConstantFacts

    @classmethod
    def from_graph(cls, graph: DesignGraph) -> "AnalysisContext":
        return cls(
            graph=graph,
            dataflow=DataflowGraph(graph),
            constants=derive_constants(graph),
        )


class AnalysisRule:
    """A registered dataflow-analysis rule."""

    def __init__(
        self,
        rule_id: str,
        severity: Severity,
        summary: str,
        check: Callable[[AnalysisContext], List[Finding]],
    ) -> None:
        self.id = rule_id
        self.severity = severity
        self.summary = summary
        self.check = check

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AnalysisRule({self.id}, {self.severity.value})"


ANALYSIS_RULES: Dict[str, AnalysisRule] = {}


def _rule(rule_id: str, severity: Severity, summary: str):
    def register(check: Callable[[AnalysisContext], List[Finding]]):
        ANALYSIS_RULES[rule_id] = AnalysisRule(rule_id, severity, summary,
                                               check)
        return check

    return register


# ---------------------------------------------------------------------------
# race-delta-overwrite
# ---------------------------------------------------------------------------

@_rule(
    "race-delta-overwrite",
    Severity.ERROR,
    "a net written by both a clocked and a combinational process "
    "(the comb write silently overwrites the registered value)",
)
def check_delta_overwrite(ctx: AnalysisContext) -> List[Finding]:
    """Flag nets written by both a clocked and a comb process: the comb
    write lands in a later delta slot and silently overwrites the
    registered value, invisible to the runtime multi-driver check."""
    findings: List[Finding] = []
    for sig in ctx.graph.signals:
        writers = ctx.graph.known_writers.get(sig, [])
        clocked = sorted(
            (w for w in writers if w.kind == "clocked"),
            key=lambda w: w.name,
        )
        comb = sorted(
            (w for w in writers if w.kind == "comb"),
            key=lambda w: w.name,
        )
        if not clocked or not comb:
            continue
        readers = sorted(
            {r.name for r in ctx.graph.known_readers.get(sig, [])
             if r.kind == "clocked"}
        )
        observed = (
            f"; clocked reader(s) {', '.join(readers)} sample the comb "
            "override, not the registered value" if readers
            else "; the registered value is never observable"
        )
        findings.append(Finding(
            rule="race-delta-overwrite",
            severity=Severity.ERROR,
            message=(
                f"registered by {', '.join(w.name for w in clocked)} at "
                f"the clock edge but rewritten by "
                f"{', '.join(w.name for w in comb)} while the same "
                "cycle's deltas settle — the writes land in different "
                "delta slots, so the runtime multi-driver check never "
                f"fires{observed}"
            ),
            signal=sig.name,
            process=clocked[0].name,
            hint="give the net one owner: move the comb drive into the "
                 "clocked process, or split the net in two",
        ))
    return findings


# ---------------------------------------------------------------------------
# tie-off-conflict
# ---------------------------------------------------------------------------

@_rule(
    "tie-off-conflict",
    Severity.ERROR,
    "two processes declare tie-offs with different constants on one net",
)
def check_tie_off_conflict(ctx: AnalysisContext) -> List[Finding]:
    """Flag contradictory constant drives on one net: two declared
    tie-offs that disagree, or a declared tie-off contradicted by a comb
    process whose lifted output function proves a different constant."""
    findings: List[Finding] = []
    for sig, entries in ctx.graph.tie_offs.items():
        values = {value for _, value in entries}
        if len(values) >= 2:
            detail = ", ".join(
                f"{info.name}->{value}"
                for info, value in sorted(entries, key=lambda e: e[0].name)
            )
            findings.append(Finding(
                rule="tie-off-conflict",
                severity=Severity.ERROR,
                message=f"contradictory constant drives declared: {detail}",
                signal=sig.name,
                hint="the declarations cannot all hold; fix the wrong one "
                     "(the constant engine trusts neither)",
            ))
            continue
        # A consistent declaration can still be contradicted by what a
        # comb writer provably computes: lift any comb writer of the
        # tied net and compare its closed output function (if it has
        # one) against the declared value.
        declared = values.pop()
        declarants = {info.name for info, _ in entries}
        for writer in ctx.graph.known_writers.get(sig, []):
            if writer.kind != "comb" or writer.name in declarants:
                continue
            proven = _lifted_constant_drive(writer, sig.name)
            if proven is None or proven == declared:
                continue
            findings.append(Finding(
                rule="tie-off-conflict",
                severity=Severity.ERROR,
                message=(
                    f"declared tied to {declared} by "
                    f"{', '.join(sorted(declarants))}, but the lifted "
                    f"output function of {writer.name} proves it always "
                    f"drives {proven}"
                ),
                signal=sig.name,
                hint="the declaration and the comb logic disagree; one "
                     "of them is wrong",
            ))
    return findings


def _lifted_constant_drive(info, signal_name: str) -> Optional[int]:
    """The constant ``info`` provably always drives onto the net, or
    None when its lifted assignment is missing or not closed."""
    from .symbolic.ir import evaluate, is_closed
    from .symbolic.lift import lift_process

    lifted = lift_process(info)
    assign = lifted.assign_for(signal_name)
    if assign is None or not is_closed(assign.expr):
        return None
    return evaluate(assign.expr, {})


# ---------------------------------------------------------------------------
# cdc-crossing
# ---------------------------------------------------------------------------

@_rule(
    "cdc-crossing",
    Severity.ERROR,
    "a net registered in one clock domain is sampled in another "
    "(directly or through combinational logic)",
)
def check_cdc_crossing(ctx: AnalysisContext) -> List[Finding]:
    """Flag nets registered in one annotated clock domain and sampled
    in another (directly or through comb logic) with no synchronizer."""
    domains = ctx.graph.clock_domains()
    if len(domains) < 2:
        return []  # single (or implicit) domain: nothing can cross
    findings: List[Finding] = []

    def domain_of(info) -> str:
        return info.domain or "clk"

    # Clocked readers per signal, including sensitivity-free declared reads.
    clocked_readers: Dict[object, List] = {}
    for info in ctx.graph.clocked:
        for sig in info.declared_reads or ():
            clocked_readers.setdefault(sig, []).append(info)

    seen: set = set()
    for info in ctx.graph.clocked:
        src_domain = domain_of(info)
        for sig in info.declared_writes or ():
            # The written net plus everything it reaches through comb
            # logic in the same cycle.
            reach = {sig} | ctx.dataflow.comb_fan_out_cone(sig)
            for net in reach:
                for reader in clocked_readers.get(net, ()):
                    dst_domain = domain_of(reader)
                    if dst_domain == src_domain:
                        continue
                    key = (sig.name, net.name, src_domain, dst_domain)
                    if key in seen:
                        continue
                    seen.add(key)
                    via = "" if net is sig \
                        else f" (reaching {net.name} through comb logic)"
                    findings.append(Finding(
                        rule="cdc-crossing",
                        severity=Severity.ERROR,
                        message=(
                            f"registered in domain {src_domain!r} by "
                            f"{info.name} but sampled in domain "
                            f"{dst_domain!r} by {reader.name}{via} with "
                            "no synchronizer on the path"
                        ),
                        signal=sig.name,
                        process=reader.name,
                        hint="add a two-flop synchronizer in the "
                             "destination domain, or move both processes "
                             "into one domain",
                    ))
    return findings


#: Evaluation order (deterministic output order).
DEFAULT_ANALYSIS_RULES: Tuple[AnalysisRule, ...] = tuple(
    ANALYSIS_RULES[rule_id]
    for rule_id in (
        "race-delta-overwrite",
        "tie-off-conflict",
        "cdc-crossing",
    )
)


def resolve_analysis_rules(
    rule_ids: Optional[List[str]],
) -> Optional[List[AnalysisRule]]:
    """Map rule ids to rule records; None passes through (= defaults)."""
    if rule_ids is None:
        return None
    resolved = []
    for rule_id in rule_ids:
        try:
            resolved.append(ANALYSIS_RULES[rule_id])
        except KeyError:
            known = ", ".join(sorted(ANALYSIS_RULES))
            raise ValueError(
                f"unknown analysis rule {rule_id!r} (known: {known})"
            )
    return resolved
