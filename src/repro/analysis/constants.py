"""Constant propagation and value ranges over the static design graph.

Two sound sources of constant facts, both gated on the clocked write
universe being fully declared (``clocked_writes_known``) — without that,
an undeclared clocked process could drive anything and no net is provably
constant:

* **Declared tie-offs.**  A clocked process registered with
  ``tie_offs={sig: v}`` promises to drive ``sig`` to ``v`` on every
  activation.  If *every* known writer of ``sig`` makes that promise
  with the *same* value, the net is the constant ``v`` from the first
  clock edge on.
* **Undriven nets.**  A signal no process writes, still holding its
  initialization value after elaboration, stays at that value forever
  (external pokes would have toggled it during elaboration).

Combinational outputs are deliberately *never* proven constant: a comb
process may read hidden Python state (queue depths, counters) that the
dry run observed in only one configuration, so its output can change
even when no traced input does.  Conservative UNKNOWN beats a wrong
proof.

Value ranges are the trivial lattice over those facts: a proven constant
``v`` has range ``[v, v]``; anything else spans the signal's full
declared width.  That is enough to discharge range-style UNR arguments
(a 1-bit byte-enable can never take a "partial" value distinct from its
full mask).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from ..kernel import Signal
from ..lint.graph import DesignGraph


@dataclass(frozen=True)
class ValueRange:
    """Closed integer interval ``[lo, hi]`` a signal's value stays in."""

    lo: int
    hi: int

    @property
    def is_constant(self) -> bool:
        return self.lo == self.hi

    @staticmethod
    def constant(value: int) -> "ValueRange":
        return ValueRange(value, value)

    @staticmethod
    def full(sig: Signal) -> "ValueRange":
        return ValueRange(0, sig.mask)

    def __contains__(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def __str__(self) -> str:
        if self.is_constant:
            return f"[{self.lo}]"
        return f"[{self.lo}..{self.hi}]"


class ConstantFacts:
    """Proven-constant nets with the reason for each proof."""

    def __init__(self) -> None:
        self._facts: Dict[Signal, Tuple[int, str]] = {}

    def add(self, sig: Signal, value: int, reason: str) -> None:
        self._facts[sig] = (value, reason)

    def value_of(self, sig: Signal) -> Optional[int]:
        fact = self._facts.get(sig)
        return fact[0] if fact else None

    def reason_of(self, sig: Signal) -> Optional[str]:
        fact = self._facts.get(sig)
        return fact[1] if fact else None

    def __contains__(self, sig: Signal) -> bool:
        return sig in self._facts

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Tuple[Signal, int, str]]:
        for sig in sorted(self._facts, key=lambda s: s.name):
            value, reason = self._facts[sig]
            yield sig, value, reason

    def range_of(self, sig: Signal) -> ValueRange:
        value = self.value_of(sig)
        if value is not None:
            return ValueRange.constant(value)
        return ValueRange.full(sig)


def derive_constants(graph: DesignGraph) -> ConstantFacts:
    """All nets provably constant from declarations alone."""
    facts = ConstantFacts()
    if not graph.clocked_writes_known:
        # An undeclared clocked process could write any net: no proof
        # survives, so return the empty fact set rather than guess.
        return facts

    for sig in graph.signals:
        writers = graph.known_writers.get(sig, [])
        tied = graph.tie_offs.get(sig, [])
        if writers:
            if not tied:
                continue
            tied_procs = {id(info) for info, _ in tied}
            if any(id(w) not in tied_procs for w in writers):
                continue  # some writer drives a computed value
            values = {value for _, value in tied}
            if len(values) != 1:
                continue  # conflicting tie-offs: the races pass reports it
            value = values.pop()
            names = ", ".join(sorted(info.name for info, _ in tied))
            facts.add(sig, value,
                      f"tied off to {value} by {names}")
        else:
            if sig._value != sig.init:
                continue  # poked externally before/during elaboration
            facts.add(sig, sig.init,
                      f"undriven; holds its initialization value "
                      f"{sig.init}")
    return facts
