"""Cross-view cone equivalence: RTL vs BCA dataflow at the ports.

The lint pass already checks the two views expose *identical* interface
signals (names and widths).  This pass checks something stronger: that
each interface signal is *influenced by the same interface signals* in
both views.  If a BCA port responds to inputs its RTL twin ignores (or
vice versa), the two models disagree about causality at the boundary —
exactly the class of divergence the common environment exists to catch,
surfaced before a single cycle is simulated.

DUT-internal signals (``tb.dut.*``) are treated as transparent transit:
influence may flow through them, but they never appear in a reported
cone, because the two views legitimately differ inside the DUT.

If either view's dataflow graph is incomplete (a clocked process without
declarations), the comparison would under-approximate one side and
produce noise; the pass then emits a single INFO note and no per-signal
findings — conservative, like everything else in this package.
"""

from __future__ import annotations

from typing import List

from ..lint.diagnostics import Finding, Severity
from ..lint.graph import DesignGraph
from .dataflow import DataflowGraph, interface_cones


def cone_equivalence_findings(
    config_name: str,
    rtl_graph: DesignGraph,
    bca_graph: DesignGraph,
) -> List[Finding]:
    """Diff the per-port fan-in cones of the two views."""
    rtl_flow = DataflowGraph(rtl_graph)
    bca_flow = DataflowGraph(bca_graph)
    if not rtl_flow.complete or not bca_flow.complete:
        which = [view for view, flow in (("RTL", rtl_flow), ("BCA", bca_flow))
                 if not flow.complete]
        return [Finding(
            rule="xview-cone",
            severity=Severity.INFO,
            message=(
                f"cone comparison skipped: the {' and '.join(which)} "
                "view(s) contain clocked processes without dataflow "
                "declarations, so the cones would be incomparable "
                "under-approximations"
            ),
            process=config_name,
            hint="declare reads=/writes= on every clocked process to "
                 "enable the cross-view cone check",
        )]

    rtl_cones = interface_cones(rtl_flow)
    bca_cones = interface_cones(bca_flow)
    findings: List[Finding] = []
    # The interface-signature lint rule reports signals present in only
    # one view; here we only compare the cones of the shared ones.
    for name in sorted(set(rtl_cones) & set(bca_cones)):
        rtl_cone, bca_cone = rtl_cones[name], bca_cones[name]
        if rtl_cone == bca_cone:
            continue
        rtl_only = sorted(rtl_cone - bca_cone)
        bca_only = sorted(bca_cone - rtl_cone)
        parts = []
        if rtl_only:
            parts.append("influence it in the RTL view only: "
                         + ", ".join(rtl_only))
        if bca_only:
            parts.append("influence it in the BCA view only: "
                         + ", ".join(bca_only))
        findings.append(Finding(
            rule="xview-cone",
            severity=Severity.ERROR,
            message="fan-in cone differs between views — "
                    + "; ".join(parts),
            signal=name,
            hint="the views disagree about port causality; align the "
                 "dataflow (or the declarations) of the divergent side",
        ))
    return findings
