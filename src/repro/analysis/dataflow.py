"""Signal-level dataflow graph with cones of influence.

Built on top of :class:`repro.lint.graph.DesignGraph`, which indexes the
*process*-level facts (who wakes, who writes, who reads).  This module
projects those facts down to signal->signal edges:

    src --[process P]--> dst   iff   P reads src and writes dst

For combinational processes the read set is the union of the declared
sensitivity list and the reads observed during the elaboration dry run;
the write set is the observed writes.  For clocked processes both sets
come from the registration-time declarations; a clocked process that
declares neither contributes no edges and marks the graph *incomplete*
(cones are then under-approximations, and the analyses that need the full
cone say so instead of guessing).

Fan-in and fan-out cones are plain BFS closures over these edges.  The
fan-in cone of a port signal answers "which signals can influence the
value sampled here" — the cross-view equivalence check compares exactly
that set (restricted to interface signals) between the RTL and the BCA
testbench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from ..kernel import ProcessInfo, Signal
from ..lint.graph import DesignGraph, _sccs


class DataflowGraph:
    """Signal->signal influence edges projected from a design graph."""

    def __init__(self, graph: DesignGraph) -> None:
        self.design = graph
        #: dst -> set of src signals with an edge into dst.
        self.fan_in: Dict[Signal, Set[Signal]] = {}
        #: src -> set of dst signals reachable in one step.
        self.fan_out: Dict[Signal, Set[Signal]] = {}
        #: clocked processes contributing no edges (nothing declared).
        self.opaque: List[ProcessInfo] = []

        for info in graph.comb:
            reads = set(info.sensitivity) | set(info.observed_reads)
            self._add_edges(reads, set(info.observed_writes))
        for info in graph.clocked:
            if info.declared_reads is None and info.declared_writes is None \
                    and not info.declared_tie_offs:
                self.opaque.append(info)
                continue
            reads = set(info.declared_reads or ())
            writes = set(info.declared_writes or ())
            # Tie-offs are constant drives: the written value depends on
            # no input, so they add sinks but no influence edges.
            tied = {sig for sig, _ in info.declared_tie_offs}
            self._add_edges(reads, writes - tied)
            for sig in writes | tied:
                self.fan_in.setdefault(sig, set())
                self.fan_out.setdefault(sig, set())

    def _add_edges(self, reads: Set[Signal], writes: Set[Signal]) -> None:
        for dst in writes:
            self.fan_in.setdefault(dst, set()).update(reads)
            self.fan_out.setdefault(dst, set())
        for src in reads:
            self.fan_out.setdefault(src, set()).update(writes)
            self.fan_in.setdefault(src, set())

    @property
    def complete(self) -> bool:
        """True when every clocked process declared its dataflow.

        An incomplete graph still supports cone queries, but the cones
        are lower bounds: an undeclared process may add influence paths
        the graph cannot see.
        """
        return not self.opaque

    @property
    def n_edges(self) -> int:
        return sum(len(srcs) for srcs in self.fan_in.values())

    # -- cone queries -------------------------------------------------------

    def fan_in_cone(self, sig: Signal) -> Set[Signal]:
        """All signals that can influence ``sig`` (transitively).

        ``sig`` itself is included only if it sits on a feedback path.
        """
        return self._closure(sig, self.fan_in)

    def fan_out_cone(self, sig: Signal) -> Set[Signal]:
        """All signals ``sig`` can influence (transitively)."""
        return self._closure(sig, self.fan_out)

    @staticmethod
    def _closure(start: Signal, edges: Dict[Signal, Set[Signal]]) -> Set[Signal]:
        seen: Set[Signal] = set()
        frontier = list(edges.get(start, ()))
        while frontier:
            sig = frontier.pop()
            if sig in seen:
                continue
            seen.add(sig)
            frontier.extend(edges.get(sig, ()))
        return seen

    def comb_fan_out_cone(self, sig: Signal) -> Set[Signal]:
        """Fan-out closure through *combinational* processes only.

        This is the same-cycle propagation cone: everything a clocked
        write to ``sig`` can reach before the next clock edge.  Used by
        the CDC rule — a domain crossing remains a crossing through any
        amount of combinational logic.
        """
        comb_writes: Set[Signal] = set()
        for info in self.design.comb:
            comb_writes.update(info.observed_writes)
        seen: Set[Signal] = set()
        frontier = [s for s in self.fan_out.get(sig, ()) if s in comb_writes]
        while frontier:
            cur = frontier.pop()
            if cur in seen:
                continue
            seen.add(cur)
            frontier.extend(
                s for s in self.fan_out.get(cur, ()) if s in comb_writes
            )
        return seen


# -- levelization ------------------------------------------------------------
#
# The compiled kernel (repro.kernel.compiled) retires the per-cycle delta
# loop for combinational logic this module can order statically: the
# process-level comb graph (P -> Q iff P's observed writes intersect Q's
# sensitivity) is condensed into its strongly-connected components, and
# each component gets a *level* — its longest path from any source of the
# condensation.  Evaluating levels in ascending order guarantees every
# acyclic process runs after all processes that can feed it within the
# cycle, so one straight-line pass reaches the same fixpoint the delta
# loop iterates toward.  Components with real feedback (more than one
# member, or a self-loop) cannot be ordered internally; they become
# *islands* that keep a local delta loop at their level.


@dataclass(frozen=True)
class CombIsland:
    """One strongly-connected comb subgraph that needs local settling."""

    level: int
    members: Tuple[ProcessInfo, ...]  # in registration order

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(info.name for info in self.members)


@dataclass(frozen=True)
class CombSchedule:
    """Static evaluation order for a design's combinational processes.

    ``levels[L]`` holds the acyclic ("straight-line") processes of level
    ``L`` in registration order; ``islands`` the feedback components,
    each tagged with the level it must settle at.  Every combinational
    process of the design appears exactly once, so executing the levels
    in order (running each island's local delta loop at its level) is a
    complete replacement for the global delta loop — *provided* the
    observed write sets are accurate; the kernel guards that assumption
    at runtime and falls back per cycle when it is contradicted.
    """

    levels: Tuple[Tuple[ProcessInfo, ...], ...]
    islands: Tuple[CombIsland, ...]

    @property
    def acyclic(self) -> bool:
        """True when the whole comb graph levelized with no islands."""
        return not self.islands

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    @property
    def n_straight(self) -> int:
        return sum(len(level) for level in self.levels)

    def describe(self) -> Dict[str, object]:
        """JSON-friendly summary (process names per level / island)."""
        return {
            "levels": [
                [info.name for info in level] for level in self.levels
            ],
            "islands": [
                {"level": island.level, "members": list(island.names)}
                for island in self.islands
            ],
            "acyclic": self.acyclic,
        }


def levelize_comb(design: DesignGraph) -> CombSchedule:
    """Levelize ``design``'s combinational processes for compilation.

    Builds the process adjacency (writer -> woken), condenses it with
    Tarjan's SCC algorithm, and assigns each component its longest-path
    depth from the condensation's sources.  Edges always cross strictly
    upward in level, so straight-line processes of level ``L`` can only
    be influenced — within one clock cycle — by levels ``< L``.
    """
    edges = design._comb_edges()
    components = _sccs(edges)  # emitted sinks-first (reverse topological)
    unit_members: List[List[int]] = []
    unit_is_island: List[bool] = []
    unit_of: Dict[int, int] = {}
    for component in components:
        uid = len(unit_members)
        members = sorted(component)
        unit_members.append(members)
        unit_is_island.append(
            len(members) > 1 or members[0] in edges.get(members[0], {})
        )
        for idx in members:
            unit_of[idx] = uid
    # Longest-path levels by relaxation in topological order.  Tarjan
    # emits components in reverse topological order, so walking the unit
    # ids backwards visits every unit after all of its predecessors.
    level = [0] * len(unit_members)
    for uid in range(len(unit_members) - 1, -1, -1):
        for idx in unit_members[uid]:
            for succ in edges.get(idx, ()):
                su = unit_of[succ]
                if su != uid and level[su] < level[uid] + 1:
                    level[su] = level[uid] + 1
    n_levels = max(level) + 1 if level else 0
    straight: List[List[ProcessInfo]] = [[] for _ in range(n_levels)]
    islands: List[CombIsland] = []
    for uid, members in enumerate(unit_members):
        if unit_is_island[uid]:
            islands.append(CombIsland(
                level=level[uid],
                members=tuple(design.comb[idx] for idx in members),
            ))
        else:
            straight[level[uid]].append(design.comb[members[0]])
    for procs in straight:
        procs.sort(key=lambda info: info.index)
    islands.sort(key=lambda island: (island.level,
                                     island.members[0].index))
    return CombSchedule(
        levels=tuple(tuple(procs) for procs in straight),
        islands=tuple(islands),
    )


@dataclass
class ConeReport:
    """Cone-of-influence summary for one anchor signal."""

    signal: str
    fan_in: Tuple[str, ...] = ()
    fan_out: Tuple[str, ...] = ()
    complete: bool = True

    @classmethod
    def for_signal(cls, dataflow: DataflowGraph, sig: Signal) -> "ConeReport":
        return cls(
            signal=sig.name,
            fan_in=tuple(sorted(s.name for s in dataflow.fan_in_cone(sig))),
            fan_out=tuple(sorted(s.name for s in dataflow.fan_out_cone(sig))),
            complete=dataflow.complete,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "signal": self.signal,
            "fan_in": list(self.fan_in),
            "fan_out": list(self.fan_out),
            "complete": self.complete,
        }


def interface_cones(
    dataflow: DataflowGraph,
    exclude: Tuple[str, ...] = ("tb.dut.",),
) -> Dict[str, FrozenSet[str]]:
    """Fan-in cone per interface signal, restricted to interface signals.

    DUT-internal signals (under ``tb.dut.`` by convention) are transit:
    influence may flow *through* them, but they are dropped from the
    reported cone so that the RTL and BCA views — which legitimately
    differ internally — can be compared at the port level.
    """
    def is_interface(name: str) -> bool:
        return not any(name.startswith(prefix) for prefix in exclude)

    cones: Dict[str, FrozenSet[str]] = {}
    for sig in dataflow.design.signals:
        if not is_interface(sig.name):
            continue
        cone = dataflow.fan_in_cone(sig)
        cones[sig.name] = frozenset(
            s.name for s in cone if is_interface(s.name)
        )
    return cones
