"""Static dataflow analysis over elaborated designs.

Where :mod:`repro.lint` checks local structural rules (one signal, one
process at a time), this package reasons about *flows*:

* :mod:`~repro.analysis.dataflow` — signal-level dataflow graph with
  fan-in/fan-out cones of influence, derived from the kernel's
  declared/harvested read-write sets;
* :mod:`~repro.analysis.constants` — constant propagation over declared
  tie-offs and undriven nets, plus width-derived value ranges;
* :mod:`~repro.analysis.races` — ordering-race and clock-domain-crossing
  rules the multi-driver lint rule cannot see;
* :mod:`~repro.analysis.unr` — coverage-unreachability proofs: a
  REACHABLE / UNREACHABLE / UNKNOWN verdict per functional-coverage bin,
  with the proving witness or blocking constant;
* :mod:`~repro.analysis.xview` — cross-view cone-equivalence check (RTL
  vs BCA cones per STBus port);
* :mod:`~repro.analysis.symbolic` — the symbolic pass (``--symbolic``):
  lift process bodies to a bitvector IR, prove per-port functional
  RTL≡BCA equivalence, and upgrade the UNR decode verdicts with the
  exact interval-coverage engine;
* :mod:`~repro.analysis.impact` — static change-impact analysis:
  per-process semantic fingerprints, the schema-versioned design
  fingerprint manifest + differ, fan-out-cone change closure, and the
  cone-scoped cache keys behind ``repro.regression --incremental``;
* :mod:`~repro.analysis.waivers` — the waiver format shared with
  ``repro.lint``.

CLI: ``python -m repro.analysis`` (text/JSON; same waiver files as
``repro.lint``) and ``python -m repro.analysis impact`` (fingerprint
manifests and change-impact reports).  The regression tool exposes the
UNR half as the opt-in ``--unr`` gate.

Only :mod:`~repro.analysis.waivers` is imported eagerly — it is a leaf
module that ``repro.lint.diagnostics`` re-exports, and loading the full
engine would drag the lint/catg stack into every ``import repro.lint``.
Everything else resolves lazily through module ``__getattr__``.
"""

from .waivers import (
    Waiver,
    WaiverError,
    apply_waivers,
    load_waiver_file,
    parse_waivers,
)

#: JSON schema version stamped into every machine-readable report this
#: package (and ``repro.lint``) emits.  Bump on breaking field changes.
SCHEMA_VERSION = 1

_LAZY = {
    "DataflowGraph": "dataflow",
    "ConeReport": "dataflow",
    "interface_cones": "dataflow",
    "AnalysisContext": "races",
    "ConstantFacts": "constants",
    "ValueRange": "constants",
    "derive_constants": "constants",
    "ANALYSIS_RULES": "races",
    "DEFAULT_ANALYSIS_RULES": "races",
    "AnalysisRule": "races",
    "BinVerdict": "unr",
    "UnrReport": "unr",
    "analyze_unreachability": "unr",
    "cone_equivalence_findings": "xview",
    "LiftReport": "symbolic.lift",
    "SymbolicReport": "symbolic.report",
    "UnrUpgrade": "symbolic.reach",
    "lift_process": "symbolic.lift",
    "lift_simulator": "symbolic.lift",
    "run_symbolic_analysis": "symbolic.report",
    "AnalysisReport": "runner",
    "ConfigAnalysisReport": "runner",
    "analyze_simulator": "runner",
    "analyze_config": "runner",
    "resolve_analysis_rules": "runner",
    "MANIFEST_SCHEMA": "impact",
    "DesignManifest": "impact",
    "DesignFingerprints": "impact",
    "ProcessFingerprint": "impact",
    "ImpactIndex": "impact",
    "ImpactReport": "impact",
    "ManifestError": "impact",
    "build_manifest": "impact",
    "design_fingerprints": "impact",
    "diff_manifests": "impact",
    "process_fingerprint": "impact",
}

__all__ = [
    "SCHEMA_VERSION",
    "Waiver",
    "WaiverError",
    "parse_waivers",
    "apply_waivers",
    "load_waiver_file",
] + sorted(_LAZY)


def __getattr__(name):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    module = importlib.import_module(f".{target}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
