"""Scoreboard — end-to-end data-integrity checking across the node.

Fig. 2/6: "the scoreboard compares results got from monitors" to "verify
data flow integrity between initiators and targets".  This scoreboard
subscribes to the monitors of every port and checks three things:

1. **Request transport** — every request packet observed at an initiator
   port must re-appear, unmodified (apart from the node-attached source
   tag), at the target port its address decodes to, in per-path order.
2. **Response semantics** — a reference memory per target, updated in
   target-port observation order (the serialization point), predicts the
   data every response must carry.
3. **Response delivery** — every response observed at a target port must
   reach the right initiator port unmodified, in request order for Type
   II; and every request must eventually get exactly one response
   (:meth:`finalize` flags leftovers).

Requests that decode to no target (or a forbidden partial-crossbar path)
must instead produce a node-generated error response of the correct
length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..stbus import (
    Cell,
    NodeConfig,
    OpKind,
    Opcode,
    OpcodeError,
    ProtocolType,
    RespCell,
    build_response_cells,
    request_data_from_cells,
)
from .monitor import ObservedRequest, ObservedResponse, PortMonitor
from .report import VerificationReport
from .target import default_byte

#: Sentinel used for requests expected to be answered by the error engine.
ERROR_TARGET = -1


def _cells_equal_fwd(src_cell: Cell, dst_cell: Cell) -> bool:
    """Initiator-side vs target-side request cell comparison.

    Every field must match except ``src`` (attached by the node).
    """
    return (
        src_cell.add == dst_cell.add
        and src_cell.opc == dst_cell.opc
        and src_cell.data == dst_cell.data
        and src_cell.be == dst_cell.be
        and src_cell.eop == dst_cell.eop
        and src_cell.lck == dst_cell.lck
        and src_cell.tid == dst_cell.tid
        and src_cell.pri == dst_cell.pri
    )


@dataclass
class _ExpectedDelivery:
    """A response emitted at a target port, expected at an initiator port."""

    cells: List[RespCell]
    source: int  # target index or ERROR_TARGET


@dataclass
class _InFlight:
    """One request packet tracked from injection to response delivery."""

    initiator: int
    target: int
    tid: int
    opcode: Optional[Opcode]
    delivery: Optional[_ExpectedDelivery] = None


class Scoreboard:
    """Routing-aware data-integrity scoreboard for a node DUT."""

    def __init__(self, config: NodeConfig, report: VerificationReport,
                 name: str = "scoreboard"):
        self.config = config
        self.report = report
        self.name = name
        self.amap = config.resolved_map
        # Per (initiator, target) FIFO of request packets still crossing.
        self._crossing: Dict[Tuple[int, int], List[ObservedRequest]] = {}
        # Per initiator, all packets awaiting response delivery.
        self._in_flight: Dict[int, List[_InFlight]] = {
            i: [] for i in range(config.n_initiators)
        }
        # Per target, reference memory and in-order expected responses.
        self._ref_mem: Dict[int, Dict[int, int]] = {
            t: {} for t in range(config.n_targets)
        }
        self._expected_resp: Dict[int, List[Tuple[int, int, List[RespCell]]]] = {
            t: [] for t in range(config.n_targets)
        }
        self.matched_requests = 0
        self.matched_responses = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def connect(self, monitors: List[PortMonitor]) -> None:
        for monitor in monitors:
            if monitor.role == "initiator":
                monitor.on_request(self._on_initiator_request)
                monitor.on_response(self._on_initiator_response)
            else:
                monitor.on_request(self._on_target_request)
                monitor.on_response(self._on_target_response)

    def _fail(self, rule: str, cycle: int, message: str) -> None:
        self.report.error(rule, self.name, cycle, message)

    # ------------------------------------------------------------------
    # initiator-side request: predict routing
    # ------------------------------------------------------------------

    def _decode(self, initiator: int, address: int) -> int:
        target = self.amap.decode(address)
        if target is None or not self.config.path_allowed(initiator, target):
            return ERROR_TARGET
        return target

    def _on_initiator_request(self, obs: ObservedRequest) -> None:
        initiator = obs.index
        target = self._decode(initiator, obs.address)
        try:
            opcode: Optional[Opcode] = Opcode.decode(obs.opc)
        except OpcodeError:
            opcode = None
        self._in_flight[initiator].append(
            _InFlight(initiator, target, obs.tid, opcode)
        )
        if target != ERROR_TARGET:
            self._crossing.setdefault((initiator, target), []).append(obs)

    # ------------------------------------------------------------------
    # target-side request: transport check + semantics prediction
    # ------------------------------------------------------------------

    def _on_target_request(self, obs: ObservedRequest) -> None:
        target = obs.index
        initiator = obs.src
        queue = self._crossing.get((initiator, target), [])
        if not queue:
            self._fail(
                "SB_REQ_UNEXPECTED", obs.end_cycle,
                f"request at target {target} with src {initiator} matches "
                "no packet sent by that initiator",
            )
            return
        sent = queue.pop(0)
        if len(sent.cells) != len(obs.cells):
            self._fail(
                "SB_REQ_LEN", obs.end_cycle,
                f"init{initiator}->targ{target}: packet length changed "
                f"{len(sent.cells)} -> {len(obs.cells)}",
            )
        else:
            for k, (a, b) in enumerate(zip(sent.cells, obs.cells)):
                if not _cells_equal_fwd(a, b):
                    self._fail(
                        "SB_REQ_CORRUPT", obs.end_cycle,
                        f"init{initiator}->targ{target} cell {k}: "
                        f"sent {a}, observed {b}",
                    )
                    break
        self.matched_requests += 1
        self._predict_response(obs)

    def _read_ref(self, target: int, address: int, size: int) -> bytes:
        mem = self._ref_mem[target]
        return bytes(
            mem.get(address + k, default_byte(address + k))
            for k in range(size)
        )

    def _write_ref(self, target: int, address: int, data: bytes) -> None:
        mem = self._ref_mem[target]
        for k, byte in enumerate(data):
            mem[address + k] = byte

    def _predict_response(self, obs: ObservedRequest) -> None:
        target = obs.index
        try:
            opcode = Opcode.decode(obs.opc)
        except OpcodeError:
            return  # protocol checker already flagged it
        address = obs.address
        bus_bytes = self.config.bus_bytes
        kind = opcode.kind
        data = b""
        if kind in (OpKind.LOAD, OpKind.READEX):
            data = self._read_ref(target, address, opcode.size)
        elif kind is OpKind.STORE:
            self._write_ref(
                target, address, request_data_from_cells(obs.cells, bus_bytes)
            )
        elif kind in (OpKind.RMW, OpKind.SWAP):
            data = self._read_ref(target, address, opcode.size)
            self._write_ref(
                target, address, request_data_from_cells(obs.cells, bus_bytes)
            )
        cells = build_response_cells(
            opcode, bus_bytes, self.config.protocol_type,
            data=data, src=obs.src, tid=obs.tid, address=address,
        )
        self._expected_resp[target].append((obs.src, obs.tid, cells))

    # ------------------------------------------------------------------
    # target-side response: semantic check, then expect delivery
    # ------------------------------------------------------------------

    def _on_target_response(self, obs: ObservedResponse) -> None:
        target = obs.index
        expected = self._expected_resp[target]
        if not expected:
            self._fail(
                "SB_RESP_SPURIOUS", obs.end_cycle,
                f"target {target} responded with nothing outstanding",
            )
            return
        exp_src, exp_tid, exp_cells = expected.pop(0)
        if (obs.r_src, obs.r_tid) != (exp_src, exp_tid):
            self._fail(
                "SB_RESP_MISMATCH", obs.end_cycle,
                f"target {target}: response (src={obs.r_src}, "
                f"tid={obs.r_tid}), expected (src={exp_src}, tid={exp_tid})",
            )
            return
        if [c.key_fields() for c in obs.cells] != \
                [c.key_fields() for c in exp_cells]:
            self._fail(
                "SB_DATA", obs.end_cycle,
                f"target {target}: response data differs from the "
                f"reference-memory prediction (tid={obs.r_tid})",
            )
        # Queue the delivery expectation at the destination initiator.
        if exp_src < self.config.n_initiators:
            for record in self._in_flight[exp_src]:
                if record.target == target and record.tid == exp_tid \
                        and record.delivery is None:
                    record.delivery = _ExpectedDelivery(list(obs.cells), target)
                    return
        self._fail(
            "SB_RESP_ORPHAN", obs.end_cycle,
            f"target {target} response (src={exp_src}, tid={exp_tid}) has "
            "no in-flight request at that initiator",
        )

    # ------------------------------------------------------------------
    # initiator-side response: delivery check
    # ------------------------------------------------------------------

    def _on_initiator_response(self, obs: ObservedResponse) -> None:
        initiator = obs.index
        records = self._in_flight[initiator]
        if not records:
            self._fail(
                "SB_RESP_UNEXPECTED", obs.end_cycle,
                f"initiator {initiator} received a response with no "
                "request in flight",
            )
            return
        record = self._take_record(records, obs)
        if record is None:
            self._fail(
                "SB_RESP_UNEXPECTED", obs.end_cycle,
                f"initiator {initiator}: response tid={obs.r_tid} matches "
                "no in-flight request",
            )
            return
        if record.target == ERROR_TARGET:
            self._check_error_response(record, obs)
            self.matched_responses += 1
            return
        if record.delivery is None:
            self._fail(
                "SB_RESP_EARLY", obs.end_cycle,
                f"initiator {initiator}: response tid={obs.r_tid} delivered "
                "before its target port emitted it",
            )
            return
        if [c.key_fields() for c in obs.cells] != \
                [c.key_fields() for c in record.delivery.cells]:
            self._fail(
                "SB_RESP_CORRUPT", obs.end_cycle,
                f"initiator {initiator}: response tid={obs.r_tid} modified "
                "between the target port and the initiator port",
            )
        self.matched_responses += 1

    def _take_record(self, records: List[_InFlight],
                     obs: ObservedResponse) -> Optional[_InFlight]:
        if self.config.protocol_type is ProtocolType.T2:
            head = records[0]
            if head.tid != obs.r_tid:
                self._fail(
                    "SB_RESP_ORDER", obs.end_cycle,
                    f"initiator {obs.index}: Type II response tid="
                    f"{obs.r_tid}, expected tid={head.tid}",
                )
                for idx, record in enumerate(records):
                    if record.tid == obs.r_tid:
                        return records.pop(idx)
                return None
            return records.pop(0)
        for idx, record in enumerate(records):
            if record.tid == obs.r_tid:
                return records.pop(idx)
        return None

    def _check_error_response(self, record: _InFlight,
                              obs: ObservedResponse) -> None:
        if not obs.is_error:
            self._fail(
                "SB_ERR_FLAG", obs.end_cycle,
                f"initiator {record.initiator}: request tid={record.tid} "
                "decodes to no target but its response is not an error",
            )
        if record.opcode is not None:
            expected = record.opcode.response_cells(
                self.config.bus_bytes, self.config.protocol_type
            )
            if len(obs.cells) != expected:
                self._fail(
                    "SB_ERR_LEN", obs.end_cycle,
                    f"error response of {len(obs.cells)} cells, expected "
                    f"{expected}",
                )

    # ------------------------------------------------------------------
    # end of test
    # ------------------------------------------------------------------

    def finalize(self, cycle: int) -> None:
        """Flag everything that never completed."""
        for (initiator, target), queue in self._crossing.items():
            for obs in queue:
                self._fail(
                    "SB_REQ_LOST", cycle,
                    f"request tid={obs.tid} from init{initiator} never "
                    f"reached target {target}",
                )
        for initiator, records in self._in_flight.items():
            for record in records:
                self._fail(
                    "SB_RESP_LOST", cycle,
                    f"request tid={record.tid} from init{initiator} "
                    f"(target {record.target}) never got its response",
                )
        for target, expected in self._expected_resp.items():
            for exp_src, exp_tid, _cells in expected:
                self._fail(
                    "SB_RESP_STUCK", cycle,
                    f"target {target} never responded to src={exp_src} "
                    f"tid={exp_tid}",
                )
