"""Constrained-random sequences and test programs.

The common environment generates "random scenarios" (Fig. 2) and the test
cases "allow initiators to generate semi-random traffic" (Section 5),
reproducible per seed: "Same test file could be run more than one time
with a different seed."

A :class:`TestProgram` is everything one (test, seed) run needs: the
per-initiator transaction programs, the per-target speed profile, the
programming-port schedule, and the cycle budget.  Test cases
(:mod:`repro.regression.testcases`) are factories from (config, seed) to
:class:`TestProgram`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..stbus import NodeConfig, OpKind, Opcode, Transaction

#: Default operation mix for uniform random traffic (kind, weight).
DEFAULT_MIX: Tuple[Tuple[OpKind, int], ...] = (
    (OpKind.LOAD, 8),
    (OpKind.STORE, 8),
    (OpKind.RMW, 2),
    (OpKind.SWAP, 1),
    (OpKind.READEX, 1),
    (OpKind.FLUSH, 1),
    (OpKind.PURGE, 1),
)

_SIZES = {
    OpKind.LOAD: (1, 2, 4, 8, 16, 32, 64),
    OpKind.STORE: (1, 2, 4, 8, 16, 32, 64),
    OpKind.RMW: (1, 2, 4, 8),
    OpKind.SWAP: (1, 2, 4, 8),
    OpKind.READEX: (1, 2, 4, 8),
    OpKind.FLUSH: (1,),
    OpKind.PURGE: (1,),
}


@dataclass
class ProgOp:
    """One programming-port operation."""

    cycle: int  # earliest cycle at which to present it
    index: int  # arbitration register (one per initiator)
    value: int
    is_write: bool = True


@dataclass
class TestProgram:
    """A fully-expanded (test, seed) run recipe."""

    name: str
    seed: int
    programs: List[List[Tuple[Transaction, int]]]
    target_latencies: List[int]
    target_jitters: List[int] = field(default_factory=list)
    prog_ops: List[ProgOp] = field(default_factory=list)
    max_cycles: int = 20000
    drain_cycles: int = 30

    def total_transactions(self) -> int:
        return sum(len(p) for p in self.programs)


def pick_kind(rng: random.Random,
              mix: Sequence[Tuple[OpKind, int]] = DEFAULT_MIX) -> OpKind:
    """Weighted random operation kind."""
    kinds = [k for k, _ in mix]
    weights = [w for _, w in mix]
    return rng.choices(kinds, weights=weights, k=1)[0]


def random_transaction(
    config: NodeConfig,
    rng: random.Random,
    initiator: int,
    *,
    targets: Optional[Sequence[int]] = None,
    mix: Sequence[Tuple[OpKind, int]] = DEFAULT_MIX,
    max_size: int = 64,
    lck_probability: float = 0.0,
    error_probability: float = 0.0,
) -> Transaction:
    """One constrained-random transaction for ``initiator``.

    ``error_probability`` injects addresses outside the decoded map, which
    the node must answer with error responses (a coverage point).
    """
    amap = config.resolved_map
    kind = pick_kind(rng, mix)
    sizes = [s for s in _SIZES[kind] if s <= max_size]
    size = rng.choice(sizes)
    opcode = Opcode(kind, size)
    if error_probability and rng.random() < error_probability:
        top = max(region.end for region in amap.regions)
        address = ((top + 0x10000) // size + rng.randrange(64)) * size
    else:
        pool = list(targets) if targets is not None \
            else config.reachable_targets(initiator)
        if not pool:
            raise ValueError(f"initiator {initiator} reaches no target")
        target = rng.choice(pool)
        address = amap.random_address_in(target, rng, alignment=size)
    data = rng.randbytes(size) if kind.carries_request_data else b""
    lck = 1 if lck_probability and rng.random() < lck_probability else 0
    return Transaction(opcode, address, data=data, lck=lck,
                       initiator=initiator,
                       pri=rng.randrange(16))


def random_program(
    config: NodeConfig,
    rng: random.Random,
    initiator: int,
    n_transactions: int,
    *,
    gap_range: Tuple[int, int] = (0, 3),
    **kwargs,
) -> List[Tuple[Transaction, int]]:
    """A list of (transaction, gap) pairs for one initiator."""
    lo, hi = gap_range
    program = []
    for _ in range(n_transactions):
        txn = random_transaction(config, rng, initiator, **kwargs)
        program.append((txn, rng.randint(lo, hi)))
    return program


def directed_write_read_pairs(
    config: NodeConfig,
    initiator: int,
    target: int,
    n_pairs: int,
    size: int = 4,
    pattern: int = 0,
) -> List[Tuple[Transaction, int]]:
    """Directed write-then-read traffic (the past flow's only scenario)."""
    amap = config.resolved_map
    region = amap.region_of(target)
    program = []
    for k in range(n_pairs):
        address = region.base + (k * size * 2) % max(size, region.size - size)
        address -= address % size
        data = bytes(((pattern + k + j) & 0xFF) for j in range(size))
        program.append(
            (Transaction(Opcode.store(size), address, data=data,
                         initiator=initiator), 0)
        )
        program.append(
            (Transaction(Opcode.load(size), address, initiator=initiator), 0)
        )
    return program
