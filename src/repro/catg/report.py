"""Verification report: the sink for every checker/scoreboard finding.

The regression tool of the paper produces "a verification report and a
functional coverage one ... for each test file associated with the test
seed".  :class:`VerificationReport` is the in-memory form of the former;
its text rendering is what gets written next to the VCD.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class Violation:
    """One rule violation observed by a checker or the scoreboard."""

    rule: str
    source: str  # checker/scoreboard instance name
    cycle: int
    message: str

    def __str__(self) -> str:
        return f"[{self.rule}] @{self.cycle} {self.source}: {self.message}"


@dataclass
class VerificationReport:
    """Aggregates violations and bookkeeping notes for one run."""

    name: str = "run"
    violations: List[Violation] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: Stop recording after this many violations (a broken DUT otherwise
    #: floods the report; the regression tool only needs pass/fail + the
    #: first findings).
    max_violations: int = 200

    def error(self, rule: str, source: str, cycle: int, message: str) -> None:
        if len(self.violations) < self.max_violations:
            self.violations.append(Violation(rule, source, cycle, message))

    def note(self, message: str) -> None:
        self.notes.append(message)

    @property
    def passed(self) -> bool:
        return not self.violations

    def rules_hit(self) -> Dict[str, int]:
        """Histogram of violated rules (used by the bug-detection bench)."""
        histogram: Dict[str, int] = {}
        for violation in self.violations:
            histogram[violation.rule] = histogram.get(violation.rule, 0) + 1
        return histogram

    def first_violation(self) -> Optional[Violation]:
        return self.violations[0] if self.violations else None

    def render(self) -> str:
        lines = [f"Verification report: {self.name}",
                 f"Status: {'PASS' if self.passed else 'FAIL'}",
                 f"Violations: {len(self.violations)}"]
        for violation in self.violations[:50]:
            lines.append(f"  {violation}")
        if len(self.violations) > 50:
            lines.append(f"  ... {len(self.violations) - 50} more")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines) + "\n"
