"""Functional coverage — the paper's first quality metric.

"The functional coverage is built in the common verification environment
and it can be obtained in both RTL and BCA models (of course they must be
equal running the same tests)."  The coverage space below is a pure
function of the DUT configuration, so the RTL and BCA runs share the exact
same bins; sampling only looks at port-level observations, never at DUT
internals.  Goal: 100% of defined bins (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..stbus import (
    NodeConfig,
    OpKind,
    Opcode,
    OpcodeError,
    ProtocolType,
    all_opcodes,
)
from .monitor import ObservedRequest, ObservedResponse, PortMonitor


class CoverGroup:
    """A named set of bins with hit counts."""

    def __init__(self, name: str, bins: Iterable[str]):
        self.name = name
        self.bins: Dict[str, int] = {str(b): 0 for b in bins}
        if not self.bins:
            raise ValueError(f"cover group {name!r} has no bins")

    def sample(self, bin_name: str) -> None:
        """Hit a bin; samples outside the defined space are ignored
        (illegal values are the checkers' business, not coverage's)."""
        key = str(bin_name)
        if key in self.bins:
            self.bins[key] += 1

    @property
    def n_bins(self) -> int:
        return len(self.bins)

    @property
    def n_covered(self) -> int:
        return sum(1 for count in self.bins.values() if count)

    @property
    def percent(self) -> float:
        return 100.0 * self.n_covered / self.n_bins

    def holes(self) -> List[str]:
        return [name for name, count in self.bins.items() if not count]

    def hit_map(self) -> Dict[str, bool]:
        return {name: bool(count) for name, count in self.bins.items()}


class CoverageModel:
    """All cover groups of one verification environment."""

    def __init__(self, groups: Iterable[CoverGroup]):
        self.groups: Dict[str, CoverGroup] = {g.name: g for g in groups}

    def __getitem__(self, name: str) -> CoverGroup:
        return self.groups[name]

    @property
    def n_bins(self) -> int:
        return sum(g.n_bins for g in self.groups.values())

    @property
    def n_covered(self) -> int:
        return sum(g.n_covered for g in self.groups.values())

    @property
    def percent(self) -> float:
        total = self.n_bins
        return 100.0 * self.n_covered / total if total else 100.0

    def holes(self) -> List[str]:
        result = []
        for group in self.groups.values():
            result.extend(f"{group.name}:{hole}" for hole in group.holes())
        return result

    def hit_signature(self) -> Tuple[Tuple[str, Tuple[Tuple[str, bool], ...]], ...]:
        """Canonical covered/uncovered signature.

        Two runs with the same tests and seeds must produce the *same*
        signature on both design views — the paper's equality requirement.
        """
        return tuple(
            (name, tuple(sorted(group.hit_map().items())))
            for name, group in sorted(self.groups.items())
        )

    def merge(self, other: "CoverageModel") -> None:
        """Accumulate another run's hits (regression-level coverage)."""
        for name, group in other.groups.items():
            mine = self.groups.get(name)
            if mine is None:
                self.groups[name] = CoverGroup(name, group.bins)
                mine = self.groups[name]
            for bin_name, count in group.bins.items():
                if bin_name not in mine.bins:
                    mine.bins[bin_name] = 0
                mine.bins[bin_name] += count

    def render(self) -> str:
        lines = [f"Functional coverage: {self.percent:.1f}% "
                 f"({self.n_covered}/{self.n_bins} bins)"]
        for name in sorted(self.groups):
            group = self.groups[name]
            lines.append(
                f"  {name:<24} {group.percent:6.1f}%  "
                f"({group.n_covered}/{group.n_bins})"
            )
            for hole in group.holes()[:8]:
                lines.append(f"      hole: {hole}")
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# the node coverage space
# ----------------------------------------------------------------------

_LEN_BINS = ("1", "2", "4", "8", "16")


def _len_bin(n_cells: int) -> str:
    for candidate in reversed(_LEN_BINS):
        if n_cells >= int(candidate):
            return candidate
    return "1"


def _reachable_len_bins(config: NodeConfig) -> List[str]:
    """Packet-length bins a configuration can actually produce.

    The longest packet is a 64-byte operation: ``64 / bus_bytes`` cells.
    Wider buses make the longer bins unreachable; excluding them keeps
    "100% functional coverage" meaningful per configuration.
    """
    max_cells = max(1, 64 // config.bus_bytes)
    return [b for b in _LEN_BINS if int(b) <= max_cells]


def build_node_coverage(config: NodeConfig) -> CoverageModel:
    """The functional coverage space for a node configuration.

    The space is a pure function of the configuration, with bins the
    configuration makes unreachable excluded (single-initiator nodes
    cannot contend; an 8-bit bus has no partial byte enables; credit-1
    Type III traffic cannot reorder).
    """
    opcode_bins = [str(op) for op in all_opcodes()
                   if op.size <= 64]  # every legal operation
    paths = [
        f"init{i}->targ{t}"
        for i in range(config.n_initiators)
        for t in range(config.n_targets)
        if config.path_allowed(i, t)
    ]
    be_bins = ["full"] if config.bus_bytes == 1 else ["full", "partial"]
    conflict_bins = ["solo"] if config.n_initiators == 1 \
        else ["solo", "contended"]
    groups = [
        CoverGroup("opcode", opcode_bins),
        CoverGroup("request_len", _reachable_len_bins(config)),
        CoverGroup("path", paths),
        CoverGroup("be", be_bins),
        CoverGroup("chunk", ["plain", "locked"]),
        CoverGroup("response", ["ok", "error"]),
        CoverGroup("outstanding", [str(d) for d in
                                   range(1, config.max_outstanding + 1)]),
        CoverGroup("conflict", conflict_bins),
    ]
    if config.protocol_type is ProtocolType.T3 \
            and config.max_outstanding > 1 and config.n_targets > 1:
        groups.append(CoverGroup("ordering", ["in_order", "out_of_order"]))
    if config.has_programming_port:
        groups.append(CoverGroup("programming", ["write", "read"]))
    groups.append(CoverGroup("decode", ["hit", "error"]))
    return CoverageModel(groups)


class NodeCoverageCollector:
    """Samples the node coverage space from monitors and per-cycle state."""

    def __init__(self, config: NodeConfig, model: Optional[CoverageModel] = None):
        self.config = config
        self.model = model or build_node_coverage(config)
        self._req_order: Dict[int, List[int]] = {
            i: [] for i in range(config.n_initiators)
        }
        self._outstanding: Dict[int, int] = {
            i: 0 for i in range(config.n_initiators)
        }

    def connect(self, monitors: List[PortMonitor]) -> None:
        for monitor in monitors:
            if monitor.role == "initiator":
                monitor.on_request(self._on_request)
                monitor.on_response(self._on_response)

    # -- packet-level sampling ------------------------------------------------

    def _on_request(self, obs: ObservedRequest) -> None:
        model = self.model
        try:
            opcode = Opcode.decode(obs.opc)
        except OpcodeError:
            return
        model["opcode"].sample(str(opcode))
        model["request_len"].sample(_len_bin(len(obs.cells)))
        target = self.config.resolved_map.decode(obs.address)
        if target is None or not self.config.path_allowed(obs.index, target):
            model["decode"].sample("error")
        else:
            model["decode"].sample("hit")
            model["path"].sample(f"init{obs.index}->targ{target}")
        full = all(
            cell.be == (1 << self.config.bus_bytes) - 1 for cell in obs.cells
        )
        model["be"].sample("full" if full else "partial")
        model["chunk"].sample("locked" if obs.lck else "plain")
        self._req_order[obs.index].append(obs.tid)
        self._outstanding[obs.index] += 1
        model["outstanding"].sample(str(
            min(self._outstanding[obs.index], self.config.max_outstanding)
        ))

    def _on_response(self, obs: ObservedResponse) -> None:
        model = self.model
        model["response"].sample("error" if obs.is_error else "ok")
        order = self._req_order[obs.index]
        if "ordering" in model.groups and order:
            if order[0] == obs.r_tid:
                model["ordering"].sample("in_order")
            else:
                model["ordering"].sample("out_of_order")
        if obs.r_tid in order:
            order.remove(obs.r_tid)
        if self._outstanding[obs.index] > 0:
            self._outstanding[obs.index] -= 1

    # -- cycle-level sampling (driven by the environment) ------------------------

    def sample_cycle(self, requesting_per_target: Dict[int, int]) -> None:
        """``requesting_per_target[t]`` = #initiators requesting t now."""
        for count in requesting_per_target.values():
            if count >= 2:
                self.model["conflict"].sample("contended")
            elif count == 1:
                self.model["conflict"].sample("solo")

    def sample_programming(self, is_write: bool) -> None:
        if "programming" in self.model.groups:
            self.model["programming"].sample("write" if is_write else "read")
