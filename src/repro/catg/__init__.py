"""CATG — Checkers and Automatic Test Generation.

The reproduction of ST's 'e'-language verification library: harnesses
(BFM + memory target), monitors, protocol checkers, node-specific
arbitration checks, scoreboard, functional coverage, and the generic
testbench (:class:`VerificationEnv`) that plugs either design view in
unchanged.
"""

from .report import VerificationReport, Violation
from .bfm import InitiatorBfm
from .target import TargetHarness, default_byte
from .monitor import ObservedRequest, ObservedResponse, PortMonitor
from .checker import ProtocolChecker, Type1Checker
from .node_checks import ArbitrationChecker
from .scoreboard import Scoreboard
from .coverage import (
    CoverGroup,
    CoverageModel,
    NodeCoverageCollector,
    build_node_coverage,
)
from .sequence import (
    DEFAULT_MIX,
    ProgOp,
    TestProgram,
    directed_write_read_pairs,
    pick_kind,
    random_program,
    random_transaction,
)
from .prog import ProgrammingMaster
from .env import RunResult, VerificationEnv, VIEWS, run_test
from .code_coverage import CodeCoverage, CodeCoverageReport
from .converter_env import (
    BridgeScoreboard,
    ConverterEnv,
    ConverterRunResult,
    bridge_random_program,
    build_bridge_coverage,
)
from .tlm import (
    TlmChecker,
    TlmCoverageCollector,
    TlmResult,
    build_tlm_coverage,
    run_tlm_verification,
)

__all__ = [
    "VerificationReport", "Violation",
    "InitiatorBfm", "TargetHarness", "default_byte",
    "PortMonitor", "ObservedRequest", "ObservedResponse",
    "ProtocolChecker", "Type1Checker", "ArbitrationChecker", "Scoreboard",
    "CoverGroup", "CoverageModel", "NodeCoverageCollector",
    "build_node_coverage",
    "TestProgram", "ProgOp", "DEFAULT_MIX",
    "random_transaction", "random_program", "directed_write_read_pairs",
    "pick_kind",
    "ProgrammingMaster",
    "VerificationEnv", "RunResult", "run_test", "VIEWS",
    "CodeCoverage", "CodeCoverageReport",
    "TlmResult", "TlmChecker", "TlmCoverageCollector",
    "build_tlm_coverage", "run_tlm_verification",
    "ConverterEnv", "ConverterRunResult", "BridgeScoreboard",
    "bridge_random_program", "build_bridge_coverage",
]
