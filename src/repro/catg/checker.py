"""Protocol checkers — per-port STBus interface rule enforcement.

Fig. 2: "checkers that check the correctness of the protocol at the
interface".  One :class:`ProtocolChecker` watches one port, cycle by
cycle, and reports every rule violation to the shared
:class:`~repro.catg.report.VerificationReport`.

Rules enforced (rule ids as reported):

==================  =====================================================
``REQ_DROPPED``      request retracted before being granted
``REQ_UNSTABLE``     request fields changed while waiting for grant
``OPC_INVALID``      undecodable operation encoding on a first cell
``ADDR_ALIGN``       address not naturally aligned to the operation size
``PKT_FIELDS``       opc/tid/pri changed between cells of one packet
``PKT_ADDR``         cell address off the expected burst geometry
``PKT_BE``           byte enables off the expected lane geometry
``PKT_LEN``          eop asserted at the wrong cell count
``LCK_MIDPACKET``    lck asserted on a non-final cell
``RESP_DROPPED``     response retracted before being granted
``RESP_UNSTABLE``    response fields changed while waiting for grant
``RESP_LEN``         response packet length wrong for its operation
``RESP_UNEXPECTED``  response matches no outstanding request
``RESP_ORDER``       Type II response out of request order
``RESP_SRC``         wrong source tag on a response
``CHUNK_ATOMIC``     another initiator's packet inside a locked chunk
==================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..kernel import Module, Simulator
from ..stbus import (
    Opcode,
    OpcodeError,
    ProtocolType,
    StbusPort,
    T1_IDLE,
    T1_READ,
    T1_WRITE,
    Type1Port,
)
from ..stbus.packet import lane_geometry
from .report import VerificationReport


@dataclass
class _OpenRequest:
    """Request packet currently being transferred at this port."""

    opcode: Optional[Opcode]
    base_address: int
    opc: int
    tid: int
    pri: int
    src: int
    cells_seen: int
    expected_cells: Optional[int]
    geometry: List[Tuple[int, int, int]]


@dataclass
class _PendingResponse:
    """Request packet completed at this port, awaiting its response."""

    opcode: Optional[Opcode]
    tid: int
    src: int


class ProtocolChecker(Module):
    """STBus Type II/III interface rule checker for one port."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        port: StbusPort,
        role: str,
        index: int,
        protocol: ProtocolType,
        report: VerificationReport,
        parent: Optional[Module] = None,
    ):
        super().__init__(sim, name, parent)
        if role not in ("initiator", "target"):
            raise ValueError("role must be 'initiator' or 'target'")
        self.port = port
        self.role = role
        self.index = index
        self.protocol = protocol
        self.report = report
        self._prev_req: Optional[tuple] = None  # (req, gnt, fields)
        self._prev_resp: Optional[tuple] = None
        self._open: Optional[_OpenRequest] = None
        self._pending: List[_PendingResponse] = []
        self._resp_cells_seen = 0
        self._resp_first: Optional[tuple] = None  # (r_src, r_tid)
        self._chunk_src: Optional[int] = None
        self.clocked(self._clk, reads=port.signals(), writes=())

    # -- reporting helper ---------------------------------------------------

    def _fail(self, rule: str, message: str) -> None:
        self.report.error(rule, self.name, self.sim.now - 1, message)

    # -- per-cycle sampling --------------------------------------------------

    def _clk(self) -> None:
        port = self.port
        req = port.req.value
        gnt = port.gnt.value
        fields = (
            port.add.value, port.opc.value, port.data.value, port.be.value,
            port.eop.value, port.lck.value, port.tid.value, port.pri.value,
        )
        if self._prev_req is not None:
            prev_req, prev_gnt, prev_fields = self._prev_req
            if prev_req and not prev_gnt:
                if not req:
                    self._fail("REQ_DROPPED",
                               "req deasserted before grant")
                elif fields != prev_fields:
                    self._fail("REQ_UNSTABLE",
                               "request fields changed while ungranted")
        if req and gnt:
            self._check_request_cell(port)
        self._prev_req = (req, gnt, fields)

        r_req = port.r_req.value
        r_gnt = port.r_gnt.value
        r_fields = (
            port.r_opc.value, port.r_data.value, port.r_eop.value,
            port.r_src.value, port.r_tid.value,
        )
        if self._prev_resp is not None:
            prev_r, prev_g, prev_f = self._prev_resp
            if prev_r and not prev_g:
                if not r_req:
                    self._fail("RESP_DROPPED",
                               "r_req deasserted before grant")
                elif r_fields != prev_f:
                    self._fail("RESP_UNSTABLE",
                               "response fields changed while ungranted")
        if r_req and r_gnt:
            self._check_response_cell(port)
        self._prev_resp = (r_req, r_gnt, r_fields)

    # -- request packet rules ---------------------------------------------------

    def _check_request_cell(self, port: StbusPort) -> None:
        add = port.add.value
        opc = port.opc.value
        eop = port.eop.value
        lck = port.lck.value
        tid = port.tid.value
        pri = port.pri.value
        src = port.src.value
        be = port.be.value
        bus_bytes = port.bus_bytes

        if self._open is None:
            # First cell of a packet: chunk-atomicity + header legality.
            if self.role == "target" and self._chunk_src is not None:
                if src != self._chunk_src:
                    self._fail(
                        "CHUNK_ATOMIC",
                        f"packet from src {src} inside chunk locked to "
                        f"src {self._chunk_src}",
                    )
                self._chunk_src = None
            opcode: Optional[Opcode] = None
            try:
                opcode = Opcode.decode(opc)
            except OpcodeError:
                self._fail("OPC_INVALID", f"opc 0x{opc:02x} is not a legal encoding")
            expected = None
            geometry: List[Tuple[int, int, int]] = []
            if opcode is not None:
                if add % opcode.size:
                    self._fail(
                        "ADDR_ALIGN",
                        f"address {add:#x} unaligned for {opcode}",
                    )
                expected = opcode.request_cells(bus_bytes, self.protocol)
                geometry = list(lane_geometry(opcode, add, bus_bytes))
            self._open = _OpenRequest(
                opcode, add, opc, tid, pri, src, 0, expected, geometry
            )
        open_pkt = self._open
        idx = open_pkt.cells_seen
        if (opc, tid, pri) != (open_pkt.opc, open_pkt.tid, open_pkt.pri):
            self._fail("PKT_FIELDS", "opc/tid/pri changed mid-packet")
        if open_pkt.geometry:
            exp_add, exp_off, exp_bytes = open_pkt.geometry[
                min(idx, len(open_pkt.geometry) - 1)
            ]
            exp_be = ((1 << exp_bytes) - 1) << exp_off
            if add != exp_add:
                self._fail(
                    "PKT_ADDR",
                    f"cell {idx}: address {add:#x}, expected {exp_add:#x}",
                )
            if be != exp_be:
                self._fail(
                    "PKT_BE",
                    f"cell {idx}: be {be:#x}, expected {exp_be:#x}",
                )
        if lck and not eop:
            self._fail("LCK_MIDPACKET", "lck asserted on a non-final cell")
        open_pkt.cells_seen += 1
        if eop:
            if open_pkt.expected_cells is not None \
                    and open_pkt.cells_seen != open_pkt.expected_cells:
                self._fail(
                    "PKT_LEN",
                    f"packet of {open_pkt.cells_seen} cells, expected "
                    f"{open_pkt.expected_cells}",
                )
            self._pending.append(
                _PendingResponse(open_pkt.opcode, open_pkt.tid, open_pkt.src)
            )
            if self.role == "target" and lck:
                self._chunk_src = open_pkt.src
            self._open = None
        elif open_pkt.expected_cells is not None \
                and open_pkt.cells_seen >= open_pkt.expected_cells:
            self._fail(
                "PKT_LEN",
                f"packet exceeds expected {open_pkt.expected_cells} cells",
            )
            self._open = None  # resync on the next cell

    # -- response packet rules -----------------------------------------------

    def _check_response_cell(self, port: StbusPort) -> None:
        r_src = port.r_src.value
        r_tid = port.r_tid.value
        r_eop = port.r_eop.value
        if self._resp_cells_seen == 0:
            self._resp_first = (r_src, r_tid)
        else:
            if (r_src, r_tid) != self._resp_first:
                self._fail("PKT_FIELDS", "r_src/r_tid changed mid-response")
        self._resp_cells_seen += 1
        if not r_eop:
            return
        cells_seen, self._resp_cells_seen = self._resp_cells_seen, 0
        first_src, first_tid = self._resp_first
        self._resp_first = None
        entry = self._match_pending(first_src, first_tid)
        if entry is None:
            self._fail(
                "RESP_UNEXPECTED",
                f"response tid={first_tid} src={first_src} matches no "
                "outstanding request",
            )
            return
        if self.role == "initiator" and first_src != self.index:
            self._fail(
                "RESP_SRC",
                f"r_src {first_src} at initiator port {self.index}",
            )
        if self.role == "target" and first_src != entry.src:
            self._fail(
                "RESP_SRC",
                f"r_src {first_src}, request carried src {entry.src}",
            )
        if entry.opcode is not None:
            expected = entry.opcode.response_cells(
                port.bus_bytes, self.protocol
            )
            if cells_seen != expected:
                self._fail(
                    "RESP_LEN",
                    f"{entry.opcode}: {cells_seen} response cells, "
                    f"expected {expected}",
                )

    def _matches(self, entry: _PendingResponse, r_src: int, r_tid: int) -> bool:
        if entry.tid != r_tid:
            return False
        # At a target port two initiators may share a tid value; the source
        # tag disambiguates.  At an initiator port tids are unique.
        return self.role != "target" or entry.src == r_src

    def _match_pending(self, r_src: int, r_tid: int) -> Optional[_PendingResponse]:
        if not self._pending:
            return None
        if self.protocol is ProtocolType.T2:
            head = self._pending[0]
            if not self._matches(head, r_src, r_tid):
                self._fail(
                    "RESP_ORDER",
                    f"Type II response tid={r_tid} src={r_src}, expected "
                    f"in-order tid={head.tid} src={head.src}",
                )
                # Resync: drop the entry that actually matches, if any.
                for idx, entry in enumerate(self._pending):
                    if self._matches(entry, r_src, r_tid):
                        return self._pending.pop(idx)
                return None
            return self._pending.pop(0)
        for idx, entry in enumerate(self._pending):
            if self._matches(entry, r_src, r_tid):
                return self._pending.pop(idx)
        return None

    # -- end-of-test ------------------------------------------------------------

    def finalize(self) -> None:
        """Check for work left hanging when the test ends."""
        if self._open is not None:
            self._fail("PKT_LEN", "request packet truncated at end of test")
        if self._resp_cells_seen:
            self._fail("RESP_LEN", "response packet truncated at end of test")
        for entry in self._pending:
            self._fail(
                "RESP_MISSING",
                f"no response for request tid={entry.tid} "
                f"({entry.opcode})",
            )


class Type1Checker(Module):
    """Type I interface rules for the register/programming port.

    ==================  ================================================
    ``T1_ACK_SPURIOUS``  ack asserted while req is low
    ``T1_OPC``           opc is IDLE while req is high, or undefined
    ``T1_UNSTABLE``      command fields changed while waiting for ack
    ``T1_DROPPED``       req retracted before ack
    ==================  ================================================
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        port: Type1Port,
        report: VerificationReport,
        parent: Optional[Module] = None,
    ):
        super().__init__(sim, name, parent)
        self.port = port
        self.report = report
        self._prev: Optional[tuple] = None
        self.clocked(self._clk, reads=port.signals(), writes=())

    def _fail(self, rule: str, message: str) -> None:
        self.report.error(rule, self.name, self.sim.now - 1, message)

    def _clk(self) -> None:
        port = self.port
        req = port.req.value
        ack = port.ack.value
        fields = (port.opc.value, port.add.value, port.wdata.value,
                  port.be.value)
        if ack and not req:
            self._fail("T1_ACK_SPURIOUS", "ack asserted without req")
        if req:
            if fields[0] == T1_IDLE:
                self._fail("T1_OPC", "req asserted with IDLE opcode")
            elif fields[0] not in (T1_READ, T1_WRITE):
                self._fail("T1_OPC", f"undefined opcode {fields[0]}")
        if self._prev is not None:
            prev_req, prev_ack, prev_fields = self._prev
            if prev_req and not prev_ack:
                if not req:
                    self._fail("T1_DROPPED", "req retracted before ack")
                elif fields != prev_fields:
                    self._fail("T1_UNSTABLE",
                               "command changed while waiting for ack")
        self._prev = (req, ack, fields)
