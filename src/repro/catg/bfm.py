"""Initiator BFM — the CATG "harness" that generates bus traffic.

Each eVC in Fig. 2 "is endowed with BFMs that generate random scenarios".
The BFM owns the initiator side of one STBus port: it serializes a list of
:class:`~repro.stbus.packet.Transaction` objects into request cells
(respecting the req/gnt handshake), inserts the inter-packet gaps its
sequence prescribes, and always accepts response cells.

Determinism: the BFM's behaviour is a pure function of its transaction
list, gap list and the DUT's grant timing — the same seeded sequence run
against the RTL and BCA views produces identical stimulus, which is what
makes the paper's cycle-alignment comparison meaningful.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..kernel import Module, Simulator
from ..stbus import (
    Cell,
    ProtocolType,
    StbusPort,
    Transaction,
    build_request_cells,
)


class InitiatorBfm(Module):
    """Drives the initiator side of ``port`` with a transaction program.

    Parameters
    ----------
    program:
        ``(transaction, gap)`` pairs; ``gap`` is the number of idle cycles
        inserted *before* the transaction's first cell is presented.
    protocol:
        Governs packet geometry (Type II symmetric / Type III asymmetric).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        port: StbusPort,
        protocol: ProtocolType,
        program: Sequence[Tuple[Transaction, int]] = (),
        parent: Optional[Module] = None,
    ):
        super().__init__(sim, name, parent)
        self.port = port
        self.protocol = protocol
        self._program: List[Tuple[Transaction, int]] = list(program)
        self._next_txn = 0
        self._cells: List[Cell] = []
        self._cell_idx = 0
        self._gap_left = 0
        self._gap_primed = False
        self._tid_counter = 0
        self.sent: List[Transaction] = []
        self.response_packets: List[List] = []
        self._resp_assembly: List = []
        self.clocked(
            self._clk,
            reads=[port.req, port.gnt, port.r_gnt] + port.response_signals(),
            writes=port.request_signals() + [port.r_gnt],
            # src/r_gnt get the same constant on every activation (the
            # final unconditional drives in _clk); declaring the tie-off
            # lets the static analysis treat them as proven constants.
            tie_offs={port.src: 0, port.r_gnt: 1},
        )

    def load_program(self, program: Sequence[Tuple[Transaction, int]]) -> None:
        """Replace the program (before the simulation starts)."""
        self._program = list(program)

    @property
    def done(self) -> bool:
        """All transactions fully injected (responses may still be in flight)."""
        return self._next_txn >= len(self._program) and not self._cells

    # ------------------------------------------------------------------

    def _begin_next(self) -> None:
        if self._next_txn >= len(self._program):
            return
        txn, gap = self._program[self._next_txn]
        if not self._gap_primed:
            self._gap_left = gap
            self._gap_primed = True
        if self._gap_left > 0:
            self._gap_left -= 1
            return
        self._next_txn += 1
        self._gap_primed = False
        txn.tid = self._tid_counter & 0xFF
        self._tid_counter += 1
        self._cells = build_request_cells(txn, self.port.bus_bytes, self.protocol)
        self._cell_idx = 0
        self.sent.append(txn)

    def _clk(self) -> None:
        port = self.port
        # Record response cells (the scoreboard uses monitors; keeping a
        # local copy makes the BFM usable standalone in unit tests).
        if port.response_fired:
            cell = port.response_cell()
            self._resp_assembly.append(cell)
            if cell.r_eop:
                self.response_packets.append(self._resp_assembly)
                self._resp_assembly = []
        # Consume the grant observed during the previous cycle.
        if self._cells and port.request_fired:
            if self._cells[self._cell_idx].eop:
                self._cells = []
                self._cell_idx = 0
            else:
                self._cell_idx += 1
        if not self._cells:
            self._begin_next()
        # Drive the current cell (registered outputs).
        if self._cells:
            port.drive_request(self._cells[self._cell_idx])
        else:
            port.idle_request()
            port.add.drive(0)
            port.opc.drive(0)
            port.data.drive(0)
            port.be.drive(0)
            port.tid.drive(0)
            port.pri.drive(0)
        port.src.drive(0)  # src is meaningful only on the node's target side
        port.r_gnt.drive(1)  # the BFM always absorbs response cells
