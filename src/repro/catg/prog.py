"""Programming-port master — drives the node's Type I register port.

Section 5: the node "has an optional programmable port allowing changing
the arbitration priority of initiators or targets"; test case T07 uses
this master to reprogram priorities mid-test.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..kernel import Module, Simulator
from ..stbus import T1_IDLE, T1_READ, T1_WRITE, Type1Port
from .sequence import ProgOp


class ProgrammingMaster(Module):
    """Executes a schedule of register reads/writes over a Type I port."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        port: Type1Port,
        schedule: Sequence[ProgOp] = (),
        parent: Optional[Module] = None,
    ):
        super().__init__(sim, name, parent)
        self.port = port
        self._schedule: List[ProgOp] = sorted(schedule, key=lambda op: op.cycle)
        self._idx = 0
        self._active: Optional[ProgOp] = None
        self.completed: List[ProgOp] = []
        self.read_values: List[int] = []
        self.clocked(
            self._clk,
            reads=[port.req, port.ack, port.rdata],
            writes=[port.req, port.opc, port.add, port.wdata, port.be],
        )

    def load_schedule(self, schedule: Sequence[ProgOp]) -> None:
        self._schedule = sorted(schedule, key=lambda op: op.cycle)

    @property
    def done(self) -> bool:
        return self._active is None and self._idx >= len(self._schedule)

    def _clk(self) -> None:
        port = self.port
        if self._active is not None and port.fired:
            if not self._active.is_write:
                self.read_values.append(port.rdata.value)
            self.completed.append(self._active)
            self._active = None
        if self._active is None and self._idx < len(self._schedule) \
                and self._schedule[self._idx].cycle <= self.sim.now:
            self._active = self._schedule[self._idx]
            self._idx += 1
        if self._active is not None:
            op = self._active
            port.req.drive(1)
            port.opc.drive(T1_WRITE if op.is_write else T1_READ)
            port.add.drive((op.index * 4) & port.add.mask)
            port.wdata.drive(op.value & port.wdata.mask)
            port.be.drive(port.be.mask)
        else:
            port.req.drive(0)
            port.opc.drive(T1_IDLE)
            port.add.drive(0)
            port.wdata.drive(0)
            port.be.drive(0)
