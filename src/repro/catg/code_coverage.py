"""Code coverage for the RTL view — line, branch and statement metrics.

Section 4: "The code coverage reflects how the code is exercised and can
be applied only in the RTL verification since no tool is able to generate
this metrics for SystemC.  The code coverage metrics we use are line,
branch and statement coverage."

The same asymmetry holds here: the RTL view is ordinary Python the tracer
can instrument, while the BCA view stands in for the SystemC model the
paper could not measure.  (Nothing physically stops tracing the BCA files
too, but the flow only ever requests RTL code coverage, matching the
paper's methodology.)

Implementation: a ``sys.settrace`` line tracer restricted to the target
files, plus an AST pass that enumerates what *could* execute:

- **statement coverage** — executable statement nodes whose first line ran;
- **line coverage** — executable lines that ran;
- **branch coverage** — each ``if``/``while`` polarity: the true arm is
  covered when its first body line ran, the false arm when the statement
  after the construct (or its ``else`` body) ran while the test line also
  ran — an arc approximation that matches what commercial line tracers
  report.
"""

from __future__ import annotations

import ast
import os
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

#: Default scope: the RTL view's source files.
def _default_predicate(path: str) -> bool:
    normalized = path.replace(os.sep, "/")
    return "/repro/rtl/" in normalized and normalized.endswith(".py")


_STATEMENT_NODES = (
    ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Expr, ast.Return,
    ast.Raise, ast.Assert, ast.If, ast.While, ast.For, ast.With,
    ast.Try, ast.Break, ast.Continue, ast.Pass, ast.Delete,
)


@dataclass
class FileCoverage:
    """Per-file results."""

    path: str
    executable_lines: Set[int] = field(default_factory=set)
    statement_lines: Set[int] = field(default_factory=set)
    branch_points: List[Tuple[int, int, Optional[int]]] = field(
        default_factory=list
    )  # (test line, true-arm line, false-arm line or None)
    hit_lines: Set[int] = field(default_factory=set)

    @property
    def line_percent(self) -> float:
        if not self.executable_lines:
            return 100.0
        hit = len(self.executable_lines & self.hit_lines)
        return 100.0 * hit / len(self.executable_lines)

    @property
    def statement_percent(self) -> float:
        if not self.statement_lines:
            return 100.0
        hit = len(self.statement_lines & self.hit_lines)
        return 100.0 * hit / len(self.statement_lines)

    def branch_outcomes(self) -> Tuple[int, int]:
        """(covered, total) branch arms."""
        total = 0
        covered = 0
        for test_line, true_line, false_line in self.branch_points:
            total += 2
            if test_line in self.hit_lines and true_line in self.hit_lines:
                covered += 1
            if test_line in self.hit_lines:
                if false_line is None or false_line in self.hit_lines:
                    # Fall-through arm: approximated as covered when the
                    # test executed more often than the true arm alone
                    # could explain; with a line tracer the conservative
                    # check is whether the false destination line ran.
                    if false_line is not None or true_line in self.hit_lines:
                        covered += 1
        return covered, total

    @property
    def branch_percent(self) -> float:
        covered, total = self.branch_outcomes()
        return 100.0 * covered / total if total else 100.0

    def missed_lines(self) -> List[int]:
        return sorted(self.executable_lines - self.hit_lines)


@dataclass
class CodeCoverageReport:
    """Aggregated line/branch/statement coverage over the traced files."""

    files: Dict[str, FileCoverage]

    def _aggregate(self, selector) -> float:
        num = 0
        den = 0
        for cov in self.files.values():
            n, d = selector(cov)
            num += n
            den += d
        return 100.0 * num / den if den else 100.0

    @property
    def line_percent(self) -> float:
        return self._aggregate(
            lambda c: (len(c.executable_lines & c.hit_lines),
                       len(c.executable_lines))
        )

    @property
    def statement_percent(self) -> float:
        return self._aggregate(
            lambda c: (len(c.statement_lines & c.hit_lines),
                       len(c.statement_lines))
        )

    @property
    def branch_percent(self) -> float:
        return self._aggregate(lambda c: c.branch_outcomes())

    def render(self) -> str:
        lines = [
            "Code coverage (RTL view):",
            f"  line      {self.line_percent:6.1f}%",
            f"  branch    {self.branch_percent:6.1f}%",
            f"  statement {self.statement_percent:6.1f}%",
        ]
        for path in sorted(self.files):
            cov = self.files[path]
            lines.append(
                f"  {os.path.basename(path):<20} line {cov.line_percent:5.1f}% "
                f"branch {cov.branch_percent:5.1f}% "
                f"stmt {cov.statement_percent:5.1f}%"
            )
            missed = cov.missed_lines()
            if missed:
                head = ", ".join(str(line) for line in missed[:12])
                more = "..." if len(missed) > 12 else ""
                lines.append(f"    missed lines: {head}{more}")
        return "\n".join(lines) + "\n"


def _analyze_file(path: str) -> FileCoverage:
    """Enumerate what can execute *during simulation*.

    Only statements inside function bodies count: module- and class-level
    code runs at import time, before any test starts tracing, so counting
    it would understate how well the tests exercise the model.
    """
    with open(path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    cov = FileCoverage(path)
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(func):
            if node is func:
                continue
            if isinstance(node, _STATEMENT_NODES):
                cov.statement_lines.add(node.lineno)
                cov.executable_lines.add(node.lineno)
            if isinstance(node, (ast.If, ast.While)):
                true_line = node.body[0].lineno if node.body else node.lineno
                false_line = node.orelse[0].lineno if node.orelse else None
                cov.branch_points.append((node.lineno, true_line, false_line))
    return cov


class CodeCoverage:
    """Line tracer scoped to selected source files.

    Use as a context manager around the simulation::

        with CodeCoverage() as tracer:
            env.run()
        report = tracer.report()
    """

    def __init__(self, predicate: Callable[[str], bool] = _default_predicate):
        self.predicate = predicate
        self._hits: Dict[str, Set[int]] = {}
        self._decided: Dict[str, bool] = {}
        self._prev_trace = None

    # -- tracing -----------------------------------------------------------

    def _global_trace(self, frame, event, arg):
        if event != "call":
            return None
        path = frame.f_code.co_filename
        wanted = self._decided.get(path)
        if wanted is None:
            wanted = self.predicate(path)
            self._decided[path] = wanted
        if not wanted:
            return None
        hits = self._hits.setdefault(path, set())
        hits.add(frame.f_lineno)

        def local_trace(frame, event, arg):
            if event == "line":
                hits.add(frame.f_lineno)
            return local_trace

        return local_trace

    def start(self) -> None:
        self._prev_trace = sys.gettrace()
        sys.settrace(self._global_trace)

    def stop(self) -> None:
        sys.settrace(self._prev_trace)

    def __enter__(self) -> "CodeCoverage":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- reporting ----------------------------------------------------------

    def report(self) -> CodeCoverageReport:
        files: Dict[str, FileCoverage] = {}
        for path, hits in self._hits.items():
            try:
                cov = _analyze_file(path)
            except (OSError, SyntaxError):
                continue
            cov.hit_lines = set(hits)
            files[path] = cov
        return CodeCoverageReport(files)
