"""Port monitors — passive packet re-assembly.

Fig. 2: each eVC has "monitors that collect traffic information".  A
:class:`PortMonitor` watches one STBus port, reassembles request and
response cells into observed packets, timestamps them, and broadcasts them
to subscribers (protocol checkers work at cell granularity themselves; the
scoreboard and coverage model consume whole packets from monitors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..kernel import Module, Simulator
from ..stbus import Cell, RespCell, StbusPort


@dataclass
class ObservedRequest:
    """A complete request packet as seen at one port."""

    port_name: str
    role: str  # "initiator" (DUT slave side) or "target" (DUT master side)
    index: int  # port index within its role
    cells: List[Cell]
    start_cycle: int
    end_cycle: int

    @property
    def opc(self) -> int:
        return self.cells[0].opc

    @property
    def address(self) -> int:
        return self.cells[0].add

    @property
    def tid(self) -> int:
        return self.cells[0].tid

    @property
    def src(self) -> int:
        return self.cells[0].src

    @property
    def lck(self) -> int:
        return self.cells[-1].lck


@dataclass
class ObservedResponse:
    """A complete response packet as seen at one port."""

    port_name: str
    role: str
    index: int
    cells: List[RespCell]
    start_cycle: int
    end_cycle: int

    @property
    def r_src(self) -> int:
        return self.cells[0].r_src

    @property
    def r_tid(self) -> int:
        return self.cells[0].r_tid

    @property
    def is_error(self) -> bool:
        return any(cell.is_error for cell in self.cells)


RequestCallback = Callable[[ObservedRequest], None]
ResponseCallback = Callable[[ObservedResponse], None]


class PortMonitor(Module):
    """Collects the traffic of one port into observed packets."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        port: StbusPort,
        role: str,
        index: int,
        parent: Optional[Module] = None,
    ):
        super().__init__(sim, name, parent)
        if role not in ("initiator", "target"):
            raise ValueError("role must be 'initiator' or 'target'")
        self.port = port
        self.role = role
        self.index = index
        self._req_cells: List[Cell] = []
        self._req_start = 0
        self._resp_cells: List[RespCell] = []
        self._resp_start = 0
        self._req_subs: List[RequestCallback] = []
        self._resp_subs: List[ResponseCallback] = []
        self.requests: List[ObservedRequest] = []
        self.responses: List[ObservedResponse] = []
        #: Keep full packet lists (tests/scoreboard) — disable for very
        #: long soak runs to bound memory.
        self.keep_history = True
        self.clocked(self._clk, reads=port.signals(), writes=())

    def on_request(self, callback: RequestCallback) -> None:
        self._req_subs.append(callback)

    def on_response(self, callback: ResponseCallback) -> None:
        self._resp_subs.append(callback)

    def _clk(self) -> None:
        cycle = self.sim.now - 1  # the cycle whose values we sampled
        port = self.port
        if port.request_fired:
            if not self._req_cells:
                self._req_start = cycle
            cell = port.request_cell()
            self._req_cells.append(cell)
            if cell.eop:
                obs = ObservedRequest(
                    port.name, self.role, self.index,
                    self._req_cells, self._req_start, cycle,
                )
                self._req_cells = []
                if self.keep_history:
                    self.requests.append(obs)
                for callback in self._req_subs:
                    callback(obs)
        if port.response_fired:
            if not self._resp_cells:
                self._resp_start = cycle
            cell = port.response_cell()
            self._resp_cells.append(cell)
            if cell.r_eop:
                obs = ObservedResponse(
                    port.name, self.role, self.index,
                    self._resp_cells, self._resp_start, cycle,
                )
                self._resp_cells = []
                if self.keep_history:
                    self.responses.append(obs)
                for callback in self._resp_subs:
                    callback(obs)
