"""Target harness — the CATG memory-model agent behind each target port.

Plays the role of the paper's "models of STBus harnesses" on the target
side: it accepts request packets, applies memory semantics (loads, stores,
read-modify-write, swap), and returns protocol-correct response packets
after a configurable latency.  Per-target latencies are how the test cases
provoke out-of-order traffic: "short transactions are sent by one
initiator to different targets, having different speed" (Section 5).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..kernel import Module, Simulator
from ..stbus import (
    Cell,
    OpKind,
    Opcode,
    OpcodeError,
    ProtocolType,
    RespCell,
    StbusPort,
    build_response_cells,
    request_data_from_cells,
)


def default_byte(address: int) -> int:
    """Deterministic background pattern for never-written memory."""
    return (address & 0xFF) ^ 0xA5


@dataclass
class _Job:
    """A fully received request packet awaiting its response turn."""

    cells: List[RespCell]
    ready_cycle: int


class TargetHarness(Module):
    """Memory-backed slave agent with configurable speed.

    Parameters
    ----------
    latency:
        Base cycles between receiving a packet's last request cell and
        presenting the first response cell.
    jitter:
        If > 0, a deterministic per-packet extra delay drawn uniformly
        from ``[0, jitter)`` using ``seed``.
    capacity:
        Maximum queued packets; the harness deasserts ``gnt`` when full
        (back-pressure toward the node).
    error_rate:
        Fault injection: the fraction of packets answered with an error
        response instead of being executed (deterministic per seed).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        port: StbusPort,
        protocol: ProtocolType,
        latency: int = 2,
        jitter: int = 0,
        capacity: int = 8,
        seed: int = 0,
        error_rate: float = 0.0,
        parent: Optional[Module] = None,
    ):
        super().__init__(sim, name, parent)
        if latency < 0 or jitter < 0 or capacity < 1:
            raise ValueError("latency/jitter must be >= 0, capacity >= 1")
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError("error_rate must be in [0, 1]")
        self.port = port
        self.protocol = protocol
        self.latency = latency
        self.jitter = jitter
        self.capacity = capacity
        self.error_rate = error_rate
        self._rng = random.Random(seed)
        self._mem: Dict[int, int] = {}
        self._assembly: List[Cell] = []
        self._jobs: List[_Job] = []
        self._resp_cells: List[RespCell] = []
        self._resp_idx = 0
        self.packets_served = 0
        self._tick = self.signal("tick")
        self.clocked(
            self._clk,
            reads=port.signals() + [self._tick],
            writes=port.response_signals() + [self._tick],
        )
        self.comb(self._gnt_comb, [self._tick, port.req])

    # -- memory model -----------------------------------------------------

    def read_mem(self, address: int, size: int) -> bytes:
        return bytes(
            self._mem.get(address + k, default_byte(address + k))
            for k in range(size)
        )

    def write_mem(self, address: int, data: bytes) -> None:
        for k, byte in enumerate(data):
            self._mem[address + k] = byte

    @property
    def busy(self) -> bool:
        """Packets queued or a response still being transmitted."""
        return bool(self._jobs or self._resp_cells or self._assembly)

    # -- processes -----------------------------------------------------------

    def _gnt_comb(self) -> None:
        self.port.gnt.drive(1 if len(self._jobs) < self.capacity else 0)

    def _clk(self) -> None:
        port = self.port
        now = self.sim.now
        # Request side: capture the cell that transferred last cycle.
        if port.request_fired:
            self._assembly.append(port.request_cell())
            if self._assembly[-1].eop:
                self._complete_packet(now)
        # Response side: advance past the cell consumed last cycle.
        if self._resp_cells and port.response_fired:
            self._resp_idx += 1
            if self._resp_idx >= len(self._resp_cells):
                self._resp_cells = []
                self._resp_idx = 0
        if not self._resp_cells and self._jobs \
                and self._jobs[0].ready_cycle <= now:
            job = self._jobs.pop(0)
            self._resp_cells = job.cells
            self._resp_idx = 0
        if self._resp_cells:
            port.drive_response(self._resp_cells[self._resp_idx])
        else:
            port.idle_response()
            port.r_opc.drive(0)
            port.r_data.drive(0)
            port.r_src.drive(0)
            port.r_tid.drive(0)
        self._tick.drive(self._tick.value ^ 1)

    # -- packet semantics ---------------------------------------------------

    def _complete_packet(self, now: int) -> None:
        cells, self._assembly = self._assembly, []
        first = cells[0]
        delay = self.latency
        if self.jitter:
            delay += self._rng.randrange(self.jitter)
        try:
            opcode = Opcode.decode(first.opc)
        except OpcodeError:
            resp = [RespCell(r_opc=1, r_eop=1, r_src=first.src, r_tid=first.tid)]
            self._jobs.append(_Job(resp, now + delay))
            return
        if self.error_rate and self._rng.random() < self.error_rate:
            resp = build_response_cells(
                opcode, self.port.bus_bytes, self.protocol, error=True,
                src=first.src, tid=first.tid, address=first.add,
            )
            self._jobs.append(_Job(resp, now + delay))
            return
        data = self._execute(opcode, first.add, cells)
        resp = build_response_cells(
            opcode,
            self.port.bus_bytes,
            self.protocol,
            data=data,
            src=first.src,
            tid=first.tid,
            address=first.add,
        )
        self._jobs.append(_Job(resp, now + delay))
        self.packets_served += 1

    def _execute(self, opcode: Opcode, address: int, cells: List[Cell]) -> bytes:
        """Apply memory semantics at arrival time (the serialization point)."""
        kind = opcode.kind
        if kind in (OpKind.LOAD, OpKind.READEX):
            return self.read_mem(address, opcode.size)
        if kind is OpKind.STORE:
            self.write_mem(address, request_data_from_cells(cells, self.port.bus_bytes))
            return b""
        if kind in (OpKind.RMW, OpKind.SWAP):
            old = self.read_mem(address, opcode.size)
            self.write_mem(address, request_data_from_cells(cells, self.port.bus_bytes))
            return old
        # FLUSH / PURGE: pure acknowledgements.
        return b""
