"""TLM verification phase — the paper's future work, implemented.

Section 6: "Future including of SystemC Verification in verification flow
will be a great opportunity to add TLM (Transaction Level Modeling)
development and verification phase in the flow."

This module is that phase: checks and coverage that operate on whole
transactions from the standalone BCA mode
(:class:`~repro.bca.fast.FastBcaSim`), with no pins and no waveform — the
early, fast gate that runs *before* the pin-level common environment.
Because the fast mode is validated cycle-exact against the pin-level BCA,
a TLM pass here is meaningful evidence, and a TLM failure localizes a bug
orders of magnitude earlier in the flow.

Checks:

=================  ======================================================
``TLM_COMPLETE``    every injected transaction completed exactly once
``TLM_ORDER``       Type II responses return in request order
``TLM_ERROR``       error flag iff the address decodes to no target
``TLM_LATENCY``     latency is at least the structural minimum
``TLM_TIMEOUT``     the run drained within its cycle budget
=================  ======================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..bca.fast import CompletedTxn, FastResult, run_fast
from ..stbus import NodeConfig, ProtocolType
from .coverage import CoverGroup, CoverageModel
from .report import VerificationReport
from .sequence import TestProgram

ERROR_TARGET = -1


def build_tlm_coverage(config: NodeConfig) -> CoverageModel:
    """The transaction-level coverage space (a subset of the pin-level
    space: bins that need cycle-level observation — conflicts, outstanding
    depth, byte-enable lanes — belong to the pin-level phase)."""
    from ..stbus import all_opcodes

    paths = [
        f"init{i}->targ{t}"
        for i in range(config.n_initiators)
        for t in range(config.n_targets)
        if config.path_allowed(i, t)
    ]
    return CoverageModel([
        CoverGroup("opcode", [str(op) for op in all_opcodes()]),
        CoverGroup("path", paths),
        CoverGroup("response", ["ok", "error"]),
        CoverGroup("decode", ["hit", "error"]),
    ])


@dataclass
class TlmResult:
    """Outcome of the TLM verification phase for one (config, test)."""

    config_name: str
    test_name: str
    seed: int
    passed: bool
    report: VerificationReport
    coverage: CoverageModel
    fast: FastResult

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"{status} tlm {self.config_name} {self.test_name} "
            f"seed={self.seed} cycles={self.fast.cycles} "
            f"txns={len(self.fast.completed)} "
            f"cov={self.coverage.percent:.1f}% "
            f"violations={len(self.report.violations)}"
        )


class TlmChecker:
    """Applies the TLM rules to a completed fast-mode run."""

    def __init__(self, config: NodeConfig, report: VerificationReport):
        self.config = config
        self.report = report
        self.amap = config.resolved_map

    def _fail(self, rule: str, cycle: int, message: str) -> None:
        self.report.error(rule, "tlm", cycle, message)

    def _decode(self, initiator: int, address: int) -> int:
        target = self.amap.decode(address)
        if target is None or not self.config.path_allowed(initiator, target):
            return ERROR_TARGET
        return target

    def min_latency(self, is_error: bool = False) -> int:
        """Structural latency floor.

        Normal responses cross the request pipe, spend at least one cycle
        at the target, and cross the response pipe.  Error responses are
        generated inside the node and only cross the response pipe.
        """
        if is_error:
            return self.config.pipe_depth + 1
        return 2 * self.config.pipe_depth + 1

    def check(self, test: TestProgram, result: FastResult) -> None:
        if result.timed_out:
            self._fail("TLM_TIMEOUT", result.cycles,
                       f"run did not drain in {result.cycles} cycles")
        expected = test.total_transactions()
        if len(result.completed) != expected:
            self._fail(
                "TLM_COMPLETE", result.cycles,
                f"{len(result.completed)} transactions completed, "
                f"{expected} injected",
            )
        per_initiator: Dict[int, List[CompletedTxn]] = {}
        for txn in result.completed:
            per_initiator.setdefault(txn.initiator, []).append(txn)
            target = self._decode(txn.initiator, txn.address)
            floor = self.min_latency(is_error=target == ERROR_TARGET)
            if (target == ERROR_TARGET) != txn.is_error:
                self._fail(
                    "TLM_ERROR", txn.response_end,
                    f"init{txn.initiator} tid={txn.tid} @{txn.address:#x}: "
                    f"decode={'error' if target == ERROR_TARGET else target} "
                    f"but response error={txn.is_error}",
                )
            if txn.latency < floor:
                self._fail(
                    "TLM_LATENCY", txn.response_end,
                    f"init{txn.initiator} tid={txn.tid}: latency "
                    f"{txn.latency} below structural minimum {floor}",
                )
        if self.config.protocol_type is ProtocolType.T2:
            for initiator, txns in per_initiator.items():
                ordered = sorted(txns, key=lambda t: t.response_end)
                issue_order = sorted(txns, key=lambda t: t.request_end)
                if [t.tid for t in ordered] != [t.tid for t in issue_order]:
                    self._fail(
                        "TLM_ORDER", ordered[-1].response_end,
                        f"init{initiator}: Type II responses out of "
                        "request order",
                    )


class TlmCoverageCollector:
    """Samples the TLM coverage space from completed transactions."""

    def __init__(self, config: NodeConfig,
                 model: Optional[CoverageModel] = None):
        self.config = config
        self.model = model or build_tlm_coverage(config)
        self.amap = config.resolved_map

    def sample(self, result: FastResult) -> None:
        for txn in result.completed:
            self.model["opcode"].sample(str(txn.opcode))
            target = self.amap.decode(txn.address)
            if target is None or not self.config.path_allowed(
                    txn.initiator, target):
                self.model["decode"].sample("error")
            else:
                self.model["decode"].sample("hit")
                self.model["path"].sample(
                    f"init{txn.initiator}->targ{target}"
                )
            self.model["response"].sample(
                "error" if txn.is_error else "ok"
            )


def run_tlm_verification(config: NodeConfig, test: TestProgram) -> TlmResult:
    """Execute one (config, test) in the TLM phase."""
    report = VerificationReport(name=f"{config.name}/tlm")
    result = run_fast(config, test)
    TlmChecker(config, report).check(test, result)
    collector = TlmCoverageCollector(config)
    collector.sample(result)
    return TlmResult(
        config_name=config.name,
        test_name=test.name,
        seed=test.seed,
        passed=report.passed,
        report=report,
        coverage=collector.model,
        fast=result,
    )
