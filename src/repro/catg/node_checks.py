"""Node-specific checks: the arbitration reference checker.

Section 5: "Specific checks, not covered by CATG, have also been
developed."  For the node, the interesting DUT-specific behaviour is
*arbitration*: which initiator the node grants, per policy, per cycle.

:class:`ArbitrationChecker` rebuilds the grant function of the node
specification purely from pin observations — reference arbiter instances
(shared spec code from :mod:`repro.stbus.arbitration`), packet/chunk
locks, pipe occupancy reconstructed from cells-in minus cells-out, the
Type II ordering rule and the split-transaction credit — and compares the
node's actual ``gnt`` pins against the prediction every cycle.

This is the mechanism that catches the seeded BCA bugs
``lru-recency-stuck``, ``chunk-lock-ignored`` and ``prog-update-stale``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..kernel import Module, Simulator
from ..stbus import (
    Architecture,
    ArbitrationPolicy,
    NodeConfig,
    Opcode,
    OpcodeError,
    ProtocolType,
    StbusPort,
    T1_WRITE,
    Type1Port,
    make_arbiter,
)
from ..stbus.arbitration import LatencyArbiter, ProgrammablePriorityArbiter
from .report import VerificationReport

ERROR_TARGET = -1


@dataclass
class _Flight:
    target: int
    tid: int


class ArbitrationChecker(Module):
    """Reference-model checker for the node's request-side grant logic."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        config: NodeConfig,
        init_ports: Sequence[StbusPort],
        targ_ports: Sequence[StbusPort],
        report: VerificationReport,
        prog_port: Optional[Type1Port] = None,
        parent: Optional[Module] = None,
    ):
        super().__init__(sim, name, parent)
        self.config = config
        self.init_ports = list(init_ports)
        self.targ_ports = list(targ_ports)
        self.prog_port = prog_port
        self.report = report
        self.amap = config.resolved_map
        self.shared = config.architecture is Architecture.SHARED_BUS
        n_domains = 1 if self.shared else config.n_targets
        self._arb = [
            make_arbiter(
                config.arbitration,
                config.n_initiators,
                priorities=config.priorities,
                latency_budgets=config.latency_budgets,
                bandwidth_allocations=config.bandwidth_allocations,
                bandwidth_window=config.bandwidth_window,
            )
            for _ in range(n_domains)
        ]
        self._busy: List[Optional[int]] = [None] * n_domains
        self._chunk: List[Optional[int]] = [None] * n_domains
        self._occupancy: List[int] = [0] * n_domains
        self._route: List[Optional[int]] = [None] * config.n_initiators
        self._flights: List[List[_Flight]] = [
            [] for _ in range(config.n_initiators)
        ]
        self.checked_cycles = 0
        observed = [
            sig for port in self.init_ports + self.targ_ports
            for sig in port.signals()
        ]
        if prog_port is not None:
            observed += prog_port.signals()
        self.clocked(self._clk, reads=observed, writes=())

    # -- shared spec helpers ----------------------------------------------------

    def _domain(self, target: int) -> int:
        return 0 if self.shared else target

    def _decode(self, initiator: int, address: int) -> int:
        target = self.amap.decode(address)
        if target is None or not self.config.path_allowed(initiator, target):
            return ERROR_TARGET
        return target

    def _destination(self, initiator: int) -> Optional[int]:
        port = self.init_ports[initiator]
        if not port.req.value:
            return None
        if self._route[initiator] is not None:
            return self._route[initiator]
        return self._decode(initiator, port.add.value)

    def _may_open(self, initiator: int, target: int) -> bool:
        flights = self._flights[initiator]
        if len(flights) >= self.config.max_outstanding:
            return False
        if self.config.protocol_type is ProtocolType.T2:
            return all(flight.target == target for flight in flights)
        return True

    def _domain_fired(self, domain: int) -> bool:
        if self.shared:
            return any(
                port.req.value and port.gnt.value for port in self.targ_ports
            )
        port = self.targ_ports[domain]
        return bool(port.req.value and port.gnt.value)

    # -- the reference grant function -----------------------------------------

    def _expected_grants(self) -> List[int]:
        grants = [0] * self.config.n_initiators
        for domain in range(len(self._arb)):
            fired = self._domain_fired(domain)
            if not (fired or self._occupancy[domain] < self.config.pipe_depth):
                continue
            candidates = []
            for i in range(self.config.n_initiators):
                dest = self._destination(i)
                if dest is None or dest == ERROR_TARGET:
                    continue
                if self._domain(dest) != domain:
                    continue
                if self._route[i] is None and not self._may_open(i, dest):
                    continue
                candidates.append(i)
            if not candidates:
                continue
            if self._busy[domain] is not None:
                winner = self._busy[domain] \
                    if self._busy[domain] in candidates else None
            elif self._chunk[domain] is not None:
                winner = self._chunk[domain] \
                    if self._chunk[domain] in candidates else None
            else:
                winner = self._arb[domain].pick(candidates)
            if winner is not None:
                grants[winner] = 1
        for i in range(self.config.n_initiators):
            dest = self._destination(i)
            if dest != ERROR_TARGET:
                continue
            if self._route[i] is not None or self._may_open(i, ERROR_TARGET):
                grants[i] = 1
        return grants

    # -- per-cycle: predict, compare, then update state ------------------------

    def _clk(self) -> None:
        cycle = self.sim.now - 1
        expected = self._expected_grants()
        for i, port in enumerate(self.init_ports):
            actual = port.gnt.value
            if actual != expected[i]:
                kind = "unexpected grant to" if actual else "missing grant for"
                self.report.error(
                    "ARB_POLICY", self.name, cycle,
                    f"{kind} initiator {i} "
                    f"(policy {self.config.arbitration.value})",
                )
        self.checked_cycles += 1
        self._update_state()

    def _update_state(self) -> None:
        # Cells leaving toward targets free pipe slots.
        for t, port in enumerate(self.targ_ports):
            if port.req.value and port.gnt.value:
                self._occupancy[self._domain(t)] -= 1
        # Granted request cells.
        for i, port in enumerate(self.init_ports):
            if not (port.req.value and port.gnt.value):
                continue
            if self._route[i] is None:
                self._route[i] = self._decode(i, port.add.value)
            target = self._route[i]
            eop = port.eop.value
            if target != ERROR_TARGET:
                domain = self._domain(target)
                self._occupancy[domain] += 1
                self._arb[domain].on_grant_cycle(i)
                if eop:
                    self._flights[i].append(_Flight(target, port.tid.value))
                    self._route[i] = None
                    self._busy[domain] = None
                    self._chunk[domain] = i if port.lck.value else None
                    self._arb[domain].on_packet_end(i)
                else:
                    self._busy[domain] = i
            elif eop:
                self._flights[i].append(_Flight(ERROR_TARGET, port.tid.value))
                self._route[i] = None
        # Responses retiring at initiator ports release credit.
        for i, port in enumerate(self.init_ports):
            if port.r_req.value and port.r_gnt.value and port.r_eop.value:
                self._retire(i, port.r_tid.value)
        # Per-cycle arbiter ageing (identical rule to the specification).
        for domain, arbiter in enumerate(self._arb):
            waiting = []
            for i in range(self.config.n_initiators):
                dest = self._destination(i)
                if dest is not None and dest != ERROR_TARGET \
                        and self._domain(dest) == domain:
                    waiting.append(i)
            arbiter.tick(waiting)
        # Programming-port writes reprogram the reference immediately.
        self._watch_prog()

    def _retire(self, initiator: int, r_tid: int) -> None:
        flights = self._flights[initiator]
        if not flights:
            return
        if self.config.protocol_type is ProtocolType.T2:
            flights.pop(0)
            return
        for idx, flight in enumerate(flights):
            if flight.tid == r_tid:
                flights.pop(idx)
                return
        flights.pop(0)

    def _watch_prog(self) -> None:
        port = self.prog_port
        if port is None:
            return
        if not (port.req.value and port.ack.value):
            return
        if port.opc.value != T1_WRITE:
            return
        idx = (port.add.value >> 2) % max(1, self.config.n_initiators)
        if idx >= self.config.n_initiators:
            return
        value = port.wdata.value
        if self.config.arbitration is ArbitrationPolicy.PROGRAMMABLE_PRIORITY:
            for arbiter in self._arb:
                assert isinstance(arbiter, ProgrammablePriorityArbiter)
                arbiter.set_priority(idx, value)
        elif self.config.arbitration is ArbitrationPolicy.LATENCY_BASED:
            for arbiter in self._arb:
                assert isinstance(arbiter, LatencyArbiter)
                arbiter.set_budget(idx, max(1, value))
