"""The generic testbench of Fig. 2, assembled.

"The DUT interfaces are connected to eVCs ... Each eVC is endowed with
BFMs that generate random scenarios, monitors that collect traffic
information and checkers that check the correctness of the protocol at the
interface.  Moreover the scoreboard and specific checkers are required for
each DUT."

:class:`VerificationEnv` builds exactly that around either design view of
the node — the *same* environment code for both, which is the paper's
contribution.  A :class:`RunResult` corresponds to the per-(test, seed)
"verification report and functional coverage one" the regression tool
emits, plus the optional VCD for bus-accurate comparison.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..bca.node import BcaNode
from ..kernel import Module, Simulator
from ..rtl.node import RtlNode
from ..stbus import NodeConfig, StbusPort, T1_WRITE, Type1Port
from ..telemetry import NULL_TELEMETRY, Telemetry
from ..vcd import VcdWriter
from .bfm import InitiatorBfm
from .checker import ProtocolChecker, Type1Checker
from .coverage import CoverageModel, NodeCoverageCollector
from .monitor import PortMonitor
from .node_checks import ArbitrationChecker
from .prog import ProgrammingMaster
from .report import VerificationReport
from .scoreboard import Scoreboard
from .sequence import TestProgram
from .target import TargetHarness

#: The two design views the environment accepts — "the DUT can be RTL or BCA".
VIEWS = ("rtl", "bca")

#: Accepted simulation-engine selections (mirrors
#: :data:`repro.kernel.compiled.KERNELS`, duplicated here so validating a
#: run request does not import the compiled kernel and its analysis
#: dependencies).  ``delta`` is the interpreted reference loop,
#: ``compiled`` always attaches the levelized kernel, ``auto`` attaches
#: it only when the whole combinational graph levelized acyclically.
KERNELS = ("delta", "compiled", "auto")


@dataclass
class RunResult:
    """Outcome of one (config, view, test, seed) run."""

    config_name: str
    view: str
    test_name: str
    seed: int
    passed: bool
    timed_out: bool
    cycles: int
    wall_seconds: float
    report: VerificationReport
    coverage: CoverageModel
    dut_stats: Dict[str, int] = field(default_factory=dict)
    vcd_path: Optional[str] = None
    #: Kernel activity counters (cycles, delta iterations, process
    #: activations, signal commits/toggles, VCD bytes) — always recorded.
    kernel_stats: Dict[str, int] = field(default_factory=dict)
    #: ``{process name: [activations, seconds]}`` when the run was
    #: executed with per-process timing enabled.
    process_seconds: Dict[str, List[float]] = field(default_factory=dict)
    #: Per-run telemetry payload (set by the regression engine when the
    #: batch runs with telemetry; picklable, excluded from all reports).
    telemetry: Optional[object] = None

    @property
    def coverage_percent(self) -> float:
        return self.coverage.percent

    @property
    def status(self) -> str:
        """Entry status for the regression report and journal:
        ``PASS``/``FAIL`` for completed runs, ``TIMEOUT`` when the
        simulation hit its cycle budget.  The resilience layer adds
        ``ERROR``/``QUARANTINED`` via
        :class:`~repro.regression.resilience.RunFailure`."""
        if self.timed_out:
            return "TIMEOUT"
        return "PASS" if self.passed else "FAIL"

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"{status} {self.config_name}/{self.view} {self.test_name} "
            f"seed={self.seed} cycles={self.cycles} "
            f"cov={self.coverage_percent:.1f}% "
            f"violations={len(self.report.violations)}"
        )


class VerificationEnv:
    """One instantiated testbench around one DUT view.

    Parameters
    ----------
    config:
        The node's HDL parameters.
    view:
        ``"rtl"`` or ``"bca"`` — which model to plug in as DUT.
    bugs:
        Seeded BCA bugs to enable (BCA view only).
    vcd_path:
        If set, dump a VCD of the whole testbench for the bus analyzer.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` bundle; phase spans
        (elaborate/run/finalize) and kernel counters are recorded into
        it.  ``None`` (the default) costs nothing.
    time_processes:
        Opt in to per-process cumulative wall-time accounting in the
        kernel (reported via ``RunResult.process_seconds``).
    kernel:
        Simulation engine: ``"delta"`` (interpreted loop, the default),
        ``"compiled"`` (levelized kernel, byte-identical results), or
        ``"auto"`` (compiled only when the design levelizes with no
        feedback islands).
    """

    def __init__(
        self,
        config: NodeConfig,
        view: str = "rtl",
        bugs=(),
        vcd_path: Optional[str] = None,
        with_arbitration_checker: bool = True,
        telemetry: Optional[Telemetry] = None,
        time_processes: bool = False,
        kernel: str = "delta",
    ):
        if view not in VIEWS:
            raise ValueError(f"view must be one of {VIEWS}")
        if kernel not in KERNELS:
            raise ValueError(f"kernel must be one of {KERNELS}")
        self.kernel = kernel
        if bugs and view != "bca":
            raise ValueError("bug injection applies to the BCA view only")
        self.config = config
        self.view = view
        self.vcd_path = vcd_path
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.sim = Simulator()
        if time_processes:
            self.sim.enable_process_timing()
        self.top = Module(self.sim, "tb")
        self.report = VerificationReport(name=f"{config.name}/{view}")
        if vcd_path:
            self._writer: Optional[VcdWriter] = VcdWriter(vcd_path)
            self.sim.add_tracer(self._writer)
        else:
            self._writer = None

        width = config.data_width_bits
        self.init_ports = [
            StbusPort(self.top, f"init{i}", width)
            for i in range(config.n_initiators)
        ]
        self.targ_ports = [
            StbusPort(self.top, f"targ{t}", width)
            for t in range(config.n_targets)
        ]
        self.prog_port = (
            Type1Port(self.top, "prog") if config.has_programming_port else None
        )

        dut_cls = RtlNode if view == "rtl" else BcaNode
        kwargs = {} if view == "rtl" else {"bugs": bugs}
        self.dut = dut_cls(
            self.sim, "dut", config, self.init_ports, self.targ_ports,
            prog_port=self.prog_port, parent=self.top, **kwargs,
        )

        protocol = config.protocol_type
        self.bfms = [
            InitiatorBfm(self.sim, f"bfm{i}", self.init_ports[i], protocol,
                         parent=self.top)
            for i in range(config.n_initiators)
        ]
        self.targets = [
            TargetHarness(self.sim, f"mem{t}", self.targ_ports[t], protocol,
                          seed=0xC0DE + t, parent=self.top)
            for t in range(config.n_targets)
        ]
        self.prog_master = (
            ProgrammingMaster(self.sim, "prog_master", self.prog_port,
                              parent=self.top)
            if self.prog_port is not None else None
        )

        self.monitors: List[PortMonitor] = []
        self.checkers: List[ProtocolChecker] = []
        for i, port in enumerate(self.init_ports):
            self.monitors.append(
                PortMonitor(self.sim, f"mon_init{i}", port, "initiator", i,
                            parent=self.top)
            )
            self.checkers.append(
                ProtocolChecker(self.sim, f"chk_init{i}", port, "initiator",
                                i, protocol, self.report, parent=self.top)
            )
        for t, port in enumerate(self.targ_ports):
            self.monitors.append(
                PortMonitor(self.sim, f"mon_targ{t}", port, "target", t,
                            parent=self.top)
            )
            self.checkers.append(
                ProtocolChecker(self.sim, f"chk_targ{t}", port, "target",
                                t, protocol, self.report, parent=self.top)
            )

        if self.prog_port is not None:
            self.t1_checker: Type1Checker = Type1Checker(
                self.sim, "chk_prog", self.prog_port, self.report,
                parent=self.top,
            )
        else:
            self.t1_checker = None

        self.scoreboard = Scoreboard(config, self.report)
        self.scoreboard.connect(self.monitors)
        self.coverage = NodeCoverageCollector(config)
        self.coverage.connect(self.monitors)
        self.arb_checker = (
            ArbitrationChecker(
                self.sim, "arb_chk", config, self.init_ports,
                self.targ_ports, self.report, prog_port=self.prog_port,
                parent=self.top,
            )
            if with_arbitration_checker else None
        )
        # Probe hot path: the (req, add) signal pairs and the resolved
        # address map never change after construction, so resolve them
        # once here instead of re-walking ports (and re-materializing the
        # default AddressMap through the property) every cycle.
        self._probe_pairs = [(port.req, port.add) for port in self.init_ports]
        self._probe_map = config.resolved_map
        probe_reads = [sig for pair in self._probe_pairs for sig in pair]
        if self.prog_port is not None:
            probe_reads += [
                self.prog_port.req, self.prog_port.ack, self.prog_port.opc,
            ]
        self.sim.add_clocked(
            self._coverage_probe, name="tb.coverage_probe",
            reads=probe_reads, writes=(),
        )
        self._test: Optional[TestProgram] = None

    # -- per-cycle coverage probe -------------------------------------------

    def _coverage_probe(self) -> None:
        decode = self._probe_map.decode
        requesting: Dict[int, int] = {}
        for req, add in self._probe_pairs:
            if req._value:
                target = decode(add._value)
                if target is not None:
                    requesting[target] = requesting.get(target, 0) + 1
        self.coverage.sample_cycle(requesting)
        if self.prog_port is not None and self.prog_port.fired:
            self.coverage.sample_programming(
                self.prog_port.opc.value == T1_WRITE
            )

    # -- test loading and execution ---------------------------------------------

    def load_test(self, test: TestProgram) -> None:
        if len(test.programs) != self.config.n_initiators:
            raise ValueError("test program count != number of initiators")
        if len(test.target_latencies) != self.config.n_targets:
            raise ValueError("target latency count != number of targets")
        for bfm, program in zip(self.bfms, test.programs):
            bfm.load_program(program)
        jitters = test.target_jitters or [0] * self.config.n_targets
        for harness, latency, jitter in zip(
            self.targets, test.target_latencies, jitters
        ):
            harness.latency = latency
            harness.jitter = jitter
        if test.prog_ops:
            if self.prog_master is None:
                raise ValueError(
                    "test uses the programming port but the configuration "
                    "has none"
                )
            self.prog_master.load_schedule(test.prog_ops)
        self._test = test

    def _drained(self) -> bool:
        if not all(bfm.done for bfm in self.bfms):
            return False
        if self.prog_master is not None and not self.prog_master.done:
            return False
        if any(records for records in self.scoreboard._in_flight.values()):
            return False
        return not any(self.scoreboard._crossing.values())

    def run(self) -> RunResult:
        """Execute the loaded test to completion (or timeout)."""
        if self._test is None:
            raise RuntimeError("load_test() before run()")
        test = self._test
        tele = self.telemetry
        ctx = {"config": self.config.name, "view": self.view,
               "test": test.name, "seed": test.seed}
        started = time.perf_counter()
        with tele.span("elaborate", **ctx):
            self.sim.elaborate()
            if self.kernel != "delta":
                # Imported lazily: the compiled kernel pulls in the
                # static-analysis layer, which itself builds on this
                # package — a top-level import would cycle.
                from ..kernel.compiled import maybe_compile
                maybe_compile(self.sim, self.kernel)
        timed_out = False
        executed = 0
        with tele.span("run", **ctx):
            while executed < test.max_cycles:
                self.sim.step()
                executed += 1
                if self._drained():
                    break
            else:
                timed_out = True
                self.report.error(
                    "TIMEOUT", "env", self.sim.now,
                    f"test did not drain within {test.max_cycles} cycles",
                )
                tele.log.log("run.timeout", max_cycles=test.max_cycles)
            for _ in range(test.drain_cycles):
                self.sim.step()
        with tele.span("finalize", **ctx):
            for checker in self.checkers:
                checker.finalize()
            self.scoreboard.finalize(self.sim.now)
            self.sim.finish()
        wall = time.perf_counter() - started
        kernel_stats = self.sim.stats_snapshot()
        if self._writer is not None:
            kernel_stats["vcd_bytes"] = self._writer.bytes_written
        if tele.enabled:
            tele.registry.inc_many(kernel_stats.items(), prefix="kernel.")
        return RunResult(
            config_name=self.config.name,
            view=self.view,
            test_name=test.name,
            seed=test.seed,
            passed=self.report.passed and not timed_out,
            timed_out=timed_out,
            cycles=self.sim.now,
            wall_seconds=wall,
            report=self.report,
            coverage=self.coverage.model,
            dut_stats=dict(self.dut.stats),
            vcd_path=self.vcd_path,
            kernel_stats=kernel_stats,
            process_seconds={
                name: [calls, seconds]
                for name, (calls, seconds) in self.sim.process_times().items()
            },
        )


def run_test(
    config: NodeConfig,
    test: TestProgram,
    view: str = "rtl",
    bugs=(),
    vcd_path: Optional[str] = None,
    with_arbitration_checker: bool = True,
    telemetry: Optional[Telemetry] = None,
    time_processes: bool = False,
    kernel: str = "delta",
) -> RunResult:
    """Convenience wrapper: build an environment, run one test."""
    env = VerificationEnv(
        config, view=view, bugs=bugs, vcd_path=vcd_path,
        with_arbitration_checker=with_arbitration_checker,
        telemetry=telemetry, time_processes=time_processes,
        kernel=kernel,
    )
    env.load_test(test)
    return env.run()
