"""Verification environment for converter DUTs.

Section 4: CATG is "aimed to test component[s] having STBus interfaces" —
not only the node.  This module instantiates the Fig. 2 architecture
around a size or type converter: BFM upstream, memory harness downstream,
monitors and protocol checkers on both ports (each speaking its own
width/protocol), plus a *transformation-aware* scoreboard that predicts
the downstream packet by repacking the upstream one (and vice versa for
responses), including the converter's tid remapping.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..bca import BcaSizeConverter, BcaTypeConverter
from ..kernel import Module, Simulator
from ..rtl import RtlSizeConverter, RtlTypeConverter
from ..stbus import (
    Opcode,
    OpcodeError,
    ProtocolType,
    StbusPort,
    Transaction,
    all_opcodes,
)
from ..stbus.repack import RepackError, repack_request, repack_response
from .bfm import InitiatorBfm
from .checker import ProtocolChecker
from .coverage import CoverGroup, CoverageModel
from .monitor import ObservedRequest, ObservedResponse, PortMonitor
from .report import VerificationReport
from .target import TargetHarness


def build_bridge_coverage(up_bytes: int, down_bytes: int) -> CoverageModel:
    """Functional coverage space for a converter DUT."""
    up_lens = sorted({
        str(op.request_cells(up_bytes, ProtocolType.T2))
        for op in all_opcodes()
    }, key=int)
    groups = [
        CoverGroup("opcode", [str(op) for op in all_opcodes()]),
        CoverGroup("up_len", up_lens),
        CoverGroup("response", ["ok", "error"]),
        CoverGroup("direction", ["request", "response"]),
    ]
    if up_bytes > 1:
        groups.append(CoverGroup("be", ["full", "partial"]))
    return CoverageModel(groups)


class BridgeScoreboard:
    """Repack-predicting scoreboard across a converter.

    Every upstream request must reappear downstream as its repacked form
    (with the converter's sequentially remapped tid); every downstream
    response must reappear upstream repacked with the original tags.
    """

    def __init__(
        self,
        up_bytes: int,
        down_bytes: int,
        up_protocol: ProtocolType,
        down_protocol: ProtocolType,
        report: VerificationReport,
        name: str = "bridge_sb",
    ):
        self.up_bytes = up_bytes
        self.down_bytes = down_bytes
        self.up_protocol = up_protocol
        self.down_protocol = down_protocol
        self.report = report
        self.name = name
        self._down_tid = 0
        self._expected_down: List[Tuple[int, list]] = []  # (down_tid, cells)
        #: down_tid -> (orig src, orig tid, opcode, address)
        self._forwarded: Dict[int, Tuple[int, int, Opcode, int]] = {}
        #: (src, tid) -> expected upstream response cells
        self._expected_up: Dict[Tuple[int, int], list] = {}
        self.matched_requests = 0
        self.matched_responses = 0

    def _fail(self, rule: str, cycle: int, message: str) -> None:
        self.report.error(rule, self.name, cycle, message)

    def connect(self, up_monitor: PortMonitor,
                down_monitor: PortMonitor) -> None:
        up_monitor.on_request(self.on_up_request)
        down_monitor.on_request(self.on_down_request)
        down_monitor.on_response(self.on_down_response)
        up_monitor.on_response(self.on_up_response)

    # -- request direction ---------------------------------------------------

    def on_up_request(self, obs: ObservedRequest) -> None:
        try:
            predicted = repack_request(
                obs.cells, self.up_bytes, self.down_bytes,
                self.up_protocol, self.down_protocol,
            )
            opcode = Opcode.decode(obs.opc)
        except (RepackError, OpcodeError):
            return  # protocol checkers flag malformed traffic
        down_tid = self._down_tid & 0xFF
        self._down_tid += 1
        for cell in predicted:
            cell.tid = down_tid
        self._expected_down.append((down_tid, predicted))
        self._forwarded[down_tid] = (obs.src, obs.tid, opcode, obs.address)

    def on_down_request(self, obs: ObservedRequest) -> None:
        if not self._expected_down:
            self._fail("SBC_REQ_SPURIOUS", obs.end_cycle,
                       "downstream request with nothing forwarded")
            return
        _, predicted = self._expected_down.pop(0)
        if [c.key_fields() for c in obs.cells] != \
                [c.key_fields() for c in predicted]:
            self._fail(
                "SBC_REQ_TRANSFORM", obs.end_cycle,
                "downstream packet differs from the repacked prediction",
            )
        self.matched_requests += 1

    # -- response direction ----------------------------------------------------

    def on_down_response(self, obs: ObservedResponse) -> None:
        entry = self._forwarded.pop(obs.r_tid, None)
        if entry is None:
            self._fail("SBC_RESP_SPURIOUS", obs.end_cycle,
                       f"downstream response tid={obs.r_tid} matches no "
                       "forwarded request")
            return
        src, tid, opcode, address = entry
        predicted = repack_response(
            obs.cells, opcode, address, self.down_bytes, self.up_bytes,
            self.down_protocol, self.up_protocol,
        )
        for cell in predicted:
            cell.r_src = src
            cell.r_tid = tid
        self._expected_up[(src, tid)] = predicted

    def on_up_response(self, obs: ObservedResponse) -> None:
        predicted = self._expected_up.pop((obs.r_src, obs.r_tid), None)
        if predicted is None:
            self._fail("SBC_RESP_UNEXPECTED", obs.end_cycle,
                       f"upstream response (src={obs.r_src}, "
                       f"tid={obs.r_tid}) was never produced downstream")
            return
        if [c.key_fields() for c in obs.cells] != \
                [c.key_fields() for c in predicted]:
            self._fail(
                "SBC_RESP_TRANSFORM", obs.end_cycle,
                "upstream response differs from the repacked prediction",
            )
        self.matched_responses += 1

    def finalize(self, cycle: int) -> None:
        for down_tid, _ in self._expected_down:
            self._fail("SBC_REQ_LOST", cycle,
                       f"forwarded packet (down tid={down_tid}) never "
                       "reached the downstream port")
        for down_tid in self._forwarded:
            self._fail("SBC_RESP_LOST", cycle,
                       f"no downstream response for down tid={down_tid}")
        for (src, tid) in self._expected_up:
            self._fail("SBC_RESP_STUCK", cycle,
                       f"response (src={src}, tid={tid}) never delivered "
                       "upstream")


@dataclass
class ConverterRunResult:
    """Outcome of one converter verification run."""

    view: str
    kind: str
    passed: bool
    timed_out: bool
    cycles: int
    report: VerificationReport
    coverage: CoverageModel
    wall_seconds: float

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"{status} {self.kind}/{self.view} cycles={self.cycles} "
            f"cov={self.coverage.percent:.1f}% "
            f"violations={len(self.report.violations)}"
        )


class ConverterEnv:
    """Fig. 2 testbench instantiated around a converter DUT."""

    def __init__(
        self,
        kind: str,  # "size" or "type"
        view: str = "rtl",
        up_width: int = 32,
        down_width: int = 8,
        up_protocol: ProtocolType = ProtocolType.T2,
        down_protocol: Optional[ProtocolType] = None,
        target_latency: int = 2,
        target_error_rate: float = 0.0,
        dut_cls=None,
    ):
        if kind not in ("size", "type"):
            raise ValueError("kind must be 'size' or 'type'")
        if view not in ("rtl", "bca"):
            raise ValueError("view must be 'rtl' or 'bca'")
        if kind == "size":
            down_protocol = up_protocol
        elif down_protocol is None:
            down_protocol = ProtocolType.T3 \
                if up_protocol is ProtocolType.T2 else ProtocolType.T2
        if kind == "type":
            down_width = up_width
        self.kind = kind
        self.view = view
        self.sim = Simulator()
        self.top = Module(self.sim, "ctb")
        self.report = VerificationReport(name=f"{kind}conv/{view}")
        self.up_port = StbusPort(self.top, "up", up_width)
        self.down_port = StbusPort(self.top, "down", down_width)
        if dut_cls is None:
            if kind == "size":
                dut_cls = RtlSizeConverter if view == "rtl" \
                    else BcaSizeConverter
            else:
                dut_cls = RtlTypeConverter if view == "rtl" \
                    else BcaTypeConverter
        if kind == "size":
            self.dut = dut_cls(self.sim, "dut", self.up_port, self.down_port,
                               up_protocol, parent=self.top)
        else:
            self.dut = dut_cls(self.sim, "dut", self.up_port, self.down_port,
                               up_protocol, down_protocol, parent=self.top)
        self.bfm = InitiatorBfm(self.sim, "bfm", self.up_port, up_protocol,
                                parent=self.top)
        self.memory = TargetHarness(self.sim, "mem", self.down_port,
                                    down_protocol, latency=target_latency,
                                    seed=0xBEEF,
                                    error_rate=target_error_rate,
                                    parent=self.top)
        self.up_monitor = PortMonitor(self.sim, "mon_up", self.up_port,
                                      "initiator", 0, parent=self.top)
        self.down_monitor = PortMonitor(self.sim, "mon_down", self.down_port,
                                        "target", 0, parent=self.top)
        self.checkers = [
            ProtocolChecker(self.sim, "chk_up", self.up_port, "initiator",
                            0, up_protocol, self.report, parent=self.top),
            ProtocolChecker(self.sim, "chk_down", self.down_port, "target",
                            0, down_protocol, self.report, parent=self.top),
        ]
        self.scoreboard = BridgeScoreboard(
            self.up_port.bus_bytes, self.down_port.bus_bytes,
            up_protocol, down_protocol, self.report,
        )
        self.scoreboard.connect(self.up_monitor, self.down_monitor)
        self.coverage = build_bridge_coverage(
            self.up_port.bus_bytes, self.down_port.bus_bytes
        )
        self.up_monitor.on_request(self._sample_request)
        self.up_monitor.on_response(self._sample_response)

    # -- coverage sampling ------------------------------------------------------

    def _sample_request(self, obs: ObservedRequest) -> None:
        try:
            opcode = Opcode.decode(obs.opc)
        except OpcodeError:
            return
        self.coverage["opcode"].sample(str(opcode))
        self.coverage["up_len"].sample(str(len(obs.cells)))
        self.coverage["direction"].sample("request")
        if "be" in self.coverage.groups:
            full = all(
                cell.be == (1 << self.up_port.bus_bytes) - 1
                for cell in obs.cells
            )
            self.coverage["be"].sample("full" if full else "partial")

    def _sample_response(self, obs: ObservedResponse) -> None:
        self.coverage["direction"].sample("response")
        self.coverage["response"].sample("error" if obs.is_error else "ok")

    # -- running -------------------------------------------------------------------

    def run(self, program: Sequence[Tuple[Transaction, int]],
            max_cycles: int = 10000, drain: int = 20) -> ConverterRunResult:
        started = time.perf_counter()
        self.bfm.load_program(program)
        self.sim.elaborate()
        timed_out = True
        n = len(program)
        for _ in range(max_cycles):
            self.sim.step()
            if self.bfm.done and len(self.bfm.response_packets) >= n:
                timed_out = False
                break
        if timed_out:
            self.report.error("TIMEOUT", "env", self.sim.now,
                              f"run did not drain in {max_cycles} cycles")
        self.sim.run(drain)
        for checker in self.checkers:
            checker.finalize()
        self.scoreboard.finalize(self.sim.now)
        self.sim.finish()
        return ConverterRunResult(
            view=self.view,
            kind=self.kind,
            passed=self.report.passed and not timed_out,
            timed_out=timed_out,
            cycles=self.sim.now,
            report=self.report,
            coverage=self.coverage,
            wall_seconds=time.perf_counter() - started,
        )


def bridge_random_program(
    rng: random.Random,
    n_transactions: int,
    up_bytes: int,
    window: int = 0x1000,
    gap_range: Tuple[int, int] = (0, 2),
) -> List[Tuple[Transaction, int]]:
    """Constrained-random traffic for a converter DUT (single master)."""
    from .sequence import DEFAULT_MIX, _SIZES, pick_kind

    program = []
    for _ in range(n_transactions):
        kind = pick_kind(rng, DEFAULT_MIX)
        size = rng.choice(_SIZES[kind])
        slots = window // size
        address = rng.randrange(slots) * size
        data = rng.randbytes(size) if kind.carries_request_data else b""
        program.append((
            Transaction(Opcode(kind, size), address, data=data,
                        pri=rng.randrange(16)),
            rng.randint(*gap_range),
        ))
    return program
