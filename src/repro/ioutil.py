"""Small filesystem helpers shared across the tool suite.

The fault-tolerance contract of the regression engine is that a killed
worker never leaves a half-written artifact behind that a later
``--resume`` would trust: every report, VCD and telemetry export is
written to a sibling temp file and moved into place with the atomic
:func:`os.replace`.  A reader therefore either sees the complete old
file, the complete new file, or no file at all — never a torn one.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
from typing import IO, Iterator

#: Suffix of the sibling temp file :func:`atomic_write` stages into.
TMP_SUFFIX = ".tmp~"


@contextlib.contextmanager
def atomic_write(path: str, mode: str = "w",
                 encoding: str = "utf-8") -> Iterator[IO]:
    """Open ``path + ".tmp~"`` for writing and :func:`os.replace` it over
    ``path`` on clean exit; on an exception the temp file is removed and
    the final path is left untouched."""
    tmp = path + TMP_SUFFIX
    handle = open(tmp, mode, encoding=encoding)
    try:
        yield handle
    except BaseException:
        handle.close()
        with contextlib.suppress(OSError):
            os.remove(tmp)
        raise
    handle.flush()
    handle.close()
    os.replace(tmp, path)


def file_digest(path: str) -> str:
    """Hex SHA-256 of a file's content (streamed; works on py3.9)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()
