"""Distributed coordinator of the fault-tolerant regression service.

:class:`DistributedBatchExecutor` shards a batch's run/compare/triage
jobs across worker *processes* speaking the framed-JSON protocol of
:mod:`repro.regression.protocol` over loopback TCP.  Workers are
spawned with ``python -m repro.regression.worker`` (the spawn command
is pluggable — :data:`SPAWN_ENV` or ``DistributedConfig.spawn_command``
— which is where remote hosts slot in later).

Ownership of a job is a **lease**: a worker holds at most one job, kept
alive by heartbeats.  A lease whose heartbeats stop (killed worker,
network partition) is reclaimed — the job is charged one attempt and
re-queued under the existing retry/backoff/quarantine policy of
:class:`~repro.regression.resilience.ResilientBatchExecutor`, of which
this class is a subclass: every completion, failure, journal append and
compare/triage hand-off goes through the exact same bookkeeping as the
serial and pool engines.  That is the whole byte-identity argument —
the distributed layer only changes *where* a job runs, never what a
completed batch contains.

Degradation ladder, worst first:

* a worker dies or goes silent → its lease is reclaimed, the job
  retried, the worker respawned (bounded by ``max_respawns``);
* every worker is dead and the respawn budget is spent → the remainder
  of the batch drains through the serial isolated-child path;
* no worker ever connects → one warning line, then the whole batch
  falls back to the local resilient executor.  Never a failure.
"""

from __future__ import annotations

import dataclasses
import heapq
import os
import queue
import shlex
import socket
import subprocess
import sys
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from .protocol import (
    FrameConnection,
    ProtocolError,
    decode_payload,
    encode_payload,
)
from .resilience import _TICK, ResilientBatchExecutor, _Task

#: Environment override for the worker spawn command (shlex syntax);
#: the coordinator appends ``--connect/--token/--worker-id``.
SPAWN_ENV = "REPRO_WORKER_SPAWN"


@dataclass(frozen=True)
class DistributedConfig:
    """Cluster knobs for one distributed batch."""

    #: Worker processes to spawn.
    workers: int = 2
    #: A lease whose worker has been silent this long is reclaimed and
    #: its job re-queued (the worker, presumed gone, is killed).
    lease_seconds: float = 15.0
    #: Heartbeat interval workers are asked to use while busy; must be
    #: comfortably below ``lease_seconds``.
    heartbeat_seconds: float = 0.5
    #: How long to wait for the first worker to dial back before
    #: degrading to the local executor (also the per-worker join
    #: deadline after which an unconnected spawn is reaped).
    spawn_timeout: float = 30.0
    #: Replacement workers allowed over the batch (``None`` → twice the
    #: cluster size).  The budget bounds a crash-looping design.
    max_respawns: Optional[int] = None
    #: Spawn command override (tests swap in broken/instrumented
    #: workers); default is ``python -m repro.regression.worker``.
    spawn_command: Optional[Tuple[str, ...]] = None

    @property
    def respawn_budget(self) -> int:
        if self.max_respawns is not None:
            return self.max_respawns
        return 2 * self.workers


class _Lease:
    """One job currently owned by one worker."""

    __slots__ = ("job_id", "task", "started", "last_beat")

    def __init__(self, job_id: int, task: _Task, now: float) -> None:
        self.job_id = job_id
        self.task = task
        self.started = now
        self.last_beat = now


class _Worker:
    """Coordinator-side state of one worker process."""

    __slots__ = ("ident", "proc", "spawned_at", "conn", "pid", "lease",
                 "dead")

    def __init__(self, ident: str, proc: subprocess.Popen,
                 now: float) -> None:
        self.ident = ident
        self.proc = proc
        self.spawned_at = now
        self.conn: Optional[FrameConnection] = None
        self.pid: Optional[int] = None
        self.lease: Optional[_Lease] = None
        self.dead = False

    @property
    def joined(self) -> bool:
        return self.conn is not None and not self.dead


class DistributedBatchExecutor(ResilientBatchExecutor):
    """Run a regression batch across leased worker processes.

    Everything the base class owns — results, journal, retry budget,
    compare/triage scheduling, the result cache — stays with the
    coordinator; workers are stateless executors.
    """

    def __init__(self, jobs_by_key, *,
                 distributed: Optional[DistributedConfig] = None,
                 **kwargs) -> None:
        super().__init__(jobs_by_key, **kwargs)
        self.distributed = distributed or DistributedConfig()
        self._events: "queue.Queue[tuple]" = queue.Queue()
        self._workers: Dict[str, _Worker] = {}
        self._listener: Optional[socket.socket] = None
        self._token = uuid.uuid4().hex
        self._respawns = 0
        self._job_seq = 0
        self._port: Optional[int] = None

    # -- lifecycle ----------------------------------------------------------

    def execute(self):
        joined = 0
        try:
            joined = self._start_cluster()
        except OSError as exc:
            self.faults.note("cluster.error", error=str(exc))
        if not joined:
            self._teardown_cluster()
            print(
                "regression: no distributed workers reachable; degrading "
                "to the local resilient executor", file=sys.stderr)
            self.faults.degraded_local = True
            self.faults.note("cluster.degraded-local",
                             workers=self.distributed.workers)
            return super().execute()
        try:
            self._execute_distributed()
        finally:
            self._teardown_cluster()
        return (self.results, self.alignments, self.compare_telemetry,
                self.compare_failures, self.triages, self.triage_telemetry,
                self.faults)

    def _start_cluster(self) -> int:
        """Open the listener, spawn the cluster, wait for first contact.

        Returns the number of joined workers — zero means nobody dialed
        back (every spawn exited, or the timeout passed) and the caller
        degrades to local execution."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(self.distributed.workers + 4)
        self._listener = listener
        self._port = listener.getsockname()[1]
        threading.Thread(target=self._accept_loop, daemon=True).start()
        for _ in range(self.distributed.workers):
            self._spawn_worker()
        idle: Deque[_Task] = deque()
        deadline = time.monotonic() + self.distributed.spawn_timeout
        while time.monotonic() < deadline:
            if any(worker.joined for worker in self._workers.values()):
                break
            if (all(worker.proc.poll() is not None
                    for worker in self._workers.values())
                    and self._events.empty()):
                break  # every spawn is already dead; fail fast
            try:
                event = self._events.get(timeout=_TICK)
            except queue.Empty:
                continue
            self._handle_event(event, idle, [], time.monotonic())
        return sum(1 for worker in self._workers.values() if worker.joined)

    def _spawn_command(self) -> Sequence[str]:
        if self.distributed.spawn_command:
            return self.distributed.spawn_command
        text = os.environ.get(SPAWN_ENV)
        if text:
            return shlex.split(text)
        return (sys.executable, "-m", "repro.regression.worker")

    def _spawn_worker(self) -> _Worker:
        ident = f"w{len(self._workers)}"
        command = list(self._spawn_command()) + [
            "--connect", f"127.0.0.1:{self._port}",
            "--token", self._token, "--worker-id", ident,
        ]
        proc = subprocess.Popen(
            command, stdin=subprocess.DEVNULL, stdout=subprocess.DEVNULL)
        worker = _Worker(ident, proc, time.monotonic())
        self._workers[ident] = worker
        return worker

    def _teardown_cluster(self) -> None:
        for worker in self._workers.values():
            if worker.conn is not None:
                try:
                    worker.conn.send({"type": "shutdown"})
                except OSError:
                    pass
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        grace = time.monotonic() + 2.0
        for worker in self._workers.values():
            while (worker.proc.poll() is None
                    and time.monotonic() < grace):
                time.sleep(0.02)
            if worker.proc.poll() is None:
                try:
                    worker.proc.kill()
                except OSError:
                    pass
            try:
                worker.proc.wait(timeout=5)
            except Exception:
                pass
            if worker.conn is not None:
                worker.conn.close()
                worker.conn = None

    # -- connection plumbing (reader threads feed one event queue) ----------

    def _accept_loop(self) -> None:
        # Hold a local reference: teardown nulls the attribute right
        # after closing the socket, and this thread may be mid-accept.
        listener = self._listener
        while True:
            try:
                sock, _ = listener.accept()
            except OSError:
                return  # listener closed: batch is over
            threading.Thread(target=self._serve_connection, args=(sock,),
                             daemon=True).start()

    def _serve_connection(self, sock: socket.socket) -> None:
        conn = FrameConnection(sock)
        try:
            sock.settimeout(10.0)
            hello = conn.recv()
            sock.settimeout(None)
        except (ProtocolError, OSError):
            conn.close()
            return
        if (not hello or hello.get("type") != "hello"
                or hello.get("token") != self._token
                or hello.get("worker_id") not in self._workers):
            conn.close()
            return
        ident = hello["worker_id"]
        self._events.put(("joined", ident, conn, hello.get("pid")))
        while True:
            try:
                frame = conn.recv()
            except ProtocolError:
                # Poisoned connection (e.g. a corrupt result frame):
                # drop the worker rather than guess at the bytes.
                self._events.put(("lost", ident, "protocol-error"))
                return
            except OSError:
                self._events.put(("lost", ident, "closed"))
                return
            if frame is None:
                self._events.put(("lost", ident, "closed"))
                return
            self._events.put(("frame", ident, frame))

    # -- the scheduling loop ------------------------------------------------

    def _execute_distributed(self) -> None:
        ready: Deque[_Task] = deque()
        for key, job in self.jobs_by_key.items():
            if key not in self.results:
                ready.append(_Task("run", key, job))
        for entry_key in self._entry_order:
            for maker in (self._compare_task, self._triage_task):
                task = maker(entry_key)
                if task is not None:
                    ready.append(task)
        backoff: List[Tuple[float, int, _Task]] = []
        while True:
            now = time.monotonic()
            self._reap_unjoined(now)
            self._enforce_leases(ready, backoff, now)
            while backoff and backoff[0][0] <= now:
                ready.append(heapq.heappop(backoff)[2])
            leased = sum(1 for worker in self._workers.values()
                         if not worker.dead and worker.lease is not None)
            if not ready and not backoff and not leased:
                return
            alive = sum(1 for worker in self._workers.values()
                        if not worker.dead)
            if (alive == 0
                    and self._respawns >= self.distributed.respawn_budget):
                self.faults.degraded_serial = True
                self.faults.note(
                    "cluster.exhausted", respawns=self._respawns,
                    detail="every worker is dead and the respawn budget "
                           "is spent; finishing the batch serially in "
                           "isolated child processes")
                self._drain_degraded(ready, backoff)
                return
            self._ensure_capacity(len(ready) + len(backoff) + leased)
            self._dispatch(ready, now)
            try:
                event = self._events.get(timeout=_TICK)
            except queue.Empty:
                continue
            self._handle_event(event, ready, backoff, time.monotonic())
            while True:
                try:
                    event = self._events.get_nowait()
                except queue.Empty:
                    break
                self._handle_event(event, ready, backoff, time.monotonic())

    def _dispatch(self, ready: Deque[_Task], now: float) -> None:
        idle = [worker for worker in self._workers.values()
                if worker.joined and worker.lease is None]
        while ready and idle:
            task = ready.popleft()
            if self._satisfy_from_cache(task, ready):
                continue
            worker = idle.pop()
            job = self._job_for_attempt(task)
            self._job_seq += 1
            worker.lease = _Lease(self._job_seq, task, now)
            try:
                worker.conn.send({
                    "type": "job", "job_id": worker.lease.job_id,
                    "kind": task.kind, "job": encode_payload(job),
                    "heartbeat": self.distributed.heartbeat_seconds,
                })
            except OSError:
                # Never reached the worker: free requeue, no attempt
                # charged; the reader thread will report the loss too,
                # but the worker is dead by then and it is ignored.
                worker.lease = None
                ready.appendleft(task)
                self._mark_dead(worker, "send-failed")

    def _ensure_capacity(self, pending: int) -> None:
        alive = sum(1 for worker in self._workers.values()
                    if not worker.dead)
        want = min(self.distributed.workers, pending)
        while (alive < want
                and self._respawns < self.distributed.respawn_budget):
            worker = self._spawn_worker()
            self._respawns += 1
            self.faults.worker_respawns += 1
            self.faults.note("worker.respawned", worker=worker.ident,
                             respawns=self._respawns,
                             budget=self.distributed.respawn_budget)
            alive += 1

    # -- event handling -----------------------------------------------------

    def _handle_event(self, event: tuple, ready: Deque[_Task],
                      backoff: list, now: float) -> None:
        kind, ident = event[0], event[1]
        worker = self._workers.get(ident)
        if worker is None or worker.dead:
            if kind == "joined":
                event[2].close()  # stale hello from a reaped worker
            return
        if kind == "joined":
            worker.conn = event[2]
            worker.pid = event[3]
            self.faults.note("worker.joined", worker=worker.ident,
                             pid=worker.pid)
            return
        if kind == "lost":
            self._on_worker_lost(worker, event[2], ready, backoff, now)
            return
        frame = event[2]
        frame_type = frame.get("type")
        if frame_type == "heartbeat":
            lease = worker.lease
            if lease is not None and lease.job_id == frame.get("job_id"):
                lease.last_beat = now
        elif frame_type == "result":
            self._on_result(worker, frame, ready, backoff, now)

    def _on_result(self, worker: _Worker, frame: dict,
                   ready: Deque[_Task], backoff: list, now: float) -> None:
        lease = worker.lease
        if lease is None or lease.job_id != frame.get("job_id"):
            # A result for a reclaimed lease (the net-delay case): the
            # job was already re-queued elsewhere, so a late result must
            # be discarded or the batch double-completes.
            self.faults.note("result.stale", worker=worker.ident,
                             job_id=frame.get("job_id"))
            return
        worker.lease = None
        try:
            outcome = decode_payload(frame["outcome"])
        except Exception as exc:
            failure = dataclasses.replace(
                self._pool_crash_failure(lease.task),
                exc_type="UndecodableResult",
                message=f"worker {worker.ident} returned an undecodable "
                        f"result payload: {exc}")
            delay = self._register_failure(lease.task, failure)
            if delay is not None:
                self._push_backoff(backoff, now + delay, lease.task)
            return
        self._handle_outcome(lease.task, outcome, ready, backoff, now)

    def _on_worker_lost(self, worker: _Worker, reason: str,
                        ready: Deque[_Task], backoff: list,
                        now: float) -> None:
        lease, worker.lease = worker.lease, None
        self._mark_dead(worker, reason)
        if lease is None:
            return
        failure = dataclasses.replace(
            self._pool_crash_failure(lease.task), exc_type="WorkerLost",
            message=f"distributed worker {worker.ident} was lost "
                    f"({reason}) while executing this job")
        delay = self._register_failure(lease.task, failure)
        if delay is not None:
            self._push_backoff(backoff, now + delay, lease.task)

    def _mark_dead(self, worker: _Worker, reason: str) -> None:
        if worker.dead:
            return
        worker.dead = True
        if worker.conn is not None:
            worker.conn.close()
            worker.conn = None
        if worker.proc.poll() is None:
            try:
                worker.proc.kill()
            except OSError:
                pass
        self.faults.worker_deaths += 1
        self.faults.note("worker.lost", worker=worker.ident, reason=reason)

    # -- watchdogs ----------------------------------------------------------

    def _reap_unjoined(self, now: float) -> None:
        for worker in self._workers.values():
            if worker.dead or worker.conn is not None:
                continue
            if worker.proc.poll() is not None:
                self._mark_dead(worker, "exited-before-join")
            elif now - worker.spawned_at > self.distributed.spawn_timeout:
                self._mark_dead(worker, "never-joined")

    def _enforce_leases(self, ready: Deque[_Task], backoff: list,
                        now: float) -> None:
        for worker in self._workers.values():
            if worker.dead or worker.lease is None:
                continue
            lease = worker.lease
            timeout = self.config.run_timeout
            if timeout is not None and now - lease.started > timeout:
                worker.lease = None
                delay = self._register_failure(
                    lease.task, self._timeout_failure(lease.task))
                if delay is not None:
                    self._push_backoff(backoff, now + delay, lease.task)
                self._mark_dead(worker, "run-timeout")
                continue
            silent = now - lease.last_beat
            if silent > self.distributed.lease_seconds:
                worker.lease = None
                self.faults.lease_reclaims += 1
                self.faults.note("lease.reclaimed", worker=worker.ident,
                                 silent_seconds=round(silent, 3),
                                 **lease.task.names)
                failure = dataclasses.replace(
                    self._pool_crash_failure(lease.task),
                    exc_type="LeaseExpired",
                    message=f"worker {worker.ident} stopped heartbeating "
                            f"({silent:.1f}s silent); lease reclaimed")
                delay = self._register_failure(lease.task, failure)
                if delay is not None:
                    self._push_backoff(backoff, now + delay, lease.task)
                self._mark_dead(worker, "lease-expired")
