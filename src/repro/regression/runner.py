"""The regression tool (batch mode).

"The regression tool, which is developed internally to run regression
flow, generates and compiles these files. ... It runs regression tests in
batch mode, through generic scripts that are design independent.  For each
test file associated with the test seed, a verification report and a
functional coverage one are generated.  Moreover, an associated VCD file
... is generated so that it can be used later for bus accurate comparison.
... It applies same test cases on both [models] with same seeds.  So that
it can later proceed to alignment comparison activity, if all checkers
passed."

The GUI of the original tool is replaced by this programmatic API (and the
``examples/`` scripts); everything else — same tests, same seeds, both
views, VCD dumps, reports, automatic analyzer invocation — is here.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..analyzer import AlignmentReport, compare_vcds
from ..catg.coverage import CoverageModel, build_node_coverage
from ..catg.env import KERNELS, RunResult
from ..ioutil import atomic_write
from ..stbus import NodeConfig
from ..telemetry import BatchTelemetry, TelemetryConfig
from .resilience import (
    Journal,
    ResilienceConfig,
    ResilientBatchExecutor,
    RunFailure,
    batch_signature,
    replay_journal,
)
from .testcases import TESTCASES

#: Failure-status precedence when an entry carries more than one fault.
_FAULT_PRIORITY = ("QUARANTINED", "TIMEOUT", "ERROR")


@dataclass
class TestEntry:
    """One (config, test, seed): both view runs plus the comparison.

    ``rtl``/``bca`` are normally :class:`~repro.catg.env.RunResult`; when
    the resilience layer absorbed an infrastructure fault (worker crash,
    watchdog timeout, quarantine) the affected view holds a
    :class:`~repro.regression.resilience.RunFailure` instead, and a
    comparison that itself failed is recorded in ``compare_failure``.
    """

    config_name: str
    test_name: str
    seed: int
    rtl: RunResult
    bca: RunResult
    alignment: Optional[AlignmentReport] = None
    compare_failure: Optional[RunFailure] = None
    #: Auto-triage payload (:class:`~repro.triage.TriageReport`) attached
    #: when the entry failed and the batch ran with ``triage=True``.
    triage: Optional[object] = None

    @property
    def both_passed(self) -> bool:
        return self.rtl.passed and self.bca.passed

    @property
    def has_faults(self) -> bool:
        """True when an infrastructure fault (not a checker failure)
        touched this entry."""
        return (
            isinstance(self.rtl, RunFailure)
            or isinstance(self.bca, RunFailure)
            or self.compare_failure is not None
        )

    @property
    def failures(self) -> List[RunFailure]:
        out = [view for view in (self.rtl, self.bca)
               if isinstance(view, RunFailure)]
        if self.compare_failure is not None:
            out.append(self.compare_failure)
        return out

    @property
    def status(self) -> str:
        """``PASS``/``FAIL`` for fault-free entries (checker verdict),
        else the most severe fault status."""
        faults = self.failures
        if not faults:
            return "PASS" if self.both_passed else "FAIL"
        statuses = {failure.status for failure in faults}
        for status in _FAULT_PRIORITY:
            if status in statuses:
                return status
        return "ERROR"

    @property
    def coverage_equal(self) -> bool:
        """The paper's requirement: same tests => equal functional coverage."""
        if isinstance(self.rtl, RunFailure) or isinstance(self.bca, RunFailure):
            return False
        return (
            self.rtl.coverage.hit_signature()
            == self.bca.coverage.hit_signature()
        )

    @staticmethod
    def _view_text(view) -> str:
        if isinstance(view, RunFailure):
            return view.status
        return "ok" if view.passed else "FAIL"

    def summary(self) -> str:
        if not self.has_faults:
            align = (
                f" align={self.alignment.min_rate * 100:.2f}%"
                if self.alignment is not None else ""
            )
            status = "PASS" if self.both_passed else "FAIL"
            return (
                f"{status} {self.config_name} {self.test_name} "
                f"seed={self.seed}"
                f" rtl={'ok' if self.rtl.passed else 'FAIL'}"
                f" bca={'ok' if self.bca.passed else 'FAIL'}"
                f" cov_eq={'yes' if self.coverage_equal else 'NO'}{align}"
            )
        parts = [
            f"{self.status} {self.config_name} {self.test_name} "
            f"seed={self.seed}",
            f"rtl={self._view_text(self.rtl)}",
            f"bca={self._view_text(self.bca)}",
        ]
        if not isinstance(self.rtl, RunFailure) \
                and not isinstance(self.bca, RunFailure):
            parts.append(f"cov_eq={'yes' if self.coverage_equal else 'NO'}")
        if self.compare_failure is not None:
            parts.append(f"align={self.compare_failure.status}")
        elif self.alignment is not None:
            parts.append(f"align={self.alignment.min_rate * 100:.2f}%")
        return " ".join(parts)


@dataclass
class ConfigReport:
    """Regression outcome for one node configuration."""

    config: NodeConfig
    entries: List[TestEntry] = field(default_factory=list)
    rtl_coverage: Optional[CoverageModel] = None
    bca_coverage: Optional[CoverageModel] = None

    @property
    def all_passed(self) -> bool:
        return all(entry.both_passed for entry in self.entries)

    @property
    def full_functional_coverage(self) -> bool:
        return (
            self.rtl_coverage is not None
            and self.rtl_coverage.percent >= 100.0
            and self.bca_coverage is not None
            and self.bca_coverage.percent >= 100.0
        )

    @property
    def min_alignment(self) -> float:
        rates = [
            entry.alignment.min_rate
            for entry in self.entries if entry.alignment is not None
        ]
        return min(rates) if rates else 1.0

    @property
    def has_faults(self) -> bool:
        return any(entry.has_faults for entry in self.entries)

    def quarantined_failures(self) -> List["RunFailure"]:
        return [
            failure
            for entry in self.entries
            for failure in entry.failures
            if failure.quarantined
        ]

    @property
    def signed_off(self) -> bool:
        """The flow's BCA sign-off: everything green, coverage full, every
        port of every run at or above the 99% alignment threshold — and
        no run lost to an infrastructure fault."""
        from ..analyzer import SIGNOFF_THRESHOLD

        return (
            not self.has_faults
            and self.all_passed
            and self.full_functional_coverage
            and self.min_alignment >= SIGNOFF_THRESHOLD
            and all(entry.coverage_equal for entry in self.entries)
        )

    def render(self) -> str:
        lines = [
            f"Configuration {self.config.name}: "
            f"{'SIGNED OFF' if self.signed_off else 'not signed off'}",
            f"  tests: {len(self.entries)}, all passed: {self.all_passed}",
        ]
        if self.rtl_coverage is not None:
            lines.append(
                f"  functional coverage: rtl {self.rtl_coverage.percent:.1f}%"
                f" bca {self.bca_coverage.percent:.1f}%"
            )
        lines.append(f"  min port alignment: {self.min_alignment * 100:.2f}%")
        for entry in self.entries:
            lines.append("  " + entry.summary())
        quarantined = self.quarantined_failures()
        if quarantined:
            lines.append(f"  quarantined: {len(quarantined)} job(s)")
            for failure in quarantined:
                lines.append(
                    f"    {failure.config_name} {failure.test_name} "
                    f"seed={failure.seed} view={failure.view}"
                )
                for item in failure.history:
                    lines.append(f"      {item}")
        triaged = [entry for entry in self.entries
                   if entry.triage is not None]
        if triaged:
            # Present only when failures were auto-triaged; fault-free
            # (and triage-disabled) reports stay byte-identical.
            lines.append("  Triage:")
            for entry in triaged:
                for line in entry.triage.render().rstrip("\n").split("\n"):
                    lines.append("    " + line)
        return "\n".join(lines) + "\n"


@dataclass
class RegressionReport:
    """Whole-regression outcome across all configurations."""

    configs: List[ConfigReport] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def all_signed_off(self) -> bool:
        return all(config.signed_off for config in self.configs)

    @property
    def n_runs(self) -> int:
        return 2 * sum(len(c.entries) for c in self.configs)

    def render(self) -> str:
        # Deliberately excludes wall_seconds: the rendered summary (and
        # the regression_summary.txt artifact) must be byte-identical
        # between serial and parallel runs of the same matrix.
        lines = [
            f"Regression: {len(self.configs)} configurations, "
            f"{self.n_runs} runs",
            f"All signed off: {self.all_signed_off}",
        ]
        for config in self.configs:
            status = "SIGNED OFF" if config.signed_off else "NOT SIGNED OFF"
            lines.append(
                f"  {config.config.name:<48} {status} "
                f"(align {config.min_alignment * 100:6.2f}%, "
                f"cov rtl {config.rtl_coverage.percent:5.1f}% / "
                f"bca {config.bca_coverage.percent:5.1f}%)"
            )
        return "\n".join(lines) + "\n"


class RegressionRunner:
    """Runs the same seeded suite on both views and compares the dumps.

    Parameters
    ----------
    configs:
        Node configurations (e.g. from
        :func:`~repro.regression.configs.load_config_dir` or
        :func:`~repro.regression.configs.configuration_matrix`).
    tests:
        Test-case names (default: all twelve).
    seeds:
        Seeds applied to *every* test on *both* views.
    workdir:
        Where VCDs and text reports go; None disables VCD dumping (and
        therefore alignment comparison).
    bca_bugs:
        Seeded bugs for the BCA view (experiments only).
    jobs:
        Number of worker processes for the batch.  ``1`` (default) runs
        everything serially in this process; ``N > 1`` fans the
        independent (config, test, seed, view) runs — and the
        bus-accurate comparisons behind them — out over a process pool.
        The assembled report and every artifact are byte-identical
        either way.
    telemetry:
        Optional :class:`~repro.telemetry.TelemetryConfig`.  When any of
        its outputs is set, every run records phase spans, kernel
        counters and structured log records, and :meth:`run` exports the
        metrics/trace/log side-channel files.  The report artifacts stay
        byte-identical with or without telemetry.
    resilience:
        Optional :class:`~repro.regression.resilience.ResilienceConfig`
        tuning the fault-tolerance layer (per-run deadline, retry
        budget, checkpoint journal).  The default policy is always
        active — a crashed worker yields an ``ERROR`` entry instead of
        aborting the batch — and a fault-free batch stays byte-identical
        to an unguarded one.
    triage:
        Auto-triage failed entries: after the comparison stage, walk
        both dumps in lockstep to the first diverging (signal, cycle)
        point, rank the processes in its fan-in cone, and emit a
        ``<config>__<test>__s<seed>__triage.json`` minimal repro per
        failure; the per-config report gains a "Triage" section.  A
        fault-free batch never schedules a triage, so its artifacts stay
        byte-identical with the flag on or off.
    workers:
        Distributed worker processes.  ``0`` (default) keeps the batch
        local; ``N > 0`` shards the jobs across N leased loopback
        workers (``python -m repro.regression.worker``), degrading to
        the local executor when none is reachable.  Artifacts are
        byte-identical to a local batch at any worker count.
    cache_dir:
        Root of the content-addressed result cache
        (:class:`~repro.cache.ResultCache`).  ``None`` disables
        caching.  A verified hit replays the run's artifacts byte-
        for-byte without simulating; corrupt entries are quarantined
        and re-executed, never served.
    distributed:
        Optional
        :class:`~repro.regression.distributed.DistributedConfig`
        overriding the cluster knobs (lease/heartbeat/respawn budget);
        implies ``workers`` from its own field when given.
    incremental:
        Key cache entries on cone-scoped semantic fingerprints
        (:class:`~repro.analysis.impact.ImpactIndex`) instead of the
        monolithic design-source hash, so a warm cache survives
        comment-only/formatting edits and edits to processes a design
        does not instantiate; everything a change can affect still
        re-executes (conservative fallbacks, never stale).  Requires
        ``cache_dir``.  Both the populating and the consuming batch
        must run incrementally for the refined keys to match.
    """

    def __init__(
        self,
        configs: Sequence[NodeConfig],
        tests: Optional[Iterable[str]] = None,
        seeds: Sequence[int] = (1,),
        workdir: Optional[str] = None,
        compare_waveforms: bool = True,
        bca_bugs=(),
        with_arbitration_checker: bool = True,
        jobs: int = 1,
        telemetry: Optional[TelemetryConfig] = None,
        resilience: Optional[ResilienceConfig] = None,
        unr: bool = False,
        kernel: str = "delta",
        triage: bool = False,
        workers: int = 0,
        cache_dir: Optional[str] = None,
        distributed=None,
        incremental: bool = False,
    ):
        self.configs = list(configs)
        self.tests = list(tests) if tests is not None else list(TESTCASES)
        unknown = set(self.tests) - set(TESTCASES)
        if unknown:
            raise KeyError(f"unknown test cases: {sorted(unknown)}")
        self.seeds = list(seeds)
        self.workdir = workdir
        self.compare_waveforms = compare_waveforms and workdir is not None
        self.bca_bugs = bca_bugs
        self.with_arbitration_checker = with_arbitration_checker
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.telemetry = (
            telemetry if telemetry is not None else TelemetryConfig()
        )
        self.resilience = (
            resilience if resilience is not None else ResilienceConfig()
        )
        #: Annotate per-config reports with static UNR verdicts.  Off by
        #: default: with it off, every artifact stays byte-identical to a
        #: runner without the feature.
        self.unr = unr
        if kernel not in KERNELS:
            raise ValueError(f"kernel must be one of {KERNELS}")
        #: Simulation engine every run executes under; artifacts are
        #: byte-identical across engines, so it is deliberately excluded
        #: from the resume journal's batch signature.
        self.kernel = kernel
        #: Auto-triage failed entries: walk both dumps to the first
        #: divergence, rank the fan-in cone suspects and write a
        #: ``triage.json`` minimal repro per failure.  Requires the
        #: comparison stage (dumps); excluded from the batch signature —
        #: a journaled batch may be resumed with triage toggled.
        self.triage = triage and self.compare_waveforms
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if distributed is not None:
            workers = distributed.workers
        #: Distributed worker count (0 = local execution).
        self.workers = workers
        self.distributed = distributed
        #: Result-cache root (None = caching disabled).  The
        #: :class:`~repro.cache.ResultCache` itself is created per
        #: :meth:`run` so its hit/miss accounting is per-batch.
        self.cache_dir = cache_dir
        self.cache = None
        if incremental and not cache_dir:
            raise ValueError(
                "incremental regression requires a result cache "
                "(cache_dir)")
        #: Cone-scoped semantic cache keys (see
        #: :mod:`repro.analysis.impact`); the index itself is built per
        #: :meth:`run` so its fingerprints reflect the batch's configs.
        self.incremental = incremental
        self.impact = None
        if workdir:
            os.makedirs(workdir, exist_ok=True)

    # -- paths ---------------------------------------------------------------

    def _vcd_path(self, config: NodeConfig, test: str, seed: int,
                  view: str) -> Optional[str]:
        if not self.workdir:
            return None
        return os.path.join(
            self.workdir, f"{config.name}__{test}__s{seed}__{view}.vcd"
        )

    def _report_stem(self, config: NodeConfig, test: str, seed: int,
                     view: str) -> Optional[str]:
        if not self.workdir:
            return None
        return os.path.join(
            self.workdir, f"{config.name}__{test}__s{seed}__{view}"
        )

    def _triage_path(self, config: NodeConfig, test: str,
                     seed: int) -> Optional[str]:
        if not self.workdir:
            return None
        return os.path.join(
            self.workdir, f"{config.name}__{test}__s{seed}__triage.json"
        )

    def _triage_paths(self) -> Dict[Tuple[int, str, int], str]:
        if not self.triage:
            return {}
        return {
            (ci, test_name, seed): self._triage_path(
                self.configs[ci], test_name, seed)
            for ci, test_name, seed in self._entry_keys()
        }

    # -- execution --------------------------------------------------------------
    #
    # The batch is a flat list of independent (config, test, seed, view)
    # run jobs plus one optional comparison per (config, test, seed).
    # Serial and parallel modes execute the *same* jobs through the same
    # worker function (repro.regression.parallel.execute_run_job); only
    # the scheduling differs.  Assembly back into ConfigReports is a
    # single deterministic code path, so the report text, the coverage
    # merge order and every artifact are byte-identical for any ``jobs``.

    def _make_job(self, config: NodeConfig, test_name: str, seed: int,
                  view: str) -> "RunJob":
        from .parallel import RunJob

        telemetry = self.telemetry.enabled
        return RunJob(
            config=config,
            test_name=test_name,
            seed=seed,
            view=view,
            vcd_path=self._vcd_path(config, test_name, seed, view),
            report_stem=self._report_stem(config, test_name, seed, view),
            bugs=frozenset(self.bca_bugs),
            with_arbitration_checker=self.with_arbitration_checker,
            telemetry=telemetry,
            time_processes=telemetry and self.telemetry.time_processes,
            submitted_at=time.time() if telemetry else None,
            kernel=self.kernel,
        )

    def _entry_keys(self) -> List[Tuple[int, str, int]]:
        """Every (config index, test, seed) in deterministic batch order."""
        return [
            (ci, test_name, seed)
            for ci in range(len(self.configs))
            for test_name in self.tests
            for seed in self.seeds
        ]

    def _build_jobs(self):
        """Every run job of the batch, in deterministic serial order
        (entry by entry, rtl before bca)."""
        return {
            (ci, test_name, seed, view):
                self._make_job(self.configs[ci], test_name, seed, view)
            for ci, test_name, seed in self._entry_keys()
            for view in ("rtl", "bca")
        }

    def _open_journal(self, jobs_by_key, triage_paths, batch):
        """Open/replay the checkpoint journal if one is configured.
        Returns (journal, resumed_results, resumed_alignments,
        resumed_triages, stale)."""
        if not self.resilience.journal_path:
            return None, {}, {}, {}, 0
        journal = Journal(self.resilience.journal_path)
        signature = batch_signature(
            self.configs, self.tests, self.seeds, self.bca_bugs,
            self.compare_waveforms, self.with_arbitration_checker,
        )
        with batch.span("journal.open", resume=self.resilience.resume):
            entries = journal.start(signature, self.resilience.resume)
        if not entries:
            return journal, {}, {}, {}, 0
        with batch.span("journal.replay", entries=len(entries)):
            results, alignments, triages, stale = replay_journal(
                entries, jobs_by_key, triage_paths)
        if not self.triage:
            # Triage was toggled off since the journal was written; its
            # replayed payloads must not resurface in the report.
            triages = {}
        return journal, results, alignments, triages, stale

    def _make_executor(self, jobs_by_key, **kwargs):
        """The resilient executor for this batch: local (serial or
        pool) by default, the leased-worker coordinator when a
        distributed worker count is set."""
        if self.workers > 0:
            from .distributed import (
                DistributedBatchExecutor,
                DistributedConfig,
            )

            cluster = self.distributed or DistributedConfig(
                workers=self.workers)
            return DistributedBatchExecutor(
                jobs_by_key, distributed=cluster, **kwargs)
        return ResilientBatchExecutor(jobs_by_key, **kwargs)

    def _execute(self, batch):
        """Run the whole batch through the resilient executor (serial
        inline for ``jobs=1``, process pool otherwise, leased workers
        when distributed)."""
        jobs_by_key = self._build_jobs()
        triage_paths = self._triage_paths()
        (journal, resumed_results, resumed_alignments, resumed_triages,
         stale) = self._open_journal(jobs_by_key, triage_paths, batch)
        if self.cache_dir:
            from ..cache import ResultCache

            resolver = None
            if self.incremental:
                from ..analysis.impact import ImpactIndex

                with batch.span("impact.index",
                                configs=len(self.configs)):
                    self.impact = ImpactIndex(self.configs)
                resolver = self.impact.resolver()
            self.cache = ResultCache(
                self.cache_dir, design_resolver=resolver)
            if self.impact is not None:
                # The per-design key decisions ride the cache's event
                # stream into the telemetry run log.
                self.cache.events.extend(self.impact.events)
        else:
            self.cache = None
        executor = self._make_executor(
            jobs_by_key,
            jobs=self.jobs,
            compare_waveforms=self.compare_waveforms,
            telemetry=self.telemetry.enabled,
            config=self.resilience,
            journal=journal,
            resumed_results=resumed_results,
            resumed_alignments=resumed_alignments,
            triage=self.triage,
            triage_paths=triage_paths,
            resumed_triages=resumed_triages,
            tracer=batch,
            cache=self.cache,
        )
        executor.faults.resumed_runs = len(resumed_results)
        executor.faults.resumed_compares = len(resumed_alignments)
        executor.faults.resumed_triages = len(resumed_triages)
        executor.faults.stale_journal_entries = stale
        if resumed_results or stale:
            executor.faults.note(
                "journal.replayed", runs=len(resumed_results),
                compares=len(resumed_alignments),
                triages=len(resumed_triages), stale=stale,
            )
        try:
            return executor.execute()
        finally:
            if journal is not None:
                journal.close()

    def _assemble(self, results, alignments, compare_failures=None,
                  triages=None) -> RegressionReport:
        compare_failures = compare_failures or {}
        triages = triages or {}
        report = RegressionReport()
        for ci, config in enumerate(self.configs):
            config_report = ConfigReport(config)
            config_report.rtl_coverage = build_node_coverage(config)
            config_report.bca_coverage = build_node_coverage(config)
            for test_name in self.tests:
                for seed in self.seeds:
                    entry = TestEntry(
                        config.name, test_name, seed,
                        results[(ci, test_name, seed, "rtl")],
                        results[(ci, test_name, seed, "bca")],
                        alignment=alignments.get((ci, test_name, seed)),
                        compare_failure=compare_failures.get(
                            (ci, test_name, seed)),
                        triage=triages.get((ci, test_name, seed)),
                    )
                    config_report.entries.append(entry)
                    if not isinstance(entry.rtl, RunFailure):
                        config_report.rtl_coverage.merge(entry.rtl.coverage)
                    if not isinstance(entry.bca, RunFailure):
                        config_report.bca_coverage.merge(entry.bca.coverage)
            if self.workdir:
                path = os.path.join(
                    self.workdir, f"{config.name}__report.txt"
                )
                with atomic_write(path) as handle:
                    handle.write(config_report.render())
                    handle.write("\n")
                    handle.write(config_report.rtl_coverage.render())
                    if self.unr:
                        handle.write("\n")
                        handle.write(self._unr_annotation(config_report))
            report.configs.append(config_report)
        return report

    @staticmethod
    def _unr_annotation(config_report: ConfigReport) -> str:
        """Static UNR verdicts joined against the run's coverage holes.

        Only written when the runner was built with ``unr=True``; the
        per-config report is byte-identical to a pre-UNR runner
        otherwise.
        """
        from ..analysis.unr import analyze_unreachability

        unr = analyze_unreachability(config_report.config)
        lines = [unr.render().rstrip("\n")]
        holes = config_report.rtl_coverage.holes()
        if holes:
            lines.append("  coverage holes vs static verdicts:")
            for hole in holes:
                group, _, bin_name = hole.partition(":")
                verdict = unr.verdict_for(group, bin_name)
                if verdict is None:
                    lines.append(f"    {hole}: no static verdict")
                else:
                    lines.append(
                        f"    {hole}: {verdict.verdict} — {verdict.reason}"
                    )
        else:
            lines.append(
                "  no coverage holes; every in-model bin was hit"
            )
        return "\n".join(lines) + "\n"

    def run_one(self, config: NodeConfig, test_name: str,
                seed: int) -> TestEntry:
        """One (config, test, seed) on both views + alignment."""
        from .parallel import execute_run_job

        rtl = execute_run_job(self._make_job(config, test_name, seed, "rtl"))
        bca = execute_run_job(self._make_job(config, test_name, seed, "bca"))
        entry = TestEntry(config.name, test_name, seed, rtl, bca)
        rtl_vcd = self._vcd_path(config, test_name, seed, "rtl")
        bca_vcd = self._vcd_path(config, test_name, seed, "bca")
        if self.compare_waveforms and rtl_vcd and bca_vcd:
            entry.alignment = compare_vcds(rtl_vcd, bca_vcd)
        return entry

    def run_config(self, config: NodeConfig) -> ConfigReport:
        """Serial single-configuration run (legacy convenience)."""
        sub = RegressionRunner(
            [config], tests=self.tests, seeds=self.seeds,
            workdir=self.workdir, compare_waveforms=self.compare_waveforms,
            bca_bugs=self.bca_bugs,
            with_arbitration_checker=self.with_arbitration_checker,
            jobs=self.jobs, telemetry=self.telemetry,
            resilience=self.resilience, unr=self.unr,
            kernel=self.kernel, triage=self.triage,
            workers=self.workers, cache_dir=self.cache_dir,
            distributed=self.distributed, incremental=self.incremental,
        )
        return sub.run().configs[0]

    def run(self) -> RegressionReport:
        batch = BatchTelemetry(self.telemetry, jobs=self.jobs)
        with batch.span("batch.execute", jobs=self.jobs):
            (results, alignments, compare_telemetry, compare_failures,
             triages, triage_telemetry, faults) = self._execute(batch)
        with batch.span("batch.assemble"):
            report = self._assemble(results, alignments, compare_failures,
                                    triages)
        report.wall_seconds = batch.stop()
        if self.workdir:
            path = os.path.join(self.workdir, "regression_summary.txt")
            with atomic_write(path) as handle:
                handle.write(report.render())
        batch.export(
            report=report, results=results, alignments=alignments,
            compare_telemetry=compare_telemetry, configs=self.configs,
            tests=self.tests, seeds=self.seeds, faults=faults,
            triages=triages, triage_telemetry=triage_telemetry,
            cache=self.cache, impact=self.impact,
        )
        return report
