"""Configuration handling for the regression tool.

"Since Node has many configurations, regression tool can load text files
defining HDL parameters of each of them.  It's sufficient to indicate the
directory to which the tool has to point."  And: "More than 36
configurations of the Node have been tested."

:func:`load_config_dir` reads ``*.cfg`` files;
:func:`configuration_matrix` generates the 36+ configuration sweep used by
experiment E1.
"""

from __future__ import annotations

import os
from typing import List, Optional

from ..stbus import (
    Architecture,
    ArbitrationPolicy,
    ConfigError,
    NodeConfig,
    ProtocolType,
)


def load_config_dir(path: str) -> List[NodeConfig]:
    """Parse every ``*.cfg`` file in ``path`` (sorted by file name)."""
    if not os.path.isdir(path):
        raise ConfigError(f"{path!r} is not a directory")
    configs = []
    for entry in sorted(os.listdir(path)):
        if not entry.endswith(".cfg"):
            continue
        full = os.path.join(path, entry)
        with open(full, "r", encoding="utf-8") as handle:
            config = NodeConfig.from_text(handle.read())
        if config.name == "node":  # default: take it from the file name
            config.name = os.path.splitext(entry)[0]
        configs.append(config)
    if not configs:
        raise ConfigError(f"no *.cfg files found in {path!r}")
    return configs


def save_config_dir(configs: List[NodeConfig], path: str) -> None:
    """Write one ``<name>.cfg`` per configuration (the tool's format)."""
    os.makedirs(path, exist_ok=True)
    for config in configs:
        with open(os.path.join(path, f"{config.name}.cfg"), "w",
                  encoding="utf-8") as handle:
            handle.write(config.to_text())


def _full_connectivity_minus_one(n_init: int, n_targ: int) -> frozenset:
    """A partial-crossbar pattern: all paths except (last init, first targ)."""
    paths = {
        (i, t) for i in range(n_init) for t in range(n_targ)
        if not (i == n_init - 1 and t == 0)
    }
    return frozenset(paths)


def configuration_matrix(small: bool = False) -> List[NodeConfig]:
    """The >36-configuration sweep of Section 5.

    Covers both protocol types, port-count shapes up to 8x4, data widths
    32..128, all three architectures and all six arbitration policies.
    ``small=True`` returns a reduced (but still representative) subset for
    quick smoke runs.
    """
    configs: List[NodeConfig] = []

    def add(**kwargs) -> None:
        index = len(configs)
        arch = kwargs.get("architecture", Architecture.FULL_CROSSBAR)
        if arch is Architecture.PARTIAL_CROSSBAR and "connectivity" not in kwargs:
            kwargs["connectivity"] = _full_connectivity_minus_one(
                kwargs.get("n_initiators", 2), kwargs.get("n_targets", 2)
            )
        name = (
            f"cfg{index:02d}_t{kwargs.get('protocol_type', ProtocolType.T2).value}"
            f"_{kwargs.get('n_initiators', 2)}x{kwargs.get('n_targets', 2)}"
            f"_w{kwargs.get('data_width_bits', 32)}"
            f"_{arch.value.split('_')[0]}"
            f"_{kwargs.get('arbitration', ArbitrationPolicy.FIXED_PRIORITY).value}"
        )
        configs.append(NodeConfig(name=name, **kwargs))

    protocols = [ProtocolType.T2, ProtocolType.T3]
    # 1. Arbitration sweep: every policy under both protocols (12).
    for protocol in protocols:
        for policy in ArbitrationPolicy:
            add(protocol_type=protocol, n_initiators=3, n_targets=2,
                arbitration=policy,
                has_programming_port=policy in (
                    ArbitrationPolicy.PROGRAMMABLE_PRIORITY,
                    ArbitrationPolicy.LATENCY_BASED,
                ))
    # 2. Architecture sweep (6).
    for protocol in protocols:
        for arch in Architecture:
            add(protocol_type=protocol, n_initiators=2, n_targets=2,
                architecture=arch,
                arbitration=ArbitrationPolicy.ROUND_ROBIN)
    # 3. Data width sweep (8).
    for protocol in protocols:
        for width in (8, 32, 64, 128):
            add(protocol_type=protocol, n_initiators=2, n_targets=2,
                data_width_bits=width)
    # 4. Port-count shapes (8).
    for protocol in protocols:
        for n_init, n_targ in ((1, 1), (4, 2), (2, 4), (8, 4)):
            add(protocol_type=protocol, n_initiators=n_init,
                n_targets=n_targ, arbitration=ArbitrationPolicy.LRU)
    # 5. Pipe depth / outstanding credit variants (4).
    for protocol in protocols:
        add(protocol_type=protocol, n_initiators=2, n_targets=2,
            pipe_depth=3)
        add(protocol_type=protocol, n_initiators=2, n_targets=2,
            max_outstanding=1)
    if small:
        return configs[:8]
    return configs
