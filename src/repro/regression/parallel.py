"""Parallel batch execution for the regression tool.

The paper's regression tool "runs regression tests in batch mode" across
many node configurations and seeds; every (config, test, seed, view) run
is independent of every other — the test factories are deterministic in
(config, seed), both views rebuild the test from scratch, and each run
owns its VCD/report files.  That makes the batch embarrassingly
parallel: this module fans the runs out over a process pool and the
bus-accurate comparisons out behind them, while the
:class:`~repro.regression.runner.RegressionRunner` assembles the results
in the same deterministic order as a serial run — so the final
:class:`~repro.regression.runner.RegressionReport` (entry order,
coverage merge, sign-off verdict, rendered text) is byte-identical for
``jobs=1`` and ``jobs=N``.

Everything that crosses the process boundary is a plain picklable value:
a :class:`RunJob` in, a :class:`~repro.catg.env.RunResult` (or
:class:`~repro.analyzer.AlignmentReport`) out.  Workers rebuild the test
program locally instead of shipping it, exactly as the serial path does.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from ..analyzer import AlignmentReport, compare_vcds
from ..catg.env import RunResult, run_test
from ..stbus import NodeConfig
from .testcases import build_test

#: (config index, test name, seed) — one regression entry (both views).
EntryKey = Tuple[int, str, int]
#: EntryKey plus the view — one simulation run.
RunKey = Tuple[int, str, int, str]


@dataclass(frozen=True)
class RunJob:
    """One simulation run, fully described by picklable values."""

    config: NodeConfig
    test_name: str
    seed: int
    view: str
    vcd_path: Optional[str]
    report_stem: Optional[str]
    bugs: FrozenSet[str]
    with_arbitration_checker: bool


def write_run_reports(stem: str, result: RunResult) -> None:
    """Per-(test, seed) artifacts: "a verification report and a
    functional coverage one are generated" (Section 4)."""
    with open(stem + ".report.txt", "w", encoding="utf-8") as handle:
        handle.write(result.report.render())
    with open(stem + ".coverage.txt", "w", encoding="utf-8") as handle:
        handle.write(result.coverage.render())


def execute_run_job(job: RunJob) -> RunResult:
    """Run one (config, test, seed, view); artifact files land where the
    serial path puts them.  Runs in a worker process under ``jobs=N`` and
    inline under ``jobs=1`` — identical code either way."""
    test = build_test(job.test_name, job.config, job.seed)
    result = run_test(
        job.config, test, view=job.view,
        bugs=job.bugs if job.view == "bca" else (),
        vcd_path=job.vcd_path,
        with_arbitration_checker=job.with_arbitration_checker,
    )
    if job.report_stem:
        write_run_reports(job.report_stem, result)
    return result


def execute_batch(
    jobs_by_key: Dict[RunKey, RunJob],
    *,
    jobs: int,
    compare_waveforms: bool,
) -> Tuple[Dict[RunKey, RunResult], Dict[EntryKey, AlignmentReport]]:
    """Execute every run job over ``jobs`` worker processes.

    As soon as both views of an entry finish, its bus-accurate comparison
    is submitted to the same pool, so comparisons overlap with the
    remaining simulations instead of waiting behind a barrier.
    """
    results: Dict[RunKey, RunResult] = {}
    alignments: Dict[EntryKey, AlignmentReport] = {}
    vcd_paths: Dict[RunKey, Optional[str]] = {
        key: job.vcd_path for key, job in jobs_by_key.items()
    }
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        future_runs = {
            pool.submit(execute_run_job, job): key
            for key, job in jobs_by_key.items()
        }
        future_compares = {}
        done_views: Dict[EntryKey, set] = {}
        pending = set(future_runs)
        while pending:
            finished, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in finished:
                key = future_runs[future]
                results[key] = future.result()
                entry_key = key[:3]
                views = done_views.setdefault(entry_key, set())
                views.add(key[3])
                if views == {"rtl", "bca"} and compare_waveforms:
                    rtl_vcd = vcd_paths[entry_key + ("rtl",)]
                    bca_vcd = vcd_paths[entry_key + ("bca",)]
                    if rtl_vcd and bca_vcd:
                        future_compares[entry_key] = pool.submit(
                            compare_vcds, rtl_vcd, bca_vcd
                        )
        for entry_key, future in future_compares.items():
            alignments[entry_key] = future.result()
    return results, alignments


def default_jobs() -> int:
    """A sensible ``--jobs`` default for "use the machine": one worker
    per available CPU (respecting affinity masks under cgroups/taskset)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1
