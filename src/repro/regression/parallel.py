"""Parallel batch execution for the regression tool.

The paper's regression tool "runs regression tests in batch mode" across
many node configurations and seeds; every (config, test, seed, view) run
is independent of every other — the test factories are deterministic in
(config, seed), both views rebuild the test from scratch, and each run
owns its VCD/report files.  That makes the batch embarrassingly
parallel: this module fans the runs out over a process pool and the
bus-accurate comparisons out behind them, while the
:class:`~repro.regression.runner.RegressionRunner` assembles the results
in the same deterministic order as a serial run — so the final
:class:`~repro.regression.runner.RegressionReport` (entry order,
coverage merge, sign-off verdict, rendered text) is byte-identical for
``jobs=1`` and ``jobs=N``.

Everything that crosses the process boundary is a plain picklable value:
a :class:`RunJob` in, a :class:`~repro.catg.env.RunResult` (or
:class:`~repro.analyzer.AlignmentReport`) out.  Workers rebuild the test
program locally instead of shipping it, exactly as the serial path does.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from ..analyzer import AlignmentReport, compare_vcds
from ..catg.env import RunResult, run_test
from ..ioutil import atomic_write
from ..stbus import NodeConfig
from ..telemetry import RunRecorder, RunTelemetry
from .testcases import build_test

#: (config index, test name, seed) — one regression entry (both views).
EntryKey = Tuple[int, str, int]
#: EntryKey plus the view — one simulation run.
RunKey = Tuple[int, str, int, str]


@dataclass(frozen=True)
class RunJob:
    """One simulation run, fully described by picklable values."""

    config: NodeConfig
    test_name: str
    seed: int
    view: str
    vcd_path: Optional[str]
    report_stem: Optional[str]
    bugs: FrozenSet[str]
    with_arbitration_checker: bool
    #: Record per-run telemetry (spans, kernel counters, structured log
    #: records) and attach it to the returned RunResult.
    telemetry: bool = False
    #: Also enable kernel per-process wall-time accounting.
    time_processes: bool = False
    #: Wall-clock (epoch) submission time; queue wait = start - submit.
    submitted_at: Optional[float] = None
    #: Which execution attempt this is (0 = first try); the resilience
    #: layer bumps it on retries and the chaos hooks key off it.
    attempt: int = 0
    #: Simulation engine ("delta" | "compiled" | "auto").  Excluded from
    #: the batch signature: the compiled kernel's contract is
    #: byte-identical artifacts, so a journaled batch may be resumed
    #: under a different engine.
    kernel: str = "delta"


@dataclass(frozen=True)
class CompareJob:
    """One bus-accurate comparison, fully described by picklable values."""

    rtl_vcd: str
    bca_vcd: str
    config_name: str
    test_name: str
    seed: int
    telemetry: bool = False
    submitted_at: Optional[float] = None
    attempt: int = 0


@dataclass(frozen=True)
class TriageJob:
    """One failure triage, fully described by picklable values.

    Scheduled only for entries that failed (checkers or alignment); the
    worker walks both dumps to the first divergence, ranks the fan-in
    cone suspects and writes the ``triage.json`` minimal-repro artifact.
    """

    config: NodeConfig
    test_name: str
    seed: int
    rtl_vcd: str
    bca_vcd: str
    out_path: Optional[str]
    bugs: FrozenSet[str]
    reason: str
    telemetry: bool = False
    submitted_at: Optional[float] = None
    attempt: int = 0


def write_run_reports(stem: str, result: RunResult) -> None:
    """Per-(test, seed) artifacts: "a verification report and a
    functional coverage one are generated" (Section 4).  Written
    atomically so a worker killed mid-write never leaves a torn report
    a later ``--resume`` would trust."""
    with atomic_write(stem + ".report.txt") as handle:
        handle.write(result.report.render())
    with atomic_write(stem + ".coverage.txt") as handle:
        handle.write(result.coverage.render())


def execute_run_job(job: RunJob) -> RunResult:
    """Run one (config, test, seed, view); artifact files land where the
    serial path puts them.  Runs in a worker process under ``jobs=N`` and
    inline under ``jobs=1`` — identical code either way.

    With ``job.telemetry`` a :class:`~repro.telemetry.RunRecorder` built
    in *this* process (a pool worker or the parent) records phase spans,
    kernel counters and structured log records; the picklable payload
    rides back on ``result.telemetry``.  Artifact bytes are identical
    either way.
    """
    if not job.telemetry:
        test = build_test(job.test_name, job.config, job.seed)
        result = run_test(
            job.config, test, view=job.view,
            bugs=job.bugs if job.view == "bca" else (),
            vcd_path=job.vcd_path,
            with_arbitration_checker=job.with_arbitration_checker,
            kernel=job.kernel,
        )
        if job.report_stem:
            write_run_reports(job.report_stem, result)
        return result
    recorder = RunRecorder(
        {"config": job.config.name, "test": job.test_name,
         "seed": job.seed, "view": job.view},
        submitted_at=job.submitted_at,
    )
    ctx = recorder.context
    with recorder.span("generate", **ctx):
        test = build_test(job.test_name, job.config, job.seed)
    result = run_test(
        job.config, test, view=job.view,
        bugs=job.bugs if job.view == "bca" else (),
        vcd_path=job.vcd_path,
        with_arbitration_checker=job.with_arbitration_checker,
        telemetry=recorder.telemetry,
        time_processes=job.time_processes,
        kernel=job.kernel,
    )
    if job.report_stem:
        with recorder.span("report", **ctx):
            write_run_reports(job.report_stem, result)
    recorder.telemetry.log.log(
        "run.complete",
        passed=result.passed,
        timed_out=result.timed_out,
        cycles=result.cycles,
        wall_seconds=round(result.wall_seconds, 6),
        violations=len(result.report.violations),
    )
    result.telemetry = recorder.payload()
    return result


def execute_compare_job(
    job: CompareJob,
) -> Tuple[AlignmentReport, Optional[RunTelemetry]]:
    """Run one bus-accurate comparison, optionally recording telemetry."""
    if not job.telemetry:
        return compare_vcds(job.rtl_vcd, job.bca_vcd), None
    recorder = RunRecorder(
        {"config": job.config_name, "test": job.test_name,
         "seed": job.seed, "view": "compare"},
        submitted_at=job.submitted_at,
    )
    with recorder.span("compare", **recorder.context):
        report = compare_vcds(
            job.rtl_vcd, job.bca_vcd, telemetry=recorder.telemetry)
    recorder.telemetry.log.log(
        "compare.complete",
        min_rate=round(report.min_rate, 6),
        overall_rate=round(report.overall_rate, 6),
        signed_off=report.signed_off,
        cycles=report.total_cycles,
    )
    return report, recorder.payload()


def execute_triage_job(job: TriageJob) -> Tuple[
    "TriageReport", Optional[RunTelemetry]
]:
    """Triage one failed entry, optionally recording telemetry.

    The triage span, the ``triage.first_divergence_cycle`` /
    ``triage.suspect_count`` counters and the ``triage.complete`` log
    record ride back on the picklable telemetry payload.
    """
    from ..triage import triage_entry

    if not job.telemetry:
        report = triage_entry(
            job.config, job.test_name, job.seed,
            job.rtl_vcd, job.bca_vcd,
            bugs=job.bugs, reason=job.reason, out_path=job.out_path,
        )
        return report, None
    recorder = RunRecorder(
        {"config": job.config.name, "test": job.test_name,
         "seed": job.seed, "view": "triage"},
        submitted_at=job.submitted_at,
    )
    with recorder.span("triage", **recorder.context):
        report = triage_entry(
            job.config, job.test_name, job.seed,
            job.rtl_vcd, job.bca_vcd,
            bugs=job.bugs, reason=job.reason, out_path=job.out_path,
            telemetry=recorder.telemetry,
        )
    return report, recorder.payload()


def execute_batch(
    jobs_by_key: Dict[RunKey, RunJob],
    *,
    jobs: int,
    compare_waveforms: bool,
    telemetry: bool = False,
) -> Tuple[
    Dict[RunKey, RunResult],
    Dict[EntryKey, AlignmentReport],
    Dict[EntryKey, RunTelemetry],
]:
    """Execute every run job over ``jobs`` worker processes.

    As soon as both views of an entry finish, its bus-accurate comparison
    is submitted to the same pool, so comparisons overlap with the
    remaining simulations instead of waiting behind a barrier.

    Compatibility wrapper over
    :class:`~repro.regression.resilience.ResilientBatchExecutor` (with
    the default fault-tolerance policy): a fault-free batch returns
    byte-identical results to the historical unguarded pool, while a
    crashed worker or broken pool now yields
    :class:`~repro.regression.resilience.RunFailure` values in
    ``results`` instead of aborting the whole batch.

    Returns the run results, the alignment reports, and (when
    ``telemetry``) the per-comparison telemetry payloads.
    """
    from .resilience import ResilientBatchExecutor

    executor = ResilientBatchExecutor(
        jobs_by_key, jobs=jobs, compare_waveforms=compare_waveforms,
        telemetry=telemetry,
    )
    results, alignments, compare_telemetry = executor.execute()[:3]
    return results, alignments, compare_telemetry


def default_jobs() -> int:
    """A sensible ``--jobs`` default for "use the machine": one worker
    per available CPU (respecting affinity masks under cgroups/taskset)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1
