"""The twelve generic node test cases.

Section 5: "Twelve test cases have been developed to cover the tests of
all main features of the node such as out of order traffic or latency
based arbitration.  They allow initiators to generate semi-random traffic.
... The test cases are generic and depend on some HDL parameters.  They
can be reused for all configurations of the Node."

Each test case is a factory ``(config, seed) -> TestProgram``.  The same
program (same seed) is applied to the RTL and the BCA view; the regression
tool then compares the VCDs.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Tuple

from ..catg.sequence import (
    ProgOp,
    TestProgram,
    directed_write_read_pairs,
    random_program,
    random_transaction,
)
from ..stbus import NodeConfig, OpKind, Opcode, Transaction

TestFactory = Callable[[NodeConfig, int], TestProgram]

#: Baseline transactions per initiator (scaled down for very wide configs
#: to keep regression wall-clock bounded).
def _txn_budget(config: NodeConfig, base: int = 12) -> int:
    ports = config.n_initiators + config.n_targets
    if ports > 16:
        return max(4, base // 3)
    if ports > 8:
        return max(6, base // 2)
    if ports <= 2:
        # A lone initiator needs a longer program to reach every random
        # coverage bin on its own.
        return base * 2
    return base


def _flat_latencies(config: NodeConfig, latency: int = 2) -> List[int]:
    return [latency] * config.n_targets

def _spread_latencies(config: NodeConfig, step: int = 8) -> List[int]:
    """Targets of very different speeds (provokes out-of-order traffic)."""
    return [1 + step * t for t in range(config.n_targets)]


def t01_sanity_write_read(config: NodeConfig, seed: int) -> TestProgram:
    """Directed write-then-read pairs from every initiator to every
    reachable target — the bring-up test."""
    programs = []
    for i in range(config.n_initiators):
        program: List[Tuple[Transaction, int]] = []
        for target in config.reachable_targets(i):
            program.extend(
                directed_write_read_pairs(config, i, target, n_pairs=2,
                                          size=min(4, config.bus_bytes * 2),
                                          pattern=seed + i)
            )
        programs.append(program)
    return TestProgram("t01_sanity_write_read", seed, programs,
                       _flat_latencies(config))


def t02_random_uniform(config: NodeConfig, seed: int) -> TestProgram:
    """Uniform constrained-random mix across all initiators and targets."""
    rng = random.Random(seed)
    n = _txn_budget(config, 16)
    programs = [
        random_program(config, rng, i, n, gap_range=(0, 3))
        for i in range(config.n_initiators)
    ]
    return TestProgram("t02_random_uniform", seed, programs,
                       _flat_latencies(config))


def t03_out_of_order(config: NodeConfig, seed: int) -> TestProgram:
    """Short transactions to targets of different speed: forces responses
    out of order for Type III (and proves Type II keeps order)."""
    rng = random.Random(seed)
    n = _txn_budget(config, 14)
    programs = []
    for i in range(config.n_initiators):
        programs.append(
            random_program(
                config, rng, i, n, gap_range=(0, 1),
                mix=((OpKind.LOAD, 4), (OpKind.STORE, 1)), max_size=4,
            )
        )
    return TestProgram("t03_out_of_order", seed, programs,
                       _spread_latencies(config))


def t04_latency_arbitration(config: NodeConfig, seed: int) -> TestProgram:
    """Sustained contention on the first reachable target so latency
    budgets (latency-based arbitration) decide the winners."""
    rng = random.Random(seed)
    n = _txn_budget(config, 12)
    programs = []
    for i in range(config.n_initiators):
        reachable = config.reachable_targets(i)
        hot = [reachable[0]] if reachable else []
        programs.append(
            random_program(config, rng, i, n, gap_range=(0, 0),
                           targets=hot, max_size=8)
        )
    return TestProgram("t04_latency_arbitration", seed, programs,
                       _flat_latencies(config, 1))


def t05_bandwidth_limits(config: NodeConfig, seed: int) -> TestProgram:
    """Bus saturation: every initiator streams stores with no gaps so
    bandwidth allocations bite."""
    rng = random.Random(seed)
    n = _txn_budget(config, 12)
    programs = []
    for i in range(config.n_initiators):
        reachable = config.reachable_targets(i)
        hot = [reachable[i % len(reachable)]] if reachable else []
        programs.append(
            random_program(config, rng, i, n, gap_range=(0, 0),
                           targets=hot,
                           mix=((OpKind.STORE, 1),), max_size=16)
        )
    return TestProgram("t05_bandwidth_limits", seed, programs,
                       _flat_latencies(config, 1))


def t06_lru_fairness(config: NodeConfig, seed: int) -> TestProgram:
    """Multi-cell packets contending for one target: exactly the traffic
    where LRU recency bookkeeping (grant vs packet end) matters."""
    rng = random.Random(seed)
    n = _txn_budget(config, 10)
    programs = []
    for i in range(config.n_initiators):
        reachable = config.reachable_targets(i)
        hot = [reachable[0]] if reachable else []
        programs.append(
            random_program(
                config, rng, i, n, gap_range=(0, 1), targets=hot,
                mix=((OpKind.STORE, 3), (OpKind.LOAD, 1)), max_size=32,
            )
        )
    return TestProgram("t06_lru_fairness", seed, programs,
                       _flat_latencies(config))


def t07_priority_reprogramming(config: NodeConfig, seed: int) -> TestProgram:
    """Contention while the programming port rewrites arbitration
    parameters mid-test."""
    rng = random.Random(seed)
    n = _txn_budget(config, 14)
    programs = []
    for i in range(config.n_initiators):
        reachable = config.reachable_targets(i)
        hot = [reachable[0]] if reachable else []
        programs.append(
            random_program(config, rng, i, n, gap_range=(0, 1),
                           targets=hot, max_size=8)
        )
    prog_ops: List[ProgOp] = []
    if config.has_programming_port:
        for round_idx in range(3):
            for i in range(config.n_initiators):
                prog_ops.append(
                    ProgOp(cycle=40 + 60 * round_idx + 2 * i, index=i,
                           value=rng.randrange(1, 64))
                )
        prog_ops.append(ProgOp(cycle=30, index=0, value=0, is_write=False))
    return TestProgram("t07_priority_reprogramming", seed, programs,
                       _flat_latencies(config), prog_ops=prog_ops)


def t08_locked_chunks(config: NodeConfig, seed: int) -> TestProgram:
    """Chunked streams: pairs of packets glued with lck so the slave must
    stay allocated to one initiator."""
    rng = random.Random(seed)
    n_chunks = max(3, _txn_budget(config, 6) // 2)
    programs = []
    for i in range(config.n_initiators):
        program: List[Tuple[Transaction, int]] = []
        reachable = config.reachable_targets(i)
        for k in range(n_chunks):
            target = reachable[k % len(reachable)]
            first = random_transaction(
                config, rng, i, targets=[target],
                mix=((OpKind.STORE, 1),), max_size=8,
            )
            first.lck = 1
            second = random_transaction(
                config, rng, i, targets=[target],
                mix=((OpKind.LOAD, 1), (OpKind.STORE, 1)), max_size=8,
            )
            program.append((first, rng.randint(0, 2)))
            program.append((second, rng.randint(0, 1)))
        programs.append(program)
    return TestProgram("t08_locked_chunks", seed, programs,
                       _flat_latencies(config))


def t09_mixed_sizes(config: NodeConfig, seed: int) -> TestProgram:
    """Sub-word and multi-cell operations mixed: exercises byte-enable
    lanes and burst geometry (where the size-conversion style bugs live)."""
    rng = random.Random(seed)
    n = _txn_budget(config, 16)
    programs = []
    for i in range(config.n_initiators):
        programs.append(
            random_program(
                config, rng, i, n, gap_range=(0, 2),
                mix=((OpKind.STORE, 3), (OpKind.LOAD, 3), (OpKind.RMW, 1)),
            )
        )
    return TestProgram("t09_mixed_sizes", seed, programs,
                       _flat_latencies(config))


def t10_hotspot(config: NodeConfig, seed: int) -> TestProgram:
    """Every initiator hammers the same target back to back."""
    rng = random.Random(seed)
    n = _txn_budget(config, 12)
    programs = []
    for i in range(config.n_initiators):
        reachable = config.reachable_targets(i)
        hot = [reachable[0]] if reachable else []
        programs.append(
            random_program(config, rng, i, n, gap_range=(0, 0),
                           targets=hot, max_size=4)
        )
    return TestProgram("t10_hotspot", seed, programs,
                       _flat_latencies(config, 3))


def t11_outstanding(config: NodeConfig, seed: int) -> TestProgram:
    """Split-transaction pipelining up to the outstanding credit."""
    rng = random.Random(seed)
    n = _txn_budget(config, 16)
    programs = []
    for i in range(config.n_initiators):
        targets = config.reachable_targets(i)
        pool = targets if config.protocol_type.supports_out_of_order \
            else [targets[i % len(targets)]]
        programs.append(
            random_program(
                config, rng, i, n, gap_range=(0, 0), targets=pool,
                mix=((OpKind.LOAD, 1),), max_size=4,
            )
        )
    return TestProgram("t11_outstanding", seed, programs,
                       _flat_latencies(config, 6))


def t12_decode_errors(config: NodeConfig, seed: int) -> TestProgram:
    """Valid traffic interleaved with addresses outside the decoded map:
    the node's error engine must answer every one of them."""
    rng = random.Random(seed)
    n = _txn_budget(config, 14)
    programs = [
        random_program(config, rng, i, n, gap_range=(0, 2),
                       error_probability=0.3, max_size=8)
        for i in range(config.n_initiators)
    ]
    return TestProgram("t12_decode_errors", seed, programs,
                       _flat_latencies(config))


#: The regression suite, in execution order.
TESTCASES: Dict[str, TestFactory] = {
    "t01_sanity_write_read": t01_sanity_write_read,
    "t02_random_uniform": t02_random_uniform,
    "t03_out_of_order": t03_out_of_order,
    "t04_latency_arbitration": t04_latency_arbitration,
    "t05_bandwidth_limits": t05_bandwidth_limits,
    "t06_lru_fairness": t06_lru_fairness,
    "t07_priority_reprogramming": t07_priority_reprogramming,
    "t08_locked_chunks": t08_locked_chunks,
    "t09_mixed_sizes": t09_mixed_sizes,
    "t10_hotspot": t10_hotspot,
    "t11_outstanding": t11_outstanding,
    "t12_decode_errors": t12_decode_errors,
}


def build_test(name: str, config: NodeConfig, seed: int) -> TestProgram:
    """Look up and build one named test case."""
    try:
        factory = TESTCASES[name]
    except KeyError:
        raise KeyError(
            f"unknown test case {name!r}; available: {sorted(TESTCASES)}"
        )
    return factory(config, seed)
