"""Command-line front-end for the regression tool (batch mode).

The original tool's GUI "receives configuration parameters" and "runs
regression tests in batch mode"; this is the batch half.  Usage::

    python -m repro.regression CONFIG_DIR --workdir OUT
        [--tests t02_random_uniform ...] [--seeds 1 2]
        [--bugs lru-recency-stuck ...] [--no-compare]

``CONFIG_DIR`` holds the ``*.cfg`` HDL-parameter files ("it's sufficient
to indicate the directory").  Exit status 0 means every configuration
signed off.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from typing import List, Optional

from ..bca import ALL_BUGS
from ..cache import CACHE_DIR_ENV
from ..stbus import ConfigError
from ..telemetry import RunLogger, TelemetryConfig
from .configs import load_config_dir
from .resilience import JournalError, ResilienceConfig
from .runner import RegressionRunner
from .testcases import TESTCASES


def _raise_interrupt(signum, frame) -> None:
    """SIGTERM handler: funnel into the KeyboardInterrupt abort path."""
    raise KeyboardInterrupt()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.regression",
        description="Run the common verification regression: the same "
                    "seeded test suite on the RTL and BCA views of every "
                    "configuration, with VCD dumps and bus-accurate "
                    "comparison.",
    )
    parser.add_argument("config_dir",
                        help="directory of *.cfg HDL-parameter files")
    parser.add_argument("--workdir", default=None,
                        help="output directory for VCDs and reports "
                             "(omit to skip dumping and comparison)")
    parser.add_argument("--tests", nargs="*", default=None,
                        choices=sorted(TESTCASES), metavar="TEST",
                        help="test cases to run (default: all twelve)")
    parser.add_argument("--seeds", nargs="*", type=int, default=[1, 2],
                        help="seeds applied to every test (default: 1 2)")
    parser.add_argument("--bugs", nargs="*", default=(),
                        choices=sorted(ALL_BUGS), metavar="BUG",
                        help="seed these bugs into the BCA view "
                             "(experiments only)")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes for the batch (default: 1, "
                             "serial; 0 = one per available CPU); the "
                             "summary is byte-identical for any N")
    parser.add_argument("--kernel", default="delta",
                        choices=["delta", "compiled", "auto"],
                        help="simulation engine: the interpreted delta "
                             "loop (default), the compiled levelized "
                             "kernel, or auto (compiled only when the "
                             "design levelizes with no feedback); every "
                             "artifact is byte-identical across engines")
    parser.add_argument("--no-compare", action="store_true",
                        help="skip the bus-accurate comparison")
    parser.add_argument("--triage", action="store_true",
                        help="auto-triage failed entries: locate the first "
                             "diverging (signal, cycle) point between the "
                             "two dumps, rank the fan-in cone suspects and "
                             "write a triage.json minimal repro per "
                             "failure (requires the comparison stage)")
    parser.add_argument("--skip-lint", action="store_true",
                        help="skip the static lint gate that checks both "
                             "views of every configuration before running")
    parser.add_argument("--lint-waivers", metavar="FILE", default=None,
                        help="waiver file for the lint gate (see "
                             "python -m repro.lint --help)")
    parser.add_argument("--unr", action="store_true",
                        help="annotate each per-config report with the "
                             "static coverage-unreachability verdicts "
                             "(see python -m repro.analysis --help); off "
                             "by default and the reports are then "
                             "byte-identical to a run without this flag")
    resilience = parser.add_argument_group(
        "fault tolerance",
        "Crash isolation is always on: a crashed/hung run becomes an "
        "ERROR/TIMEOUT entry in the report instead of aborting the "
        "batch.  These flags tune deadlines, retries and the "
        "checkpoint journal.",
    )
    resilience.add_argument("--run-timeout", type=float, default=None,
                            metavar="SECONDS",
                            help="wall-clock deadline per run/comparison; "
                                 "a run past it is killed and recorded as "
                                 "TIMEOUT (default: no deadline)")
    resilience.add_argument("--max-retries", type=int, default=2,
                            metavar="N",
                            help="retries for a crashed/timed-out job "
                                 "before it is quarantined (default: "
                                 "%(default)s)")
    resilience.add_argument("--retry-backoff", type=float, default=0.25,
                            metavar="SECONDS",
                            help="base delay before a retry; doubles per "
                                 "attempt (default: %(default)s)")
    resilience.add_argument("--journal", metavar="FILE", default=None,
                            help="append-only JSONL checkpoint journal "
                                 "recording each completed run with its "
                                 "artifact digests")
    resilience.add_argument("--resume", action="store_true",
                            help="replay completed runs from --journal "
                                 "and execute only the remainder "
                                 "(requires --journal)")
    cluster = parser.add_argument_group(
        "distributed execution and result cache",
        "Shard the batch across leased worker processes and/or serve "
        "repeated runs from a content-addressed result cache.  Either "
        "way every artifact stays byte-identical to a plain local "
        "batch.",
    )
    cluster.add_argument("--workers", type=int, default=0, metavar="N",
                         help="distributed worker processes (spawned as "
                              "python -m repro.regression.worker over "
                              "loopback TCP); 0 (default) keeps the "
                              "batch local; if no worker is reachable "
                              "the batch degrades to local execution "
                              "with a warning")
    cluster.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="root of the content-addressed result "
                              "cache; verified hits replay runs without "
                              "simulating, corrupt entries are "
                              "quarantined and re-executed (default: "
                              "$REPRO_CACHE_DIR if set)")
    cluster.add_argument("--no-cache", action="store_true",
                         help="disable the result cache even when "
                              "REPRO_CACHE_DIR is set")
    cluster.add_argument("--incremental", action="store_true",
                         help="key cache entries on cone-scoped semantic "
                              "fingerprints (python -m repro.analysis "
                              "impact) instead of the monolithic "
                              "design-source hash: comment-only/"
                              "formatting edits and edits outside a "
                              "design's processes keep their hits; "
                              "everything a change can affect still "
                              "re-executes (requires a cache)")
    telemetry = parser.add_argument_group(
        "telemetry",
        "Side-channel observability files; none of them changes a "
        "report artifact or a byte on stdout.",
    )
    telemetry.add_argument("--metrics-out", metavar="FILE", default=None,
                           help="write the per-batch metrics rollup (JSON; "
                                "digest it with python -m repro.telemetry "
                                "summarize FILE)")
    telemetry.add_argument("--trace-out", metavar="FILE", default=None,
                           help="write a Chrome/Perfetto trace of the batch "
                                "(one lane per worker process)")
    telemetry.add_argument("--log-json", metavar="FILE", default=None,
                           help="write a structured JSON-lines run log")
    telemetry.add_argument("--time-processes", action="store_true",
                           help="also record per-process kernel wall time "
                                "(slower; implies nothing unless a "
                                "telemetry output is set)")
    return parser


def _lint_gate(configs, waiver_file: Optional[str]) -> int:
    """Lint both views of every configuration; return the number that
    have error-severity findings (each is reported on stderr)."""
    from ..lint import lint_config, parse_waivers

    waivers = ()
    if waiver_file:
        with open(waiver_file, "r", encoding="utf-8") as handle:
            waivers = parse_waivers(handle.read())
    n_bad = 0
    for config in configs:
        result = lint_config(config, waivers=waivers)
        if result.has_errors:
            n_bad += 1
            print(result.render(), end="", file=sys.stderr)
    return n_bad


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    # Flag validation first: a bad flag should fail before any config is
    # loaded or linted.
    if args.jobs < 0:
        print(f"error: --jobs must be >= 0, got {args.jobs}",
              file=sys.stderr)
        return 2
    if args.resume and not args.journal:
        print("error: --resume requires --journal FILE", file=sys.stderr)
        return 2
    if args.triage and (args.no_compare or not args.workdir):
        print("error: --triage needs the comparison stage "
              "(a --workdir and no --no-compare)", file=sys.stderr)
        return 2
    if args.max_retries < 0:
        print(f"error: --max-retries must be >= 0, got {args.max_retries}",
              file=sys.stderr)
        return 2
    if args.workers < 0:
        print(f"error: --workers must be >= 0, got {args.workers}",
              file=sys.stderr)
        return 2
    if args.cache_dir and args.no_cache:
        print("error: --cache-dir conflicts with --no-cache",
              file=sys.stderr)
        return 2
    if args.incremental:
        has_cache = bool(args.cache_dir) or (
            not args.no_cache
            and bool(os.environ.get(CACHE_DIR_ENV)))
        if not has_cache:
            print("error: --incremental requires a result cache "
                  "(--cache-dir or REPRO_CACHE_DIR)", file=sys.stderr)
            return 2
    if args.run_timeout is not None and args.run_timeout <= 0:
        print(f"error: --run-timeout must be > 0, got {args.run_timeout}",
              file=sys.stderr)
        return 2
    try:
        configs = load_config_dir(args.config_dir)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not args.skip_lint:
        try:
            n_bad = _lint_gate(configs, args.lint_waivers)
        except OSError as exc:
            print(f"error: cannot read lint waivers: {exc}", file=sys.stderr)
            return 2
        except Exception as exc:  # WaiverError and friends
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if n_bad:
            print(f"error: static lint failed for {n_bad} "
                  "configuration(s); fix the findings or rerun with "
                  "--skip-lint", file=sys.stderr)
            return 1
    jobs = args.jobs
    if jobs == 0:
        from .parallel import default_jobs

        jobs = default_jobs()
    cache_dir = args.cache_dir
    if cache_dir is None and not args.no_cache:
        cache_dir = os.environ.get(CACHE_DIR_ENV) or None
    runner = RegressionRunner(
        configs,
        tests=args.tests,
        seeds=args.seeds,
        workdir=args.workdir,
        compare_waveforms=not args.no_compare,
        bca_bugs=set(args.bugs),
        jobs=jobs,
        telemetry=TelemetryConfig(
            metrics_out=args.metrics_out,
            trace_out=args.trace_out,
            log_out=args.log_json,
            time_processes=args.time_processes,
        ),
        resilience=ResilienceConfig(
            run_timeout=args.run_timeout,
            max_retries=args.max_retries,
            backoff=args.retry_backoff,
            journal_path=args.journal,
            resume=args.resume,
        ),
        unr=args.unr,
        kernel=args.kernel,
        triage=args.triage,
        workers=args.workers,
        cache_dir=cache_dir,
        incremental=args.incremental,
    )
    # A farm scheduler evicts with SIGTERM, an operator with Ctrl-C;
    # both deserve the same clean abort: the journal is flushed per
    # record, so everything completed so far is resumable.
    previous_term = None
    try:
        previous_term = signal.signal(signal.SIGTERM, _raise_interrupt)
    except ValueError:
        pass  # not the main thread (embedded use); SIGINT still works
    try:
        report = runner.run()
    except JournalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        hint = (
            f"; resume with --journal {args.journal} --resume"
            if args.journal else ""
        )
        print(f"interrupted: batch aborted{hint}", file=sys.stderr)
        return 130
    finally:
        if previous_term is not None:
            signal.signal(signal.SIGTERM, previous_term)
    print(report.render(), end="")
    # Timing goes to stderr as a structured record so stdout (and the
    # summary artifact) stay byte-identical between serial and parallel
    # runs — and between instrumented and plain ones.
    RunLogger(stream=sys.stderr).log(
        "batch.complete",
        n_runs=report.n_runs,
        n_configs=len(configs),
        wall_seconds=round(report.wall_seconds, 3),
        jobs=jobs,
        all_signed_off=report.all_signed_off,
    )
    return 0 if report.all_signed_off else 1
