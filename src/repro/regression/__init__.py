"""The regression tool: configuration files, test cases, batch runner, flow."""

from .configs import configuration_matrix, load_config_dir, save_config_dir
from .testcases import TESTCASES, build_test
from .runner import (
    ConfigReport,
    RegressionReport,
    RegressionRunner,
    TestEntry,
)
from .flow import (
    CommonVerificationFlow,
    FlowEvent,
    FlowOutcome,
    FlowState,
)
from .parallel import RunJob, default_jobs, execute_run_job
from .resilience import (
    BatchFaults,
    Journal,
    JournalError,
    ResilienceConfig,
    RunFailure,
)
from .distributed import DistributedBatchExecutor, DistributedConfig

__all__ = [
    "configuration_matrix",
    "load_config_dir",
    "save_config_dir",
    "TESTCASES",
    "build_test",
    "RegressionRunner",
    "RegressionReport",
    "ConfigReport",
    "TestEntry",
    "CommonVerificationFlow",
    "FlowState",
    "FlowEvent",
    "FlowOutcome",
    "RunJob",
    "default_jobs",
    "execute_run_job",
    "BatchFaults",
    "Journal",
    "JournalError",
    "ResilienceConfig",
    "RunFailure",
    "DistributedBatchExecutor",
    "DistributedConfig",
]
