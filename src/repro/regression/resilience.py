"""Fault-tolerant execution layer for the regression batch engine.

The paper's regression tool earns its keep overnight: a batch across
many configurations and seeds must *finish with a usable report* even
when individual runs misbehave.  This module wraps the embarrassingly
parallel scheduler of :mod:`repro.regression.parallel` with four layers
of protection:

1. **Run-level crash isolation** — every run/compare job executes under
   a guard that converts any exception (including a truncated or corrupt
   VCD discovered in the compare stage) into a structured, picklable
   :class:`RunFailure` carried into the report instead of aborting the
   batch.
2. **Wall-clock deadlines** — a parent-side watchdog enforces
   ``run_timeout`` per job; the existing ``max_cycles`` budget only
   bounds *simulated* cycles, not a worker stuck in native code.  A
   timed-out worker is killed, the pool rebuilt, and every innocent
   in-flight job rescheduled without consuming one of its attempts.
3. **Bounded retry with backoff + quarantine** — crashed and timed-out
   jobs are retried up to ``max_retries`` times with exponential
   backoff; jobs that fail repeatedly are quarantined (excluded from the
   batch, listed in the report with their failure history).  If the pool
   itself breaks more than ``max_pool_rebuilds`` times the batch
   degrades to serial execution in kill-able child processes.
4. **Journaled checkpoint/resume** — an append-only JSONL journal
   records each completed run with its artifact digests; ``resume``
   replays completed runs from the journal and only executes the
   remainder, so an interrupted batch (Ctrl-C, OOM, machine crash)
   continues instead of restarting.

The invariant throughout: a fault-free batch produces byte-identical
report artifacts to the unguarded engine, for any ``jobs=N``, serial or
parallel, with or without resume.
"""

from __future__ import annotations

import base64
import dataclasses
import heapq
import json
import multiprocessing
import os
import pickle
import time
import traceback
import zlib
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..ioutil import file_digest
from . import chaos
from .parallel import (
    CompareJob,
    EntryKey,
    RunJob,
    RunKey,
    TriageJob,
    execute_compare_job,
    execute_run_job,
    execute_triage_job,
)

#: Watchdog poll interval (seconds) for the pool scheduling loop.
_TICK = 0.05

#: Ceiling on a single retry backoff delay.
_MAX_BACKOFF = 30.0

#: Entry statuses a regression report can now carry.
STATUSES = ("PASS", "FAIL", "ERROR", "TIMEOUT", "QUARANTINED")


# ---------------------------------------------------------------------------
# Structured failures


@dataclass(frozen=True)
class RunFailure:
    """A failed run or comparison, reduced to plain picklable values.

    Instances stand in for :class:`~repro.catg.env.RunResult` (or an
    alignment report) in the batch results, so the assembly path can
    render a complete report with the affected entries marked instead of
    losing the whole batch to one raw traceback.
    """

    config_name: str
    test_name: str
    seed: int
    view: str                  # "rtl" | "bca" | "compare"
    stage: str                 # "run" | "compare"
    kind: str                  # "ERROR" | "TIMEOUT"
    exc_type: str
    message: str
    traceback_text: str = ""
    attempt: int = 0
    quarantined: bool = False
    #: One line per failed attempt, oldest first (set on the terminal
    #: failure so the report can show the whole history).
    history: Tuple[str, ...] = ()

    # RunResult-compatible surface for the report assembly path.
    @property
    def passed(self) -> bool:
        return False

    @property
    def timed_out(self) -> bool:
        return self.kind == "TIMEOUT"

    @property
    def status(self) -> str:
        return "QUARANTINED" if self.quarantined else self.kind

    def describe(self) -> str:
        return f"{self.kind} {self.exc_type}: {self.message}"

    @classmethod
    def from_exception(cls, *, config_name: str, test_name: str, seed: int,
                       view: str, stage: str, exc: BaseException,
                       attempt: int) -> "RunFailure":
        return cls(
            config_name=config_name, test_name=test_name, seed=seed,
            view=view, stage=stage, kind="ERROR",
            exc_type=type(exc).__name__, message=str(exc) or repr(exc),
            traceback_text="".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            ),
            attempt=attempt,
        )


def guarded_execute_run(job: RunJob):
    """Worker-side run wrapper: never raises, returns a tagged outcome
    ``("ok", RunResult)`` or ``("fail", RunFailure)``."""
    try:
        chaos.inject_before_run(job)
        result = execute_run_job(job)
        chaos.inject_after_run(job)
        return ("ok", result)
    except Exception as exc:
        return ("fail", RunFailure.from_exception(
            config_name=job.config.name, test_name=job.test_name,
            seed=job.seed, view=job.view, stage="run", exc=exc,
            attempt=job.attempt,
        ))


def guarded_execute_compare(job: CompareJob):
    """Worker-side compare wrapper; corrupt/truncated VCDs surface as a
    structured failure, not a traceback."""
    try:
        return ("ok", execute_compare_job(job))
    except Exception as exc:
        return ("fail", RunFailure.from_exception(
            config_name=job.config_name, test_name=job.test_name,
            seed=job.seed, view="compare", stage="compare", exc=exc,
            attempt=job.attempt,
        ))


def guarded_execute_triage(job: TriageJob):
    """Worker-side triage wrapper; a triage crash must never take down a
    batch whose entry already failed — it degrades to an untriaged FAIL."""
    try:
        return ("ok", execute_triage_job(job))
    except Exception as exc:
        return ("fail", RunFailure.from_exception(
            config_name=job.config.name, test_name=job.test_name,
            seed=job.seed, view="triage", stage="triage", exc=exc,
            attempt=job.attempt,
        ))


# ---------------------------------------------------------------------------
# Configuration and fault accounting


@dataclass(frozen=True)
class ResilienceConfig:
    """Fault-tolerance knobs for one regression batch."""

    #: Parent-side wall-clock deadline per run/compare job (seconds);
    #: ``None`` disables the watchdog.  Under ``jobs=1`` a deadline
    #: moves execution into kill-able child processes.
    run_timeout: Optional[float] = None
    #: Retries after the first failed attempt (total attempts = N + 1).
    max_retries: int = 2
    #: Base backoff delay; attempt *k* waits ``backoff * 2**(k-1)``.
    backoff: float = 0.25
    #: Unexpected pool breaks tolerated before degrading to serial
    #: child-process execution.
    max_pool_rebuilds: int = 3
    #: Append-only JSONL checkpoint journal (``None`` disables it).
    journal_path: Optional[str] = None
    #: Replay completed runs from the journal instead of re-executing.
    resume: bool = False

    def with_tag(self, tag: str) -> "ResilienceConfig":
        """Derive a config whose journal file carries ``tag`` (for flows
        that run several regressions, one per iteration)."""
        if not self.journal_path:
            return self
        stem, ext = os.path.splitext(self.journal_path)
        return dataclasses.replace(self, journal_path=f"{stem}.{tag}{ext}")


@dataclass
class BatchFaults:
    """What went wrong (and was absorbed) during one batch."""

    retries: int = 0
    crashes: int = 0
    timeouts: int = 0
    compare_failures: int = 0
    triage_failures: int = 0
    pool_rebuilds: int = 0
    quarantined: List[RunFailure] = field(default_factory=list)
    resumed_runs: int = 0
    resumed_compares: int = 0
    resumed_triages: int = 0
    stale_journal_entries: int = 0
    degraded_serial: bool = False
    # Distributed-cluster accounting (all zero for local batches).
    lease_reclaims: int = 0
    worker_deaths: int = 0
    worker_respawns: int = 0
    #: No distributed worker was reachable; the batch ran on the local
    #: resilient executor instead.
    degraded_local: bool = False
    #: Structured fault records for the telemetry run log.
    events: List[dict] = field(default_factory=list)

    def note(self, event: str, **fields: object) -> None:
        record: Dict[str, object] = {
            "event": event, "ts": round(time.time(), 6)}
        record.update(fields)
        self.events.append(record)

    def counters(self) -> Dict[str, object]:
        return {
            "retries": self.retries,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "compare_failures": self.compare_failures,
            "triage_failures": self.triage_failures,
            "pool_rebuilds": self.pool_rebuilds,
            "quarantined": len(self.quarantined),
            "resumed_runs": self.resumed_runs,
            "resumed_compares": self.resumed_compares,
            "resumed_triages": self.resumed_triages,
            "stale_journal_entries": self.stale_journal_entries,
            "degraded_serial": self.degraded_serial,
            "lease_reclaims": self.lease_reclaims,
            "worker_deaths": self.worker_deaths,
            "worker_respawns": self.worker_respawns,
            "degraded_local": self.degraded_local,
        }

    @property
    def clean(self) -> bool:
        return not (self.retries or self.crashes or self.timeouts
                    or self.compare_failures or self.triage_failures
                    or self.pool_rebuilds or self.quarantined
                    or self.stale_journal_entries or self.lease_reclaims
                    or self.worker_deaths)


# ---------------------------------------------------------------------------
# Journal


JOURNAL_SCHEMA = "repro.regression/journal/v1"


class JournalError(Exception):
    """Journal does not belong to this batch (or is unreadable)."""


def _canonical_config_text(config) -> str:
    """``to_text()`` with the address map resolved first: elaboration
    materialises the default map onto the config, so an unresolved and a
    resolved copy of the same configuration must digest identically."""
    config.resolved_map
    return config.to_text()


def batch_signature(configs, tests, seeds, bugs, compare_waveforms: bool,
                    with_arbitration_checker: bool) -> str:
    """Digest of everything that determines the batch's work list.  A
    journal keyed to a different signature must not be replayed."""
    import hashlib

    payload = json.dumps({
        "configs": [_canonical_config_text(config) for config in configs],
        "tests": list(tests),
        "seeds": list(seeds),
        "bugs": sorted(bugs),
        "compare_waveforms": compare_waveforms,
        "with_arbitration_checker": with_arbitration_checker,
    }, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_artifact_paths(job: RunJob) -> Dict[str, str]:
    """The files one run job writes, keyed by role."""
    paths: Dict[str, str] = {}
    if job.vcd_path:
        paths["vcd"] = job.vcd_path
    if job.report_stem:
        paths["report"] = job.report_stem + ".report.txt"
        paths["coverage"] = job.report_stem + ".coverage.txt"
    return paths


def _encode_payload(value) -> str:
    return base64.b64encode(
        zlib.compress(pickle.dumps(value, protocol=4))).decode("ascii")


def _decode_payload(text: str):
    return pickle.loads(zlib.decompress(base64.b64decode(text)))


class Journal:
    """Append-only JSONL checkpoint of completed runs and comparisons.

    Every entry is keyed on ``(config, test, seed, view)`` — the full
    coordinates of one deterministic run — plus the SHA-256 digests of
    the artifacts it wrote, so replay only trusts entries whose files
    are still byte-for-byte what the journaled run produced.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = None

    def start(self, signature: str, resume: bool) -> List[dict]:
        """Open the journal; returns previously journaled entries when
        resuming (validating the header), else truncates and writes a
        fresh header."""
        entries: List[dict] = []
        if resume and os.path.exists(self.path):
            entries = self._read(signature)
            self._handle = open(self.path, "a", encoding="utf-8")
        else:
            self._handle = open(self.path, "w", encoding="utf-8")
            self._write({
                "kind": "header", "schema": JOURNAL_SCHEMA,
                "signature": signature,
            })
        return entries

    def _read(self, signature: str) -> List[dict]:
        entries: List[dict] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for index, line in enumerate(handle):
                try:
                    record = json.loads(line)
                except ValueError:
                    # A torn trailing line is exactly what an interrupt
                    # leaves behind; everything before it is still good.
                    continue
                if index == 0 or record.get("kind") == "header":
                    if (record.get("kind") != "header"
                            or record.get("schema") != JOURNAL_SCHEMA):
                        raise JournalError(
                            f"{self.path!r} is not a regression journal")
                    if record.get("signature") != signature:
                        raise JournalError(
                            f"journal {self.path!r} belongs to a different "
                            "batch (configs/tests/seeds/bugs changed); "
                            "remove it or drop --resume"
                        )
                    continue
                entries.append(record)
        if not entries and not os.path.getsize(self.path):
            raise JournalError(f"journal {self.path!r} is empty")
        return entries

    def _write(self, record: dict) -> None:
        if self._handle is None:
            return
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()

    def record_run(self, job: RunJob, result) -> None:
        artifacts = {
            role: file_digest(path)
            for role, path in run_artifact_paths(job).items()
        }
        self._write({
            "kind": "run",
            "config": job.config.name, "test": job.test_name,
            "seed": job.seed, "view": job.view,
            "status": getattr(result, "status", "PASS"),
            "attempt": job.attempt,
            "artifacts": artifacts,
            "payload": _encode_payload(result),
        })

    def record_compare(self, *, config_name: str, test_name: str, seed: int,
                       rtl_vcd: str, bca_vcd: str, report) -> None:
        self._write({
            "kind": "compare",
            "config": config_name, "test": test_name, "seed": seed,
            "artifacts": {
                "rtl": file_digest(rtl_vcd),
                "bca": file_digest(bca_vcd),
            },
            "payload": _encode_payload(report),
        })

    def record_triage(self, job: TriageJob, report) -> None:
        # An unknown-kind record is silently skipped by older replayers,
        # so journaling triages needs no schema bump.
        artifacts = {
            "rtl": file_digest(job.rtl_vcd),
            "bca": file_digest(job.bca_vcd),
        }
        if job.out_path:
            artifacts["triage"] = file_digest(job.out_path)
        self._write({
            "kind": "triage",
            "config": job.config.name, "test": job.test_name,
            "seed": job.seed,
            "artifacts": artifacts,
            "payload": _encode_payload(report),
        })

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def _artifacts_current(recorded: Dict[str, str],
                       expected_paths: Dict[str, str]) -> bool:
    if set(recorded) != set(expected_paths):
        return False
    for role, digest in recorded.items():
        path = expected_paths[role]
        if not os.path.exists(path) or file_digest(path) != digest:
            return False
    return True


def replay_journal(
    entries: Sequence[dict],
    jobs_by_key: Dict[RunKey, RunJob],
    triage_paths: Optional[Dict[EntryKey, str]] = None,
) -> Tuple[Dict[RunKey, object], Dict[EntryKey, object],
           Dict[EntryKey, object], int]:
    """Validate journal entries against the batch's expected artifacts.

    Returns the replayable run results, the replayable alignment
    reports, the replayable triage reports, and the number of stale
    entries (digest mismatch, missing file, undecodable payload) that
    will be re-executed instead.
    """
    key_by_names: Dict[Tuple[str, str, int, str], RunKey] = {
        (job.config.name, job.test_name, job.seed, job.view): key
        for key, job in jobs_by_key.items()
    }
    latest_runs: Dict[Tuple[str, str, int, str], dict] = {}
    latest_compares: Dict[Tuple[str, str, int], dict] = {}
    latest_triages: Dict[Tuple[str, str, int], dict] = {}
    for record in entries:
        if record.get("kind") == "run":
            latest_runs[(record.get("config"), record.get("test"),
                         record.get("seed"), record.get("view"))] = record
        elif record.get("kind") == "compare":
            latest_compares[(record.get("config"), record.get("test"),
                             record.get("seed"))] = record
        elif record.get("kind") == "triage":
            latest_triages[(record.get("config"), record.get("test"),
                            record.get("seed"))] = record
    results: Dict[RunKey, object] = {}
    alignments: Dict[EntryKey, object] = {}
    triages: Dict[EntryKey, object] = {}
    stale = 0
    for names, record in latest_runs.items():
        key = key_by_names.get(names)
        if key is None:
            stale += 1
            continue
        job = jobs_by_key[key]
        if not _artifacts_current(record.get("artifacts", {}),
                                  run_artifact_paths(job)):
            stale += 1
            continue
        try:
            results[key] = _decode_payload(record["payload"])
        except Exception:
            stale += 1
    for names, record in latest_compares.items():
        rtl_key = key_by_names.get(names + ("rtl",))
        bca_key = key_by_names.get(names + ("bca",))
        if rtl_key is None or bca_key is None:
            stale += 1
            continue
        rtl_vcd = jobs_by_key[rtl_key].vcd_path
        bca_vcd = jobs_by_key[bca_key].vcd_path
        if not rtl_vcd or not bca_vcd or not _artifacts_current(
            record.get("artifacts", {}), {"rtl": rtl_vcd, "bca": bca_vcd}
        ):
            stale += 1
            continue
        try:
            alignments[rtl_key[:3]] = _decode_payload(record["payload"])
        except Exception:
            stale += 1
    for names, record in latest_triages.items():
        rtl_key = key_by_names.get(names + ("rtl",))
        bca_key = key_by_names.get(names + ("bca",))
        if rtl_key is None or bca_key is None:
            stale += 1
            continue
        rtl_vcd = jobs_by_key[rtl_key].vcd_path
        bca_vcd = jobs_by_key[bca_key].vcd_path
        if not rtl_vcd or not bca_vcd:
            stale += 1
            continue
        expected = {"rtl": rtl_vcd, "bca": bca_vcd}
        if "triage" in record.get("artifacts", {}):
            out = (triage_paths or {}).get(rtl_key[:3])
            if out is None:
                stale += 1
                continue
            expected["triage"] = out
        if not _artifacts_current(record.get("artifacts", {}), expected):
            stale += 1
            continue
        try:
            triages[rtl_key[:3]] = _decode_payload(record["payload"])
        except Exception:
            stale += 1
    return results, alignments, triages, stale


# ---------------------------------------------------------------------------
# Child-process execution (serial-with-deadline and degraded modes)


def _child_entry(conn, fn, job) -> None:
    try:
        conn.send(fn(job))
    finally:
        conn.close()


def _execute_in_child(fn, job, timeout: Optional[float]):
    """Run one guarded job in a dedicated child process.

    Gives the serial path the same isolation a pool worker has — a hard
    crash or hang kills the child, never the batch — and makes deadlines
    enforceable with a plain ``kill()``.  Returns the guarded outcome
    tuple, ``("timeout", None)`` or ``("died", exitcode)``.
    """
    ctx = multiprocessing.get_context()
    recv, send = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_child_entry, args=(send, fn, job))
    proc.start()
    send.close()
    deadline = time.monotonic() + timeout if timeout else None
    outcome = None
    try:
        while True:
            if recv.poll(_TICK):
                try:
                    outcome = recv.recv()
                except EOFError:
                    outcome = None
                break
            if not proc.is_alive():
                if recv.poll(0):
                    try:
                        outcome = recv.recv()
                    except EOFError:
                        outcome = None
                break
            if deadline is not None and time.monotonic() > deadline:
                proc.kill()
                proc.join(5)
                return ("timeout", None)
        proc.join(5)
    finally:
        recv.close()
    if outcome is None:
        return ("died", proc.exitcode)
    return outcome


# ---------------------------------------------------------------------------
# The resilient batch executor


class _Task:
    """One schedulable unit (a run or a comparison) plus its history."""

    __slots__ = ("kind", "key", "job", "failures")

    def __init__(self, kind: str, key: tuple, job) -> None:
        self.kind = kind          # "run" | "compare" | "triage"
        self.key = key            # RunKey | EntryKey
        self.job = job
        self.failures: List[RunFailure] = []

    @property
    def names(self) -> Dict[str, object]:
        if self.kind == "run":
            return {"config": self.job.config.name,
                    "test": self.job.test_name, "seed": self.job.seed,
                    "view": self.job.view}
        if self.kind == "triage":
            return {"config": self.job.config.name,
                    "test": self.job.test_name, "seed": self.job.seed,
                    "view": "triage"}
        return {"config": self.job.config_name, "test": self.job.test_name,
                "seed": self.job.seed, "view": "compare"}


class ResilientBatchExecutor:
    """Schedules a batch's run/compare jobs with crash isolation,
    deadlines, retry/quarantine and journaling.

    ``jobs == 1`` executes inline (or in kill-able child processes when
    a deadline is set); ``jobs > 1`` drives a process pool with a
    watchdog.  Either way the results feed the same deterministic
    assembly path, so fault-free output is byte-identical across modes.
    """

    def __init__(
        self,
        jobs_by_key: Dict[RunKey, RunJob],
        *,
        jobs: int,
        compare_waveforms: bool,
        telemetry: bool = False,
        config: Optional[ResilienceConfig] = None,
        journal: Optional[Journal] = None,
        resumed_results: Optional[Dict[RunKey, object]] = None,
        resumed_alignments: Optional[Dict[EntryKey, object]] = None,
        triage: bool = False,
        triage_paths: Optional[Dict[EntryKey, str]] = None,
        resumed_triages: Optional[Dict[EntryKey, object]] = None,
        tracer=None,
        cache=None,
    ) -> None:
        self.jobs_by_key = jobs_by_key
        self.jobs = jobs
        self.compare_waveforms = compare_waveforms
        self.telemetry = telemetry
        self.config = config if config is not None else ResilienceConfig()
        self.journal = journal
        self.tracer = tracer
        #: Optional :class:`repro.cache.ResultCache`; when set, run
        #: tasks are satisfied from the store where possible and every
        #: fresh result is published back to it.
        self.cache = cache
        self.faults = BatchFaults()
        self.results: Dict[RunKey, object] = dict(resumed_results or {})
        self.alignments: Dict[EntryKey, object] = \
            dict(resumed_alignments or {})
        self.compare_failures: Dict[EntryKey, RunFailure] = {}
        self.compare_telemetry: Dict[EntryKey, object] = {}
        # Failure triage rides behind the comparisons: entries that
        # failed (checkers or alignment) get a TriageJob, everything
        # else is untouched — a fault-free batch never schedules one.
        self.triage = triage and compare_waveforms
        self.triage_paths = dict(triage_paths or {})
        self.triages: Dict[EntryKey, object] = dict(resumed_triages or {})
        self.triage_telemetry: Dict[EntryKey, object] = {}
        self._triaged = set(self.triages)
        self._entry_order: List[EntryKey] = []
        seen = set()
        for key in jobs_by_key:
            entry_key = key[:3]
            if entry_key not in seen:
                seen.add(entry_key)
                self._entry_order.append(entry_key)
        self._compared = set(self.alignments)
        self._degraded = False
        self._task_seq = 0

    # -- shared bookkeeping -------------------------------------------------

    def _span(self, name: str, **args):
        if self.tracer is not None:
            return self.tracer.span(name, **args)
        import contextlib

        return contextlib.nullcontext()

    def _job_for_attempt(self, task: _Task):
        attempt = len(task.failures)
        changes: Dict[str, object] = {}
        if task.job.attempt != attempt:
            changes["attempt"] = attempt
        if self.telemetry and attempt:
            changes["submitted_at"] = time.time()
        if changes:
            task.job = dataclasses.replace(task.job, **changes)
        return task.job

    def _register_failure(self, task: _Task,
                          failure: RunFailure) -> Optional[float]:
        """Record one failed attempt.  Returns the backoff delay before
        the retry, or ``None`` when the job is terminal (quarantined or
        out of budget)."""
        if failure.stage == "compare":
            self.faults.compare_failures += 1
        elif failure.stage == "triage":
            self.faults.triage_failures += 1
        elif failure.kind == "TIMEOUT":
            self.faults.timeouts += 1
        else:
            self.faults.crashes += 1
        task.failures.append(failure)
        n_failed = len(task.failures)
        if n_failed <= self.config.max_retries:
            self.faults.retries += 1
            delay = min(_MAX_BACKOFF,
                        self.config.backoff * (2 ** (n_failed - 1)))
            self.faults.note("job.retry", **task.names,
                             attempt=failure.attempt, kind=failure.kind,
                             error=failure.describe(),
                             backoff_seconds=round(delay, 3))
            return delay
        history = tuple(
            f"attempt {f.attempt}: {f.describe()}" for f in task.failures
        )
        terminal = dataclasses.replace(
            task.failures[-1],
            quarantined=n_failed > 1,
            history=history,
        )
        if task.kind == "run":
            self.results[task.key] = terminal
        elif task.kind == "compare":
            self.compare_failures[task.key] = terminal
        # triage is best-effort: the entry already failed, so a terminal
        # triage failure only lives in the fault accounting above.
        if terminal.quarantined:
            self.faults.quarantined.append(terminal)
            self.faults.note("job.quarantined", **task.names,
                             attempts=n_failed, error=terminal.describe())
        else:
            self.faults.note("job.failed", **task.names,
                             kind=terminal.kind, error=terminal.describe())
        return None

    def _satisfy_from_cache(self, task: _Task, ready) -> bool:
        """Try to complete a run task from the result cache.

        On a verified hit the artifacts are materialized, the result is
        journaled and completed exactly as an executed run would be, and
        (when ``ready`` is a queue) the entry's comparison is scheduled.
        A miss — including a quarantined corrupt entry — returns False
        and the task executes normally.
        """
        if self.cache is None or task.kind != "run":
            return False
        result = self.cache.load(task.job, run_artifact_paths(task.job))
        if result is None:
            return False
        self._complete(task, result, from_cache=True)
        if ready is not None:
            compare = self._compare_task(task.key[:3])
            if compare is not None:
                ready.append(compare)
        return True

    def _complete(self, task: _Task, payload,
                  from_cache: bool = False) -> None:
        if task.kind == "run":
            self.results[task.key] = payload
            if self.journal is not None:
                self.journal.record_run(task.job, payload)
            if self.cache is not None and not from_cache:
                entry_path = self.cache.store(
                    task.job, payload, run_artifact_paths(task.job))
                chaos.inject_after_cache_store(task.job, entry_path)
        elif task.kind == "triage":
            report, tele = payload
            self.triages[task.key] = report
            if tele is not None:
                self.triage_telemetry[task.key] = tele
            if self.journal is not None:
                self.journal.record_triage(task.job, report)
        else:
            report, tele = payload
            self.alignments[task.key] = report
            if tele is not None:
                self.compare_telemetry[task.key] = tele
            if self.journal is not None:
                self.journal.record_compare(
                    config_name=task.job.config_name,
                    test_name=task.job.test_name, seed=task.job.seed,
                    rtl_vcd=task.job.rtl_vcd, bca_vcd=task.job.bca_vcd,
                    report=report,
                )
        if task.failures:
            self.faults.note("job.recovered", **task.names,
                             attempts=len(task.failures) + 1)

    def _compare_task(self, entry_key: EntryKey) -> Optional[_Task]:
        """A compare task for ``entry_key`` if it is due: comparison
        wanted, both views succeeded with dumps, not yet compared."""
        if not self.compare_waveforms or entry_key in self._compared:
            return None
        rtl = self.results.get(entry_key + ("rtl",))
        bca = self.results.get(entry_key + ("bca",))
        if isinstance(rtl, RunFailure) or isinstance(bca, RunFailure):
            self._compared.add(entry_key)
            return None
        if rtl is None or bca is None:
            return None
        rtl_job = self.jobs_by_key[entry_key + ("rtl",)]
        bca_job = self.jobs_by_key[entry_key + ("bca",)]
        if not rtl_job.vcd_path or not bca_job.vcd_path:
            self._compared.add(entry_key)
            return None
        self._compared.add(entry_key)
        job = CompareJob(
            rtl_vcd=rtl_job.vcd_path, bca_vcd=bca_job.vcd_path,
            config_name=rtl_job.config.name, test_name=entry_key[1],
            seed=entry_key[2], telemetry=self.telemetry,
            submitted_at=time.time() if self.telemetry else None,
        )
        return _Task("compare", entry_key, job)

    def _triage_task(self, entry_key: EntryKey) -> Optional[_Task]:
        """A triage task for ``entry_key`` if it is due: triage enabled,
        the entry failed (checkers or alignment), both dumps real, not
        yet triaged."""
        if not self.triage or entry_key in self._triaged:
            return None
        alignment = self.alignments.get(entry_key)
        if alignment is None:
            return None
        rtl = self.results.get(entry_key + ("rtl",))
        bca = self.results.get(entry_key + ("bca",))
        if (rtl is None or bca is None or isinstance(rtl, RunFailure)
                or isinstance(bca, RunFailure)):
            self._triaged.add(entry_key)
            return None
        checkers_failed = not (rtl.passed and bca.passed)
        if not checkers_failed and alignment.signed_off:
            self._triaged.add(entry_key)
            return None
        rtl_job = self.jobs_by_key[entry_key + ("rtl",)]
        bca_job = self.jobs_by_key[entry_key + ("bca",)]
        if not rtl_job.vcd_path or not bca_job.vcd_path:
            self._triaged.add(entry_key)
            return None
        self._triaged.add(entry_key)
        job = TriageJob(
            config=rtl_job.config, test_name=entry_key[1],
            seed=entry_key[2],
            rtl_vcd=rtl_job.vcd_path, bca_vcd=bca_job.vcd_path,
            out_path=self.triage_paths.get(entry_key),
            bugs=bca_job.bugs,
            reason="checkers-failed" if checkers_failed
            else "low-alignment",
            telemetry=self.telemetry,
            submitted_at=time.time() if self.telemetry else None,
        )
        return _Task("triage", entry_key, job)

    @staticmethod
    def _worker_fn(task: _Task):
        if task.kind == "run":
            return guarded_execute_run
        if task.kind == "triage":
            return guarded_execute_triage
        return guarded_execute_compare

    def _pool_crash_failure(self, task: _Task) -> RunFailure:
        names = task.names
        return RunFailure(
            config_name=str(names["config"]), test_name=str(names["test"]),
            seed=int(names["seed"]), view=str(names["view"]),
            stage="run" if task.kind == "run" else "compare",
            kind="ERROR", exc_type="WorkerDied",
            message="worker process died while executing this job "
                    "(process pool crashed)",
            attempt=task.job.attempt,
        )

    def _timeout_failure(self, task: _Task) -> RunFailure:
        names = task.names
        return RunFailure(
            config_name=str(names["config"]), test_name=str(names["test"]),
            seed=int(names["seed"]), view=str(names["view"]),
            stage="run" if task.kind == "run" else "compare",
            kind="TIMEOUT", exc_type="WatchdogTimeout",
            message=f"exceeded the run deadline of "
                    f"{self.config.run_timeout}s and was killed",
            attempt=task.job.attempt,
        )

    # -- execution ----------------------------------------------------------

    def execute(self):
        if self.jobs > 1:
            self._execute_pool()
        else:
            self._execute_serial()
        return (self.results, self.alignments, self.compare_telemetry,
                self.compare_failures, self.triages, self.triage_telemetry,
                self.faults)

    # -- serial (and degraded) mode ----------------------------------------

    def _execute_serial(self, isolate: bool = False) -> None:
        isolate = isolate or self.config.run_timeout is not None
        for entry_key in self._entry_order:
            for view in ("rtl", "bca"):
                key = entry_key + (view,)
                if key in self.results:
                    continue
                self._run_task_blocking(
                    _Task("run", key, self.jobs_by_key[key]), isolate)
            task = self._compare_task(entry_key)
            if task is not None:
                self._run_task_blocking(task, isolate)
            task = self._triage_task(entry_key)
            if task is not None:
                self._run_task_blocking(task, isolate)

    def _run_task_blocking(self, task: _Task, isolate: bool) -> None:
        if self._satisfy_from_cache(task, None):
            return
        fn = self._worker_fn(task)
        while True:
            job = self._job_for_attempt(task)
            if isolate:
                outcome = _execute_in_child(fn, job, self.config.run_timeout)
            else:
                outcome = fn(job)
            status, payload = outcome
            if status == "ok":
                self._complete(task, payload)
                return
            if status == "timeout":
                failure = self._timeout_failure(task)
            elif status == "died":
                failure = dataclasses.replace(
                    self._pool_crash_failure(task),
                    message="worker child process died "
                            f"(exit code {payload})",
                )
            else:
                failure = payload
            delay = self._register_failure(task, failure)
            if delay is None:
                return
            time.sleep(delay)

    # -- pool mode ----------------------------------------------------------

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.jobs)

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        processes = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            try:
                proc.kill()
            except Exception:
                pass
        pool.shutdown(wait=False)

    def _execute_pool(self) -> None:
        ready: Deque[_Task] = deque()
        for key, job in self.jobs_by_key.items():
            if key not in self.results:
                ready.append(_Task("run", key, job))
        for entry_key in self._entry_order:
            task = self._compare_task(entry_key)
            if task is not None:
                ready.append(task)
            # Resumed entries may already carry an alignment; their
            # triage (if due and not itself resumed) starts immediately.
            task = self._triage_task(entry_key)
            if task is not None:
                ready.append(task)
        backoff: List[Tuple[float, int, _Task]] = []
        inflight: Dict[object, _Task] = {}
        started: Dict[object, float] = {}
        broken_strikes = 0
        pool = self._new_pool()
        try:
            while ready or backoff or inflight:
                now = time.monotonic()
                while backoff and backoff[0][0] <= now:
                    ready.append(heapq.heappop(backoff)[2])
                # Submit whatever is due.
                submit_failed = False
                while ready and not self._degraded:
                    task = ready[0]
                    if self._satisfy_from_cache(task, ready):
                        ready.popleft()
                        continue
                    job = self._job_for_attempt(task)
                    try:
                        future = pool.submit(self._worker_fn(task), job)
                    except Exception:
                        # Pool broke between completions; recover below.
                        submit_failed = True
                        break
                    ready.popleft()
                    inflight[future] = task
                if self._degraded:
                    break
                if not inflight:
                    if submit_failed:
                        pool, broken_strikes = self._recover_broken_pool(
                            pool, inflight, started, ready, backoff,
                            broken_strikes)
                        continue
                    if backoff:
                        time.sleep(
                            max(0.0, min(backoff[0][0] - now, 0.25)))
                    continue
                done, _ = wait(set(inflight), timeout=_TICK,
                               return_when=FIRST_COMPLETED)
                now = time.monotonic()
                for future in inflight:
                    if future not in started and future.running():
                        started[future] = now
                pool_broke = submit_failed
                for future in done:
                    task = inflight.pop(future)
                    was_started = started.pop(future, None) is not None
                    try:
                        outcome = future.result()
                    except Exception:
                        # BrokenProcessPool (or kin): a worker died
                        # without returning.  In-flight jobs consume an
                        # attempt; queued ones resubmit freely.
                        pool_broke = True
                        if was_started:
                            delay = self._register_failure(
                                task, self._pool_crash_failure(task))
                            if delay is not None:
                                self._push_backoff(backoff, now + delay,
                                                   task)
                        else:
                            ready.append(task)
                        continue
                    self._handle_outcome(task, outcome, ready, backoff, now)
                if pool_broke:
                    pool, broken_strikes = self._recover_broken_pool(
                        pool, inflight, started, ready, backoff,
                        broken_strikes)
                    continue
                if self.config.run_timeout is not None:
                    pool = self._enforce_deadlines(pool, inflight, started,
                                                   ready, backoff, now)
            if self._degraded:
                self._drain_degraded(ready, backoff)
        except BaseException:
            self._kill_pool(pool)
            raise
        else:
            pool.shutdown(wait=False)

    def _push_backoff(self, backoff, due: float, task: _Task) -> None:
        self._task_seq += 1
        heapq.heappush(backoff, (due, self._task_seq, task))

    def _handle_outcome(self, task: _Task, outcome, ready, backoff,
                        now: float) -> None:
        status, payload = outcome
        if status == "ok":
            self._complete(task, payload)
            if task.kind == "run":
                compare = self._compare_task(task.key[:3])
                if compare is not None:
                    ready.append(compare)
            elif task.kind == "compare":
                triage = self._triage_task(task.key)
                if triage is not None:
                    ready.append(triage)
            return
        delay = self._register_failure(task, payload)
        if delay is not None:
            self._push_backoff(backoff, now + delay, task)

    def _recover_broken_pool(self, pool, inflight, started, ready, backoff,
                             broken_strikes: int):
        """The pool died unexpectedly: charge started jobs one attempt,
        free-requeue queued ones, and rebuild (or degrade to serial)."""
        now = time.monotonic()
        for future, task in list(inflight.items()):
            was_started = started.pop(future, None) is not None
            if was_started:
                delay = self._register_failure(
                    task, self._pool_crash_failure(task))
                if delay is not None:
                    self._push_backoff(backoff, now + delay, task)
            else:
                ready.append(task)
        inflight.clear()
        started.clear()
        self._kill_pool(pool)
        broken_strikes += 1
        self.faults.pool_rebuilds += 1
        if broken_strikes > self.config.max_pool_rebuilds:
            self._degraded = True
            self.faults.degraded_serial = True
            self.faults.note("pool.degraded",
                             strikes=broken_strikes,
                             detail="process pool broke repeatedly; "
                                    "finishing the batch serially in "
                                    "isolated child processes")
            return pool, broken_strikes
        self.faults.note("pool.rebuilt", cause="crash",
                         strikes=broken_strikes)
        with self._span("pool.rebuild", cause="crash"):
            pool = self._new_pool()
        return pool, broken_strikes

    def _enforce_deadlines(self, pool, inflight, started, ready, backoff,
                           now: float):
        """Kill jobs past the deadline.  Returns the (possibly rebuilt)
        pool; the hung worker can only be stopped by killing the whole
        pool, so innocent in-flight jobs are requeued at no cost."""
        timeout = self.config.run_timeout
        timed = [future for future, t0 in started.items()
                 if future in inflight and now - t0 > timeout]
        if not timed:
            return pool
        for future in timed:
            task = inflight.pop(future)
            started.pop(future, None)
            delay = self._register_failure(task, self._timeout_failure(task))
            if delay is not None:
                self._push_backoff(backoff, now + delay, task)
        for future, task in list(inflight.items()):
            started.pop(future, None)
            ready.append(task)
        inflight.clear()
        started.clear()
        self._kill_pool(pool)
        self.faults.pool_rebuilds += 1
        self.faults.note("pool.rebuilt", cause="timeout")
        with self._span("pool.rebuild", cause="timeout"):
            return self._new_pool()

    def _drain_degraded(self, ready, backoff) -> None:
        """Finish the remaining work serially in isolated children."""
        leftovers: List[_Task] = list(ready)
        leftovers.extend(task for _, _, task in sorted(backoff))
        ready.clear()
        backoff.clear()
        for task in leftovers:
            self._run_task_blocking(task, True)
        # Comparisons (and their triages) whose runs only now completed.
        for entry_key in self._entry_order:
            task = self._compare_task(entry_key)
            if task is not None:
                self._run_task_blocking(task, True)
            task = self._triage_task(entry_key)
            if task is not None:
                self._run_task_blocking(task, True)
