"""The common verification flow of Figures 4 and 5, as a state machine.

Figure 4: functional specifications → verification implementation → RTL
and BCA model verification in parallel (looping while the functional spec
is unstable or coverage is not full) → bus-accurate comparison (looping
back into BCA verification while the alignment rate is low) → sign-off.

:class:`CommonVerificationFlow` drives a :class:`RegressionRunner` through
those states for one configuration, recording the transition history —
the executable form of the paper's flow diagram, used by
``examples/common_flow.py`` and the E3/E6 benches.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..analyzer import SIGNOFF_THRESHOLD
from ..stbus import NodeConfig
from ..telemetry import TelemetryConfig
from .resilience import ResilienceConfig
from .runner import ConfigReport, RegressionRunner


class FlowState(enum.Enum):
    """The boxes of Figure 4 (plus the static gates added in front of
    model verification: the lint pass catches defective testbench/model
    structure, the opt-in dataflow analysis catches ordering races, CDC
    hazards and statically-unreachable coverage bins — all before any
    cycle is simulated)."""

    FUNCTIONAL_SPEC = "functional_specifications"
    VERIFICATION_IMPL = "verification_implementation"
    STATIC_LINT = "static_design_lint"
    STATIC_ANALYSIS = "static_dataflow_analysis"
    MODEL_VERIFICATION = "rtl_and_bca_verification"
    BUS_ACCURATE_COMPARISON = "bus_accurate_comparison"
    SIGNED_OFF = "signed_off"


@dataclass
class FlowEvent:
    """One transition taken by the flow."""

    state: FlowState
    detail: str


@dataclass
class FlowOutcome:
    """Where the flow ended and why."""

    signed_off: bool
    iterations: int
    history: List[FlowEvent]
    final_report: Optional[ConfigReport]

    def render(self) -> str:
        lines = [
            f"Common verification flow: "
            f"{'SIGNED OFF' if self.signed_off else 'stopped'} after "
            f"{self.iterations} verification iteration(s)"
        ]
        for event in self.history:
            lines.append(f"  [{event.state.value}] {event.detail}")
        return "\n".join(lines) + "\n"


class CommonVerificationFlow:
    """Executable Figure 4/5 for one node configuration.

    ``fix_bca`` models the "low alignment rate → fix the BCA model" loop:
    it is called with the current bug set and returns the bug set of the
    next BCA drop (an empty set is the fixed model).

    ``analysis`` adds the static dataflow-analysis gate (races, CDC,
    cross-view cones, UNR) after the lint gate; like lint, it runs before
    any cycle is simulated and error findings stop the flow.

    ``symbolic`` strengthens that gate with the symbolic pass (and
    implies ``analysis=True``): both views are lifted and every port must
    be proven functionally RTL≡BCA-equivalent before a single cycle is
    simulated.  When the current BCA drop carries known bugs the proof
    fails statically — the flow records the disproof, applies the fix
    (mirroring the dynamic "low alignment rate" loop, but without
    running a regression first) and re-proves.

    ``telemetry`` (an optional
    :class:`~repro.telemetry.TelemetryConfig`) is threaded into every
    regression the flow runs; since the flow may iterate several times,
    each iteration's side-channel files are tagged ``iterN`` (e.g.
    ``metrics.iter2.json``) so no iteration overwrites another.

    ``resilience`` (an optional
    :class:`~repro.regression.resilience.ResilienceConfig`) is threaded
    the same way; a configured checkpoint journal is likewise tagged per
    iteration (``journal.iter2.jsonl``) so resuming an interrupted
    iteration never replays a previous one.

    ``workers``/``cache_dir`` thread straight into every regression the
    flow runs: with workers the iterations execute on the distributed
    leased-worker service, and with a cache the later iterations reuse
    every run whose coordinates an earlier one already simulated (the
    fix loop re-runs only what the fix invalidated — BCA entries key on
    their bug set, the RTL entries hit the cache unchanged).
    ``incremental=True`` additionally keys the cache on cone-scoped
    semantic fingerprints (:mod:`repro.analysis.impact`), so across
    *source* edits only the entries the edit's fan-out cone can affect
    re-execute.
    """

    def __init__(
        self,
        config: NodeConfig,
        tests: Optional[Sequence[str]] = None,
        seeds: Sequence[int] = (1,),
        workdir: Optional[str] = None,
        initial_bca_bugs: Sequence[str] = (),
        max_iterations: int = 4,
        lint: bool = True,
        analysis: bool = False,
        symbolic: bool = False,
        jobs: int = 1,
        telemetry: Optional[TelemetryConfig] = None,
        resilience: Optional["ResilienceConfig"] = None,
        kernel: str = "delta",
        triage: bool = False,
        workers: int = 0,
        cache_dir: Optional[str] = None,
        incremental: bool = False,
    ):
        self.config = config
        self.tests = tests
        self.seeds = seeds
        self.workdir = workdir
        self.bca_bugs = frozenset(initial_bca_bugs)
        self.max_iterations = max_iterations
        self.lint = lint
        self.analysis = analysis or symbolic
        self.symbolic = symbolic
        self.jobs = jobs
        self.kernel = kernel
        self.workers = workers
        self.cache_dir = cache_dir
        if incremental and not cache_dir:
            raise ValueError(
                "incremental=True requires a result cache (cache_dir)")
        #: Cone-scoped semantic cache keys for every iteration's batch:
        #: across checkouts, only the entries a source edit's fan-out
        #: cone can affect re-execute (see repro.analysis.impact).
        self.incremental = incremental
        #: Auto-triage failing entries each iteration; the localized
        #: suspects are folded into the "fix the BCA model" transitions
        #: so the fix loop starts from a named process, not a hunch.
        self.triage = triage
        self.telemetry = (
            telemetry if telemetry is not None else TelemetryConfig()
        )
        self.resilience = (
            resilience if resilience is not None else ResilienceConfig()
        )
        self._iteration = 0
        self.history: List[FlowEvent] = []
        self.state = FlowState.FUNCTIONAL_SPEC

    def _enter(self, state: FlowState, detail: str) -> None:
        self.state = state
        self.history.append(FlowEvent(state, detail))

    def _extend_suite(self) -> None:
        """Grow the suite toward full coverage: first add the missing test
        cases, then extra seeds — the 'develop specific test files' loop."""
        from .testcases import TESTCASES

        current = list(self.tests) if self.tests is not None \
            else list(TESTCASES)
        missing = [name for name in TESTCASES if name not in current]
        if missing:
            self.tests = current + missing
        else:
            self.seeds = list(self.seeds) + [max(self.seeds) + 1]

    def _run_lint(self) -> bool:
        """Static lint gate: both views, before any cycle is simulated.

        Returns True when no error-severity finding remains; warnings are
        recorded in the history but do not block the flow.
        """
        from ..lint import lint_config

        result = lint_config(self.config)
        n_warn = sum(
            1 for f in result.all_findings()
            if not f.waived and f.severity.value == "warning"
        )
        if result.has_errors:
            bad = [
                f for f in result.all_findings()
                if not f.waived and f.severity.value == "error"
            ]
            self._enter(
                FlowState.STATIC_LINT,
                f"{len(bad)} error-severity finding(s) "
                f"({', '.join(sorted({f.rule for f in bad}))}): "
                "fix the design before simulating",
            )
            return False
        self._enter(
            FlowState.STATIC_LINT,
            "both views lint clean and expose identical port interfaces"
            + (f" ({n_warn} warning(s))" if n_warn else ""),
        )
        return True

    def _run_analysis(self) -> bool:
        """Static dataflow-analysis gate (opt-in via ``analysis=True``).

        Races, CDC hazards and in-model-but-unreachable coverage bins
        are error-severity and block the flow; the UNR summary of the
        pruned bins is recorded in the history either way.  With
        ``symbolic`` on, the gate also demands a functional RTL≡BCA
        equivalence proof per port — a disproof caused by the current
        BCA bug set triggers the fix loop statically (no cycle run) and
        the fixed model is re-proven.
        """
        from ..analysis import analyze_config

        result = analyze_config(
            self.config, symbolic=self.symbolic,
            bca_bugs=tuple(sorted(self.bca_bugs)),
        )
        if (self.symbolic and self.bca_bugs
                and result.symbolic.mismatched_ports):
            ports = result.symbolic.mismatched_ports
            self._enter(
                FlowState.STATIC_ANALYSIS,
                f"symbolic RTL=BCA proof failed on {len(ports)} port(s) "
                f"({', '.join(ports)}): fix the BCA model before "
                "simulating",
            )
            self.bca_bugs = frozenset()  # the fix, applied statically
            result = analyze_config(self.config, symbolic=True)
        if result.has_errors:
            bad = [
                f for f in result.all_findings()
                if not f.waived and f.severity.value == "error"
            ]
            self._enter(
                FlowState.STATIC_ANALYSIS,
                f"{len(bad)} error-severity finding(s) "
                f"({', '.join(sorted({f.rule for f in bad}))}): "
                "fix the design before simulating",
            )
            return False
        counts = result.unr.counts() if result.unr is not None else {}
        unr_note = (
            f"; UNR: {counts.get('UNREACHABLE', 0)} bin(s) proven "
            f"unreachable, {counts.get('UNKNOWN', 0)} unknown"
            if counts else ""
        )
        sym_note = ""
        if self.symbolic and result.symbolic is not None:
            sym = result.symbolic
            upgraded = (
                len(sym.unr_upgrade.deltas)
                if sym.unr_upgrade is not None else 0
            )
            sym_note = (
                f"; symbolic: {len(sym.ports)} port(s) proven RTL=BCA "
                f"equivalent, {upgraded} UNR verdict(s) upgraded to "
                f"exact proofs, {sym.unknown_unr} UNKNOWN"
            )
        self._enter(
            FlowState.STATIC_ANALYSIS,
            "no races, no clock-domain crossings, port cones equal "
            f"across views{unr_note}{sym_note}",
        )
        return True

    def _run_regression(self) -> ConfigReport:
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry = telemetry.with_tag(f"iter{self._iteration}")
        resilience = self.resilience
        if resilience.journal_path:
            resilience = resilience.with_tag(f"iter{self._iteration}")
        runner = RegressionRunner(
            [self.config], tests=self.tests, seeds=self.seeds,
            workdir=self.workdir, bca_bugs=self.bca_bugs,
            jobs=self.jobs, telemetry=telemetry, resilience=resilience,
            kernel=self.kernel, triage=self.triage,
            workers=self.workers, cache_dir=self.cache_dir,
            incremental=self.incremental,
        )
        return runner.run().configs[0]

    @staticmethod
    def _triage_note(entries) -> str:
        """Summarize the localized suspects of the triaged entries for a
        fix-loop transition (empty string without triage payloads)."""
        triaged = [e for e in entries if e.triage is not None]
        localized = [e for e in triaged if e.triage.signal is not None]
        if not localized:
            return ""
        first = localized[0].triage
        suspects = sorted({
            e.triage.top_suspect for e in localized
            if e.triage.top_suspect is not None
        })
        note = (
            f" (triage: first divergence {first.signal} @ cycle "
            f"{first.cycle}"
        )
        if suspects:
            note += f"; top suspect(s): {', '.join(suspects)}"
        return note + ")"

    def execute(self) -> FlowOutcome:
        """Run the flow to sign-off (or give up after max_iterations)."""
        self._enter(FlowState.FUNCTIONAL_SPEC, "specification signed off")
        self._enter(
            FlowState.VERIFICATION_IMPL,
            "common environment built from the functional spec only",
        )
        if self.lint and not self._run_lint():
            return FlowOutcome(False, 0, self.history, None)
        if self.analysis and not self._run_analysis():
            return FlowOutcome(False, 0, self.history, None)
        report: Optional[ConfigReport] = None
        for iteration in range(1, self.max_iterations + 1):
            self._iteration = iteration
            self._enter(
                FlowState.MODEL_VERIFICATION,
                f"iteration {iteration}: same seeded suite on RTL and BCA "
                f"(BCA bugs present: {sorted(self.bca_bugs) or 'none'})",
            )
            report = self._run_regression()
            if not report.all_passed:
                failed = [e for e in report.entries if not e.both_passed]
                self._enter(
                    FlowState.MODEL_VERIFICATION,
                    f"checkers failed on {len(failed)} run(s): fix the BCA "
                    "model and re-verify"
                    + self._triage_note(failed),
                )
                self.bca_bugs = frozenset()  # the fix
                continue
            if not report.full_functional_coverage:
                self._enter(
                    FlowState.MODEL_VERIFICATION,
                    "functional coverage below 100%: extend the test suite",
                )
                self._extend_suite()
                continue
            self._enter(
                FlowState.BUS_ACCURATE_COMPARISON,
                f"full coverage reached; comparing VCDs "
                f"(min port rate {report.min_alignment * 100:.2f}%)",
            )
            if report.min_alignment < SIGNOFF_THRESHOLD:
                self._enter(
                    FlowState.MODEL_VERIFICATION,
                    "low alignment rate: fix the BCA model and re-verify"
                    + self._triage_note(report.entries),
                )
                self.bca_bugs = frozenset()  # the fix
                continue
            self._enter(
                FlowState.SIGNED_OFF,
                f"all ports >= {SIGNOFF_THRESHOLD * 100:.0f}%: BCA model "
                "signed off",
            )
            return FlowOutcome(True, iteration, self.history, report)
        return FlowOutcome(False, self.max_iterations, self.history, report)
