"""The coordinator↔worker wire protocol of the distributed regression
service.

Deliberately tiny: **length-prefixed JSON frames over TCP**.  Every
frame is a 4-byte big-endian length followed by that many bytes of
UTF-8 JSON (one object).  Rich values — jobs, run results, alignment
reports — ride inside frames as *payload strings*: zlib-compressed
pickles, base64-armored so they embed in JSON.  That keeps the framing
layer trivially debuggable (``nc`` + ``head -c`` shows you everything)
while the payloads reuse the exact picklable job/result values the
process-pool engine already ships across its own boundary.

Frame types (``type`` field):

========== ============ ==========================================
type       direction    fields
========== ============ ==========================================
hello      worker → co  ``token``, ``pid``, ``worker_id``
job        co → worker  ``job_id``, ``kind`` (run|compare|triage),
                        ``job`` (payload), ``heartbeat`` (seconds)
heartbeat  worker → co  ``job_id``
result     worker → co  ``job_id``, ``outcome`` (payload)
shutdown   co → worker  —
========== ============ ==========================================

A frame that fails to parse (truncated, oversized, corrupt bytes) is a
:class:`ProtocolError`; the coordinator treats the connection as
poisoned — the worker is dropped and its leased job re-leased — rather
than guessing at intent.
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import struct
import threading
import zlib
from typing import Optional

#: Frames beyond this are a protocol violation, not a big result.
MAX_FRAME_BYTES = 1 << 30

#: struct format of the length prefix.
_HEADER = ">I"
_HEADER_BYTES = 4


class ProtocolError(Exception):
    """The peer sent bytes that are not a well-formed frame."""


def encode_payload(value) -> str:
    """Arm a picklable value for transport inside a JSON frame."""
    return base64.b64encode(
        zlib.compress(pickle.dumps(value, protocol=4))).decode("ascii")


def decode_payload(text: str):
    return pickle.loads(zlib.decompress(base64.b64decode(text)))


def frame_bytes(obj: dict) -> bytes:
    """Serialize one frame body (without the length prefix)."""
    return json.dumps(obj, sort_keys=True).encode("utf-8")


class FrameConnection:
    """One framed TCP connection.

    Sending is serialized by a lock (the worker's heartbeat thread and
    its main loop share the socket); receiving is single-reader.
    """

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._send_lock = threading.Lock()
        self._closed = False

    # -- send ---------------------------------------------------------------

    def send(self, obj: dict) -> None:
        self.send_raw(frame_bytes(obj))

    def send_raw(self, body: bytes) -> None:
        """Send pre-serialized frame bytes (the chaos ``net-corrupt-frame``
        hook flips a byte in ``body`` before calling this)."""
        header = struct.pack(_HEADER, len(body))
        with self._send_lock:
            self.sock.sendall(header + body)

    # -- receive ------------------------------------------------------------

    def _recv_exact(self, count: int) -> Optional[bytes]:
        chunks = []
        remaining = count
        while remaining:
            chunk = self.sock.recv(remaining)
            if not chunk:
                if remaining == count and not chunks:
                    return None  # clean EOF on a frame boundary
                raise ProtocolError(
                    f"connection closed mid-frame ({count - remaining}"
                    f"/{count} bytes)")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv(self) -> Optional[dict]:
        """Read one frame; ``None`` on clean EOF,
        :class:`ProtocolError` on anything malformed."""
        header = self._recv_exact(_HEADER_BYTES)
        if header is None:
            return None
        (length,) = struct.unpack(_HEADER, header)
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame length {length} exceeds the "
                                f"{MAX_FRAME_BYTES}-byte ceiling")
        body = self._recv_exact(length)
        if body is None:
            raise ProtocolError("connection closed before frame body")
        try:
            frame = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"corrupt frame: {exc}")
        if not isinstance(frame, dict) or "type" not in frame:
            raise ProtocolError("frame is not an object with a 'type'")
        return frame

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass
