"""Worker process of the distributed regression service.

Spawned (loopback) by the coordinator as::

    python -m repro.regression.worker --connect HOST:PORT --token TOKEN

The worker connects back, authenticates with the one-batch token, and
then loops: receive a job frame, execute it through the *same* guarded
wrappers the process-pool engine uses
(:func:`~repro.regression.resilience.guarded_execute_run` and friends —
so crash isolation, chaos hooks and structured failures behave
identically at any distance), stream heartbeats while busy, and send
the outcome back as a result frame.  Artifacts (VCDs, reports) are
written directly to the batch workdir: loopback workers share the
coordinator's filesystem; remote hosts would add an artifact-upload
frame, which the protocol leaves room for.

A worker is deliberately stateless: it owns no queue, no journal and no
cache.  Everything durable lives with the coordinator, so killing a
worker at any instant loses at most the single job it was leasing.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading
import time
from typing import List, Optional

from . import chaos
from .protocol import FrameConnection, ProtocolError, decode_payload, \
    encode_payload, frame_bytes


def _guards():
    # Imported lazily so ``--help`` stays instant.
    from .resilience import (
        guarded_execute_compare,
        guarded_execute_run,
        guarded_execute_triage,
    )

    return {
        "run": guarded_execute_run,
        "compare": guarded_execute_compare,
        "triage": guarded_execute_triage,
    }


def _heartbeat_loop(conn: FrameConnection, job_id: int, interval: float,
                    stop: threading.Event) -> None:
    """Send a heartbeat for ``job_id`` every ``interval`` seconds until
    the job finishes; a send failure means the coordinator is gone and
    the worker's main loop will discover it on its own."""
    while not stop.wait(interval):
        try:
            conn.send({"type": "heartbeat", "job_id": job_id})
        except OSError:
            return


def _corrupt(body: bytes) -> bytes:
    """Flip one byte in the middle of a frame body (chaos
    ``net-corrupt-frame``)."""
    if not body:
        return body
    position = len(body) // 2
    return (body[:position] + bytes([body[position] ^ 0xFF])
            + body[position + 1:])


def serve(host: str, port: int, token: str, worker_id: str) -> int:
    """Connect to the coordinator and execute jobs until shutdown."""
    try:
        sock = socket.create_connection((host, port), timeout=10.0)
    except OSError as exc:
        print(f"worker {worker_id}: cannot reach coordinator "
              f"{host}:{port}: {exc}", file=sys.stderr)
        return 2
    sock.settimeout(None)
    conn = FrameConnection(sock)
    guards = _guards()
    try:
        conn.send({"type": "hello", "token": token, "pid": os.getpid(),
                   "worker_id": worker_id})
        while True:
            try:
                frame = conn.recv()
            except ProtocolError:
                return 2
            if frame is None or frame.get("type") == "shutdown":
                return 0
            if frame.get("type") != "job":
                continue
            job_id = frame["job_id"]
            kind = frame["kind"]
            job = decode_payload(frame["job"])
            stop = threading.Event()
            beat = threading.Thread(
                target=_heartbeat_loop,
                args=(conn, job_id, float(frame.get("heartbeat", 1.0)),
                      stop),
                daemon=True,
            )
            beat.start()
            try:
                outcome = guards[kind](job)
            finally:
                stop.set()
                beat.join()
            rule = chaos.net_rule_for(job) if kind == "run" else None
            body = frame_bytes({
                "type": "result", "job_id": job_id,
                "outcome": encode_payload(outcome),
            })
            if rule is not None and rule.mode == "net-drop":
                # Partition: the work happened, the result never
                # arrives; the coordinator re-leases after expiry.
                return 0
            if rule is not None and rule.mode == "net-delay":
                time.sleep(chaos.NET_DELAY_SECONDS)
            if rule is not None and rule.mode == "net-corrupt-frame":
                body = _corrupt(body)
            try:
                conn.send_raw(body)
            except OSError:
                # Coordinator already reclaimed our lease (or died);
                # nothing useful left to do with the result.
                return 0
            if rule is not None and rule.mode == "net-corrupt-frame":
                # The coordinator will drop this connection as
                # poisoned; exit cleanly rather than spin on it.
                return 0
    finally:
        conn.close()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.regression.worker",
        description="Worker process of the distributed regression "
                    "service; spawned by the coordinator, not by hand.",
    )
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address to dial back to")
    parser.add_argument("--token", required=True,
                        help="one-batch authentication token")
    parser.add_argument("--worker-id", default=None, metavar="ID",
                        help="stable identity for logs and telemetry "
                             "(default: w<pid>)")
    args = parser.parse_args(argv)
    host, _, port_text = args.connect.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        print(f"error: bad --connect address {args.connect!r}",
              file=sys.stderr)
        return 2
    worker_id = args.worker_id or f"w{os.getpid()}"
    return serve(host or "127.0.0.1", port, args.token, worker_id)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
