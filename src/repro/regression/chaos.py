"""Deterministic fault injection for the resilience test suite.

The resilience layer needs reproducible worker crashes, hard process
deaths, hangs and corrupt VCDs to test against.  This module provides a
test-only injection point keyed off the ``REPRO_CHAOS`` environment
variable, which crosses the process-pool boundary for free (workers
inherit the parent's environment).  When the variable is unset — the
production case — every hook is a no-op costing one dict lookup.

Spec grammar (semicolon-separated rules)::

    REPRO_CHAOS = "MODE:CONFIG:TEST:SEED:VIEW[:LIMIT]; ..."

* ``MODE`` — one of :data:`CHAOS_MODES`:

  - ``crash``        raise ``RuntimeError`` inside the run job,
  - ``exit``         ``os._exit(42)`` (kills the worker ⇒ broken pool),
  - ``hang``         sleep far past any sane deadline (watchdog food),
  - ``truncate-vcd`` let the run succeed, then corrupt its VCD so the
    compare stage fails on a truncated dump,
  - ``worker-kill``  ``os._exit(43)`` — a farm scheduler OOM-killing or
    pre-empting a remote worker mid-job (the distributed coordinator
    sees a dead connection and re-leases the job),
  - ``net-drop``     complete the run but drop the connection before
    the result frame goes out (a network partition: the work happened,
    the coordinator never learns),
  - ``net-delay``    complete the run, then sit on the result frame for
    :data:`NET_DELAY_SECONDS` (lease-expiry food: the coordinator
    reclaims the job and must discard the late result),
  - ``net-corrupt-frame`` complete the run but flip a byte inside the
    result frame, so the coordinator's framing layer rejects it,
  - ``cache-corrupt`` let the run succeed and be stored, then flip a
    byte inside its result-cache entry so the next lookup must detect
    the corruption, quarantine the entry and re-execute.

* ``CONFIG``/``TEST``/``SEED``/``VIEW`` — match fields for one
  (config, test, seed, view) run; ``*`` matches anything.
* ``LIMIT`` — trigger only while the job's attempt number is below it
  (so ``:1`` faults the first attempt and lets the retry succeed);
  omitted means trigger on every attempt.

The attempt number rides on :class:`~repro.regression.parallel.RunJob`
itself, so limited rules are deterministic without any cross-process
shared state.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

#: Environment variable holding the chaos spec.
CHAOS_ENV = "REPRO_CHAOS"

CHAOS_MODES = ("crash", "exit", "hang", "truncate-vcd", "worker-kill",
               "net-drop", "net-delay", "net-corrupt-frame",
               "cache-corrupt")

#: The modes the in-process run hooks act on (everything a pool worker
#: can suffer); the net/cache faults live in their own hooks so one
#: rule never shadows another hook's modes.
EXEC_MODES = ("crash", "exit", "hang", "worker-kill")

#: Network-fault modes, applied by the distributed worker around its
#: result frame.
NET_MODES = ("net-drop", "net-delay", "net-corrupt-frame")

#: How long a ``hang`` sleeps; far beyond any test deadline, far below
#: a CI job timeout.
HANG_SECONDS = 600.0

#: How long ``net-delay`` sits on a result frame — longer than any test
#: lease, far below a CI job timeout.
NET_DELAY_SECONDS = 3.0


class ChaosError(ValueError):
    """Malformed ``REPRO_CHAOS`` spec."""


@dataclass(frozen=True)
class ChaosRule:
    """One parsed directive of the chaos spec."""

    mode: str
    config: str
    test: str
    seed: str
    view: str
    limit: Optional[int] = None

    def matches(self, config: str, test: str, seed: int, view: str,
                attempt: int) -> bool:
        for pattern, value in (
            (self.config, config), (self.test, test),
            (self.seed, str(seed)), (self.view, view),
        ):
            if pattern != "*" and pattern != value:
                return False
        return self.limit is None or attempt < self.limit


@dataclass(frozen=True)
class ChaosSpec:
    """All active rules; :meth:`from_env` is empty when the var is unset."""

    rules: Tuple[ChaosRule, ...] = ()

    @classmethod
    def parse(cls, text: str) -> "ChaosSpec":
        rules = []
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            parts = chunk.split(":")
            if len(parts) not in (5, 6):
                raise ChaosError(
                    f"bad chaos rule {chunk!r}: want "
                    "MODE:CONFIG:TEST:SEED:VIEW[:LIMIT]"
                )
            mode = parts[0]
            if mode not in CHAOS_MODES:
                raise ChaosError(
                    f"bad chaos mode {mode!r}: want one of {CHAOS_MODES}")
            limit: Optional[int] = None
            if len(parts) == 6:
                try:
                    limit = int(parts[5])
                except ValueError:
                    raise ChaosError(f"bad chaos limit {parts[5]!r}")
            rules.append(ChaosRule(mode, parts[1], parts[2], parts[3],
                                   parts[4], limit))
        return cls(tuple(rules))

    @classmethod
    def from_env(cls, environ=os.environ) -> "ChaosSpec":
        text = environ.get(CHAOS_ENV, "")
        if not text:
            return _INERT
        return cls.parse(text)

    def rule_for(self, config: str, test: str, seed: int, view: str,
                 attempt: int,
                 modes: Optional[Tuple[str, ...]] = None,
                 ) -> Optional[ChaosRule]:
        for rule in self.rules:
            if modes is not None and rule.mode not in modes:
                continue
            if rule.matches(config, test, seed, view, attempt):
                return rule
        return None


_INERT = ChaosSpec()


def _corrupt_vcd(path: str) -> None:
    """Truncate a finished dump mid-header — exactly what a worker killed
    before ``finish()`` used to leave behind pre-atomic-writes."""
    size = os.path.getsize(path)
    with open(path, "r+", encoding="ascii") as handle:
        handle.truncate(min(200, size // 2))


def inject_before_run(job) -> None:
    """Fault hook at the top of a guarded run job (worker side)."""
    rule = ChaosSpec.from_env().rule_for(
        job.config.name, job.test_name, job.seed, job.view, job.attempt,
        modes=EXEC_MODES)
    if rule is None:
        return
    if rule.mode == "crash":
        raise RuntimeError(
            f"chaos: injected crash ({job.config.name}/{job.test_name}"
            f"/s{job.seed}/{job.view}, attempt {job.attempt})"
        )
    if rule.mode == "exit":
        os._exit(42)
    if rule.mode == "worker-kill":
        os._exit(43)
    if rule.mode == "hang":
        time.sleep(HANG_SECONDS)


def inject_after_run(job) -> None:
    """Fault hook after a run job completed (worker side)."""
    rule = ChaosSpec.from_env().rule_for(
        job.config.name, job.test_name, job.seed, job.view, job.attempt,
        modes=("truncate-vcd",))
    if rule is not None and job.vcd_path:
        _corrupt_vcd(job.vcd_path)


def net_rule_for(job) -> Optional[ChaosRule]:
    """The network fault (if any) a distributed worker must apply to
    this job's result frame.  ``None`` in every production batch."""
    return ChaosSpec.from_env().rule_for(
        job.config.name, job.test_name, job.seed, job.view,
        getattr(job, "attempt", 0), modes=NET_MODES)


def _flip_byte(path: str, offset: int = -1) -> None:
    """Flip one byte of ``path`` in place (default: in the middle)."""
    size = os.path.getsize(path)
    if not size:
        return
    position = size // 2 if offset < 0 else min(offset, size - 1)
    with open(path, "r+b") as handle:
        handle.seek(position)
        byte = handle.read(1)
        handle.seek(position)
        handle.write(bytes([byte[0] ^ 0xFF]))


def inject_after_cache_store(job, entry_path: Optional[str]) -> None:
    """Fault hook after a run's result was published to the result
    cache (coordinator side): ``cache-corrupt`` flips one byte of the
    just-written entry so the *next* lookup exercises the
    verify-quarantine-reexecute path."""
    if entry_path is None:
        return
    rule = ChaosSpec.from_env().rule_for(
        job.config.name, job.test_name, job.seed, job.view,
        getattr(job, "attempt", 0), modes=("cache-corrupt",))
    if rule is not None:
        _flip_byte(entry_path)
