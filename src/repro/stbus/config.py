"""Node configuration — the "HDL parameters" of the paper.

Section 5: the node "can manage up to 32 initiators and 32 targets and its
data interface width varies from 8 to 256 bits.  It can have three
different architectures: shared bus, full crossbar or partial crossbar.
The Node supports 6 arbitration types ... It has an optional programmable
port"; and the regression tool "can load text files defining HDL
parameters of each [configuration]".

:class:`NodeConfig` is that parameter set, with validation, and with the
text-file round-trip (:meth:`NodeConfig.to_text` /
:meth:`NodeConfig.from_text`) the regression tool uses for its
configuration directories.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from .arbitration import ArbitrationPolicy
from .routing import AddressMap, Region
from .types import LEGAL_DATA_WIDTHS, ProtocolType


class ConfigError(ValueError):
    """An illegal node configuration."""


class Architecture(enum.Enum):
    """Node datapath architectures (Section 3)."""

    SHARED_BUS = "shared_bus"
    FULL_CROSSBAR = "full_crossbar"
    PARTIAL_CROSSBAR = "partial_crossbar"


@dataclass
class NodeConfig:
    """Complete parameterisation of one STBus node instance."""

    protocol_type: ProtocolType = ProtocolType.T2
    n_initiators: int = 2
    n_targets: int = 2
    data_width_bits: int = 32
    architecture: Architecture = Architecture.FULL_CROSSBAR
    arbitration: ArbitrationPolicy = ArbitrationPolicy.FIXED_PRIORITY
    #: PARTIAL_CROSSBAR only: allowed (initiator, target) paths.
    connectivity: Optional[FrozenSet[Tuple[int, int]]] = None
    #: Request/response pipeline register stages through the node (>= 1).
    pipe_depth: int = 1
    #: Per-initiator split-transaction credit (max outstanding packets).
    max_outstanding: int = 4
    #: Optional Type I programming port for arbitration parameters.
    has_programming_port: bool = False
    #: Arbitration parameters (policy dependent; None = policy defaults).
    priorities: Optional[Sequence[int]] = None
    latency_budgets: Optional[Sequence[int]] = None
    bandwidth_allocations: Optional[Sequence[int]] = None
    bandwidth_window: int = 32
    #: Address decoding; None = AddressMap.default(n_targets).
    address_map: Optional[AddressMap] = None
    #: Byte ordering of the datapath (CATG config lists "endianess").
    big_endian: bool = False
    #: Free-form name used in reports and file names.
    name: str = "node"

    def __post_init__(self) -> None:
        self.validate()

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        if self.protocol_type not in (ProtocolType.T2, ProtocolType.T3):
            raise ConfigError("node supports Type II or Type III protocol")
        if not 1 <= self.n_initiators <= 32:
            raise ConfigError("n_initiators must be in 1..32")
        if not 1 <= self.n_targets <= 32:
            raise ConfigError("n_targets must be in 1..32")
        if self.data_width_bits not in LEGAL_DATA_WIDTHS:
            raise ConfigError(
                f"data width {self.data_width_bits} not in {LEGAL_DATA_WIDTHS}"
            )
        if self.pipe_depth < 1:
            raise ConfigError("pipe_depth must be >= 1")
        if self.max_outstanding < 1:
            raise ConfigError("max_outstanding must be >= 1")
        if self.architecture is Architecture.PARTIAL_CROSSBAR:
            if not self.connectivity:
                raise ConfigError("partial crossbar requires a connectivity set")
            for init, targ in self.connectivity:
                if not (0 <= init < self.n_initiators):
                    raise ConfigError(f"connectivity initiator {init} out of range")
                if not (0 <= targ < self.n_targets):
                    raise ConfigError(f"connectivity target {targ} out of range")
            reachable_targets = {t for _, t in self.connectivity}
            if len(reachable_targets) < self.n_targets:
                raise ConfigError("every target needs at least one allowed path")
        elif self.connectivity is not None:
            raise ConfigError("connectivity is only valid for partial crossbar")
        for name, params in (
            ("priorities", self.priorities),
            ("latency_budgets", self.latency_budgets),
        ):
            if params is not None and len(params) != self.n_initiators:
                raise ConfigError(f"{name} needs one entry per initiator")
        if (
            self.bandwidth_allocations is not None
            and len(self.bandwidth_allocations) != self.n_initiators
        ):
            raise ConfigError("bandwidth_allocations needs one entry per initiator")
        if self.address_map is not None:
            mapped = set(self.address_map.targets())
            if not mapped.issubset(range(self.n_targets)):
                raise ConfigError("address map references unknown targets")

    # -- derived properties ----------------------------------------------------

    @property
    def bus_bytes(self) -> int:
        return self.data_width_bits // 8

    @property
    def resolved_map(self) -> AddressMap:
        if self.address_map is None:
            self.address_map = AddressMap.default(self.n_targets)
        return self.address_map

    def path_allowed(self, initiator: int, target: int) -> bool:
        if self.architecture is Architecture.PARTIAL_CROSSBAR:
            return (initiator, target) in (self.connectivity or frozenset())
        return True

    def reachable_targets(self, initiator: int) -> List[int]:
        return [
            t for t in range(self.n_targets) if self.path_allowed(initiator, t)
        ]

    # -- text round-trip (regression tool configuration files) -----------------

    def to_text(self) -> str:
        """Serialize as the key=value "HDL parameter" text format."""
        lines = [
            f"name = {self.name}",
            f"protocol_type = {self.protocol_type.value}",
            f"n_initiators = {self.n_initiators}",
            f"n_targets = {self.n_targets}",
            f"data_width_bits = {self.data_width_bits}",
            f"architecture = {self.architecture.value}",
            f"arbitration = {self.arbitration.value}",
            f"pipe_depth = {self.pipe_depth}",
            f"max_outstanding = {self.max_outstanding}",
            f"has_programming_port = {int(self.has_programming_port)}",
            f"big_endian = {int(self.big_endian)}",
            f"bandwidth_window = {self.bandwidth_window}",
        ]
        if self.connectivity:
            paths = ";".join(
                f"{i}-{t}" for i, t in sorted(self.connectivity)
            )
            lines.append(f"connectivity = {paths}")
        for key, params in (
            ("priorities", self.priorities),
            ("latency_budgets", self.latency_budgets),
            ("bandwidth_allocations", self.bandwidth_allocations),
        ):
            if params is not None:
                lines.append(f"{key} = {','.join(str(p) for p in params)}")
        if self.address_map is not None:
            regions = ";".join(
                f"{r.base:#x}+{r.size:#x}->{r.target}"
                for r in self.address_map.regions
            )
            lines.append(f"address_map = {regions}")
        return "\n".join(lines) + "\n"

    @staticmethod
    def from_text(text: str) -> "NodeConfig":
        """Parse the key=value format produced by :meth:`to_text`."""
        values: Dict[str, str] = {}
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            if "=" not in line:
                raise ConfigError(f"line {lineno}: expected key = value")
            key, _, value = line.partition("=")
            values[key.strip()] = value.strip()

        def take_int(key: str, default: Optional[int] = None) -> int:
            if key not in values:
                if default is None:
                    raise ConfigError(f"missing required key {key!r}")
                return default
            try:
                return int(values[key], 0)
            except ValueError:
                raise ConfigError(f"key {key!r}: bad integer {values[key]!r}")

        def take_ints(key: str) -> Optional[List[int]]:
            if key not in values:
                return None
            return [int(v, 0) for v in values[key].split(",") if v.strip()]

        connectivity = None
        if "connectivity" in values:
            pairs = set()
            for chunk in values["connectivity"].split(";"):
                if not chunk.strip():
                    continue
                init_s, _, targ_s = chunk.partition("-")
                pairs.add((int(init_s), int(targ_s)))
            connectivity = frozenset(pairs)

        address_map = None
        if "address_map" in values:
            regions = []
            for chunk in values["address_map"].split(";"):
                if not chunk.strip():
                    continue
                base_s, _, rest = chunk.partition("+")
                size_s, _, target_s = rest.partition("->")
                regions.append(
                    Region(int(base_s, 0), int(size_s, 0), int(target_s))
                )
            address_map = AddressMap(regions)

        try:
            protocol = ProtocolType(take_int("protocol_type", 2))
            architecture = Architecture(values.get("architecture", "full_crossbar"))
            arbitration = ArbitrationPolicy(
                values.get("arbitration", "fixed_priority")
            )
        except ValueError as exc:
            raise ConfigError(str(exc))

        return NodeConfig(
            name=values.get("name", "node"),
            protocol_type=protocol,
            n_initiators=take_int("n_initiators", 2),
            n_targets=take_int("n_targets", 2),
            data_width_bits=take_int("data_width_bits", 32),
            architecture=architecture,
            arbitration=arbitration,
            connectivity=connectivity,
            pipe_depth=take_int("pipe_depth", 1),
            max_outstanding=take_int("max_outstanding", 4),
            has_programming_port=bool(take_int("has_programming_port", 0)),
            big_endian=bool(take_int("big_endian", 0)),
            bandwidth_window=take_int("bandwidth_window", 32),
            priorities=take_ints("priorities"),
            latency_budgets=take_ints("latency_budgets"),
            bandwidth_allocations=take_ints("bandwidth_allocations"),
            address_map=address_map,
        )
