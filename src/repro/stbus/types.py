"""STBus protocol types.

The STBus defines three protocol types (Section 3 of the paper):

- **Type I** — simple synchronous handshake, limited command set; used for
  register access and slow peripherals (and for the node's programming
  port in this reproduction).
- **Type II** — adds split transactions and pipelining; read/write up to 64
  bytes, operations groupable into *chunks* (the ``lck`` signal) to keep a
  slave allocated.  Traffic must stay ordered.
- **Type III** — adds out-of-order transactions and asymmetric request/
  response packet lengths on top of Type II.
"""

from __future__ import annotations

import enum


class ProtocolType(enum.Enum):
    """The three STBus protocol types."""

    T1 = 1
    T2 = 2
    T3 = 3

    @property
    def is_packet_based(self) -> bool:
        """Type II/III transfer multi-cell packets; Type I is single-transfer."""
        return self is not ProtocolType.T1

    @property
    def supports_split(self) -> bool:
        """Split (request/response decoupled) transactions."""
        return self is not ProtocolType.T1

    @property
    def supports_out_of_order(self) -> bool:
        """May responses return in a different order than requests?"""
        return self is ProtocolType.T3

    @property
    def symmetric_packets(self) -> bool:
        """Type II keeps request and response packets the same length;
        Type III allows asymmetric lengths (single-cell load requests,
        single-cell store responses)."""
        return self is ProtocolType.T2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"T{self.value}"


#: Field widths shared by every Type II/III interface in this reproduction.
ADDR_WIDTH = 32
OPC_WIDTH = 8
TID_WIDTH = 8
SRC_WIDTH = 6  # up to 32 initiator ports plus margin
PRI_WIDTH = 4
R_OPC_WIDTH = 8

#: Response opcode error flag (bit 0 of ``r_opc``).
R_OPC_ERROR = 0x01

#: Legal data bus widths in bits (Section 5: "from 8 to 256 bits").
LEGAL_DATA_WIDTHS = (8, 16, 32, 64, 128, 256)

#: Largest single operation, in bytes ("up to 64 bytes").
MAX_OPERATION_BYTES = 64
