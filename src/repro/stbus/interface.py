"""Pin-level STBus interface bundles.

Each DUT port is a bundle of named signals, scoped hierarchically so the
VCD shows (and the bus analyzer compares) one scope per port — the paper's
alignment metric is computed "at each port level".

Type II/III bundle (one request channel, one response channel):

=============  ====== ====================================================
signal          width  meaning
=============  ====== ====================================================
``req``          1    request cell valid (held until granted)
``gnt``          1    request cell accepted this cycle
``add``         32    byte address
``opc``          8    operation encoding (:mod:`repro.stbus.opcodes`)
``data``         W    write data lanes
``be``          W/8   byte enables
``eop``          1    last cell of the request packet
``lck``          1    chunk lock: keep the slave for the next packet
``tid``          8    transaction id (out-of-order matching, Type III)
``src``          6    source port tag (driven by the node, target side)
``pri``          4    request priority hint
``r_req``        1    response cell valid
``r_gnt``        1    response cell accepted this cycle
``r_opc``        8    response opcode (bit 0 = error)
``r_data``       W    read data lanes
``r_eop``        1    last cell of the response packet
``r_src``        6    originating initiator port (reflected by the target)
``r_tid``        8    reflected transaction id
=============  ====== ====================================================

A cell transfers on a clock edge where ``req & gnt`` (respectively
``r_req & r_gnt``) were both high during the preceding cycle.
"""

from __future__ import annotations

from typing import List

from ..kernel import Module, Signal
from .packet import Cell, RespCell
from .types import (
    ADDR_WIDTH,
    OPC_WIDTH,
    PRI_WIDTH,
    R_OPC_WIDTH,
    SRC_WIDTH,
    TID_WIDTH,
)

#: Request-channel payload fields, in (name, width-or-None) form.
#: None means "data width dependent" (resolved per port).
REQUEST_FIELDS = (
    ("add", ADDR_WIDTH),
    ("opc", OPC_WIDTH),
    ("data", None),
    ("be", None),
    ("eop", 1),
    ("lck", 1),
    ("tid", TID_WIDTH),
    ("src", SRC_WIDTH),
    ("pri", PRI_WIDTH),
)

RESPONSE_FIELDS = (
    ("r_opc", R_OPC_WIDTH),
    ("r_data", None),
    ("r_eop", 1),
    ("r_src", SRC_WIDTH),
    ("r_tid", TID_WIDTH),
)


class StbusPort:
    """Type II/III signal bundle scoped as ``<module>.<name>.*``."""

    def __init__(self, module: Module, name: str, width_bits: int):
        if width_bits % 8:
            raise ValueError("data width must be a whole number of bytes")
        self.name = f"{module.name}.{name}"
        self.width_bits = width_bits
        self.bus_bytes = width_bits // 8
        make = module.signal
        self.req = make(f"{name}.req")
        self.gnt = make(f"{name}.gnt")
        self.add = make(f"{name}.add", ADDR_WIDTH)
        self.opc = make(f"{name}.opc", OPC_WIDTH)
        self.data = make(f"{name}.data", width_bits)
        self.be = make(f"{name}.be", max(1, width_bits // 8))
        self.eop = make(f"{name}.eop")
        self.lck = make(f"{name}.lck")
        self.tid = make(f"{name}.tid", TID_WIDTH)
        self.src = make(f"{name}.src", SRC_WIDTH)
        self.pri = make(f"{name}.pri", PRI_WIDTH)
        self.r_req = make(f"{name}.r_req")
        self.r_gnt = make(f"{name}.r_gnt")
        self.r_opc = make(f"{name}.r_opc", R_OPC_WIDTH)
        self.r_data = make(f"{name}.r_data", width_bits)
        self.r_eop = make(f"{name}.r_eop")
        self.r_src = make(f"{name}.r_src", SRC_WIDTH)
        self.r_tid = make(f"{name}.r_tid", TID_WIDTH)

    # -- observation ----------------------------------------------------------

    @property
    def request_fired(self) -> bool:
        """A request cell transfers at the next clock edge."""
        return bool(self.req.value and self.gnt.value)

    @property
    def response_fired(self) -> bool:
        return bool(self.r_req.value and self.r_gnt.value)

    def request_cell(self) -> Cell:
        """Snapshot the request-channel fields as a :class:`Cell`."""
        return Cell(
            add=self.add.value,
            opc=self.opc.value,
            data=self.data.value,
            be=self.be.value,
            eop=self.eop.value,
            lck=self.lck.value,
            tid=self.tid.value,
            src=self.src.value,
            pri=self.pri.value,
        )

    def response_cell(self) -> RespCell:
        return RespCell(
            r_opc=self.r_opc.value,
            r_data=self.r_data.value,
            r_eop=self.r_eop.value,
            r_src=self.r_src.value,
            r_tid=self.r_tid.value,
        )

    # -- driving helpers (used by BFMs and the node's output stages) ----------

    def drive_request(self, cell: Cell) -> None:
        self.req.drive(1)
        self.add.drive(cell.add)
        self.opc.drive(cell.opc)
        self.data.drive(cell.data)
        self.be.drive(cell.be)
        self.eop.drive(cell.eop)
        self.lck.drive(cell.lck)
        self.tid.drive(cell.tid)
        self.src.drive(cell.src)
        self.pri.drive(cell.pri)

    def idle_request(self) -> None:
        self.req.drive(0)
        self.eop.drive(0)
        self.lck.drive(0)

    def drive_response(self, cell: RespCell) -> None:
        self.r_req.drive(1)
        self.r_opc.drive(cell.r_opc)
        self.r_data.drive(cell.r_data)
        self.r_eop.drive(cell.r_eop)
        self.r_src.drive(cell.r_src)
        self.r_tid.drive(cell.r_tid)

    def idle_response(self) -> None:
        self.r_req.drive(0)
        self.r_eop.drive(0)

    def signals(self) -> List[Signal]:
        """All bundle signals (the analyzer's per-port comparison set)."""
        return [
            self.req, self.gnt, self.add, self.opc, self.data, self.be,
            self.eop, self.lck, self.tid, self.src, self.pri,
            self.r_req, self.r_gnt, self.r_opc, self.r_data, self.r_eop,
            self.r_src, self.r_tid,
        ]

    def request_signals(self) -> List[Signal]:
        """Request-channel fields owned by the requesting side (not gnt).

        This is the write set of whatever drives requests into this port —
        an initiator BFM, or the node's target-side output stage.  Used by
        the static lint pass's clocked write/read declarations.
        """
        return [
            self.req, self.add, self.opc, self.data, self.be,
            self.eop, self.lck, self.tid, self.src, self.pri,
        ]

    def response_signals(self) -> List[Signal]:
        """Response-channel fields owned by the responding side (not r_gnt)."""
        return [
            self.r_req, self.r_opc, self.r_data, self.r_eop,
            self.r_src, self.r_tid,
        ]


#: Type I command encodings (limited command set).
T1_IDLE = 0
T1_READ = 1
T1_WRITE = 2


class Type1Port:
    """Type I bundle: synchronous req/ack handshake, single outstanding.

    Used for register access — in this reproduction, the node's optional
    programming port and the register decoder component.
    """

    def __init__(self, module: Module, name: str, width_bits: int = 32):
        if width_bits % 8:
            raise ValueError("data width must be a whole number of bytes")
        self.name = f"{module.name}.{name}"
        self.width_bits = width_bits
        self.bus_bytes = width_bits // 8
        make = module.signal
        self.req = make(f"{name}.req")
        self.ack = make(f"{name}.ack")
        self.opc = make(f"{name}.opc", 2)
        self.add = make(f"{name}.add", ADDR_WIDTH)
        self.wdata = make(f"{name}.wdata", width_bits)
        self.rdata = make(f"{name}.rdata", width_bits)
        self.be = make(f"{name}.be", max(1, width_bits // 8))

    @property
    def fired(self) -> bool:
        """The transfer completes at the next clock edge."""
        return bool(self.req.value and self.ack.value)

    def signals(self) -> List[Signal]:
        return [
            self.req, self.ack, self.opc, self.add,
            self.wdata, self.rdata, self.be,
        ]
