"""Cells, packets and transactions.

STBus Type II/III traffic is packet based: a *transaction* (one operation)
is a **request packet** travelling initiator→target and a **response
packet** travelling back.  A packet is a sequence of *cells*; one cell is
what the bus transfers in one granted clock cycle.  Transactions may be
grouped into *chunks* via the ``lck`` flag on the last cell, which keeps
the slave allocated for the next packet of the same initiator.

This module is pure data + geometry: building the per-cycle cell fields
from a transaction spec and re-assembling data bytes from observed cells.
Both design views, the BFMs and the monitors share it, exactly as both
testbenches in the paper share the STBus functional spec.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .opcodes import Opcode, OpKind
from .types import ProtocolType, R_OPC_ERROR


class PacketError(ValueError):
    """Inconsistent packet construction or re-assembly."""


def int_to_bytes(value: int, size: int) -> bytes:
    """Little-endian fixed-width conversion."""
    return value.to_bytes(size, "little")


def bytes_to_int(data: bytes) -> int:
    return int.from_bytes(data, "little")


@dataclass
class Cell:
    """One request-channel beat (the fields sampled when req & gnt)."""

    add: int
    opc: int
    data: int = 0
    be: int = 0
    eop: int = 0
    lck: int = 0
    tid: int = 0
    src: int = 0
    pri: int = 0

    def key_fields(self) -> tuple:
        """Fields compared for protocol-stability checks."""
        return (self.add, self.opc, self.data, self.be, self.eop,
                self.lck, self.tid, self.pri)


@dataclass
class RespCell:
    """One response-channel beat (the fields sampled when r_req & r_gnt)."""

    r_opc: int
    r_data: int = 0
    r_eop: int = 0
    r_src: int = 0
    r_tid: int = 0

    @property
    def is_error(self) -> bool:
        return bool(self.r_opc & R_OPC_ERROR)

    def key_fields(self) -> tuple:
        return (self.r_opc, self.r_data, self.r_eop, self.r_src, self.r_tid)


_txn_ids = itertools.count()


@dataclass
class Transaction:
    """One STBus operation as the verification environment sees it.

    Built by a sequence/BFM before injection, then progressively annotated
    by monitors: grant timestamps, the decoded target, observed response
    data.  The scoreboard compares these annotations across ports.
    """

    opcode: Opcode
    address: int
    data: bytes = b""  # write payload (empty for dataless requests)
    tid: int = 0
    pri: int = 0
    lck: int = 0  # chunk flag on the final request cell
    initiator: int = 0  # initiator port index
    uid: int = field(default_factory=lambda: next(_txn_ids))

    # Annotations filled during simulation:
    target: Optional[int] = None
    response_data: bytes = b""
    response_error: bool = False
    request_start: Optional[int] = None
    request_end: Optional[int] = None
    response_start: Optional[int] = None
    response_end: Optional[int] = None

    def __post_init__(self) -> None:
        self.opcode.check_alignment(self.address)
        if self.opcode.kind.carries_request_data:
            if len(self.data) != self.opcode.size:
                raise PacketError(
                    f"{self.opcode} requires {self.opcode.size} data bytes, "
                    f"got {len(self.data)}"
                )
        elif self.data:
            raise PacketError(f"{self.opcode} carries no request data")

    @property
    def latency(self) -> Optional[int]:
        """Cycles from first request cell to last response cell."""
        if self.request_start is None or self.response_end is None:
            return None
        return self.response_end - self.request_start

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"txn#{self.uid} init{self.initiator} {self.opcode} "
            f"@{self.address:#x} tid={self.tid}"
        )


def lane_geometry(opcode: Opcode, address: int, bus_bytes: int):
    """Yield (cell_address, lane_offset, n_bytes) per data cell.

    The burst geometry of an operation: which address, byte-lane offset and
    byte count each data cell covers.  Checkers recompute it to validate
    observed cells against the specification.
    """
    if opcode.size <= bus_bytes:
        yield address, address % bus_bytes, opcode.size
        return
    for k in range(opcode.size // bus_bytes):
        yield address + k * bus_bytes, 0, bus_bytes


def build_request_cells(
    txn: Transaction, bus_bytes: int, protocol: ProtocolType
) -> List[Cell]:
    """Expand a transaction into its request packet cells."""
    opc = txn.opcode.encode()
    n_cells = txn.opcode.request_cells(bus_bytes, protocol)
    cells: List[Cell] = []
    geometry = list(lane_geometry(txn.opcode, txn.address, bus_bytes))
    for idx in range(n_cells):
        add, offset, n_bytes = geometry[idx] if idx < len(geometry) else geometry[-1]
        be = ((1 << n_bytes) - 1) << offset
        data = 0
        if txn.opcode.kind.carries_request_data:
            chunk = txn.data[idx * bus_bytes: idx * bus_bytes + n_bytes] \
                if txn.opcode.size > bus_bytes else txn.data
            data = bytes_to_int(chunk) << (offset * 8)
        cells.append(
            Cell(
                add=add,
                opc=opc,
                data=data,
                be=be,
                eop=1 if idx == n_cells - 1 else 0,
                lck=txn.lck if idx == n_cells - 1 else 0,
                tid=txn.tid,
                pri=txn.pri,
            )
        )
    return cells


def build_response_cells(
    opcode: Opcode,
    bus_bytes: int,
    protocol: ProtocolType,
    data: bytes = b"",
    error: bool = False,
    src: int = 0,
    tid: int = 0,
    address: int = 0,
) -> List[RespCell]:
    """Build the response packet for an operation.

    ``data`` is the read payload for data-carrying responses; it must be
    exactly ``opcode.size`` bytes (or empty on error responses, which pad
    with zero).
    """
    n_cells = opcode.response_cells(bus_bytes, protocol)
    carries = opcode.kind.carries_response_data
    if carries and not error and len(data) != opcode.size:
        raise PacketError(
            f"{opcode} response needs {opcode.size} data bytes, got {len(data)}"
        )
    r_opc = R_OPC_ERROR if error else 0
    cells: List[RespCell] = []
    geometry = list(lane_geometry(opcode, address, bus_bytes))
    for idx in range(n_cells):
        r_data = 0
        if carries and not error:
            _, offset, n_bytes = geometry[idx] if idx < len(geometry) else geometry[-1]
            chunk = data[idx * bus_bytes: idx * bus_bytes + n_bytes] \
                if opcode.size > bus_bytes else data
            r_data = bytes_to_int(chunk) << (offset * 8)
        cells.append(
            RespCell(
                r_opc=r_opc,
                r_data=r_data,
                r_eop=1 if idx == n_cells - 1 else 0,
                r_src=src,
                r_tid=tid,
            )
        )
    return cells


def request_data_from_cells(
    cells: Sequence[Cell], bus_bytes: int
) -> bytes:
    """Re-assemble the write payload from observed request cells."""
    if not cells:
        raise PacketError("empty request packet")
    opcode = Opcode.decode(cells[0].opc)
    if not opcode.kind.carries_request_data:
        return b""
    out = bytearray()
    for cell in cells[: opcode.data_cells(bus_bytes)]:
        offset = cell.add % bus_bytes if opcode.size < bus_bytes else 0
        n_bytes = min(opcode.size, bus_bytes)
        raw = int_to_bytes(cell.data & ((1 << (bus_bytes * 8)) - 1), bus_bytes)
        out.extend(raw[offset: offset + n_bytes])
    return bytes(out[: opcode.size])


def response_data_from_cells(
    cells: Sequence[RespCell], opcode: Opcode, bus_bytes: int, address: int = 0
) -> bytes:
    """Re-assemble the read payload from observed response cells."""
    if not cells:
        raise PacketError("empty response packet")
    if not opcode.kind.carries_response_data:
        return b""
    out = bytearray()
    for cell in cells[: opcode.data_cells(bus_bytes)]:
        offset = address % bus_bytes if opcode.size < bus_bytes else 0
        n_bytes = min(opcode.size, bus_bytes)
        raw = int_to_bytes(cell.r_data & ((1 << (bus_bytes * 8)) - 1), bus_bytes)
        out.extend(raw[offset: offset + n_bytes])
    return bytes(out[: opcode.size])
