"""Arbitration policies of the STBus node.

Section 3/5: "a wide variety of arbitration policies is available ...
bandwidth limitation, latency arbitration, LRU, priority-based arbitration
and others"; the node "supports 6 arbitration types".

The *decision rule* of each policy is part of the functional specification,
so — like the spec document in the paper — this module is shared by the RTL
and the BCA views.  Each view instantiates its **own** policy objects (the
state lives per view); the BCA bug registry can wrap them to inject the
historical model bugs.

Contract, aligned with packet-level bus arbitration:

- :meth:`Arbiter.pick` — pure decision among currently-requesting port
  indices, given the policy state.  Called only when the arbitrated
  resource is free (no packet in progress, no chunk lock).
- :meth:`Arbiter.on_packet_end` — state update when the winner's packet
  completes (LRU recency, round-robin pointer, latency reset).
- :meth:`Arbiter.on_grant_cycle` — per-granted-cycle accounting
  (bandwidth tokens).
- :meth:`Arbiter.tick` — per-cycle ageing for all waiting requesters
  (latency counters, bandwidth replenishment).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence


class ArbitrationPolicy(enum.Enum):
    """The six supported arbitration types."""

    FIXED_PRIORITY = "fixed_priority"
    PROGRAMMABLE_PRIORITY = "programmable_priority"
    LRU = "lru"
    ROUND_ROBIN = "round_robin"
    LATENCY_BASED = "latency_based"
    BANDWIDTH_LIMITED = "bandwidth_limited"


class Arbiter:
    """Base class: fixed-priority (lowest index wins)."""

    policy = ArbitrationPolicy.FIXED_PRIORITY

    def __init__(self, n_requesters: int):
        if n_requesters < 1:
            raise ValueError("arbiter needs at least one requester")
        self.n_requesters = n_requesters

    def pick(self, requesting: Sequence[int]) -> int:
        """Return the winning index among ``requesting`` (non-empty)."""
        if not requesting:
            raise ValueError("pick() called with no requesters")
        return min(requesting)

    def on_packet_end(self, winner: int) -> None:
        """The winner's packet (or locked chunk) finished."""

    def on_grant_cycle(self, winner: int) -> None:
        """One cell was transferred by ``winner`` this cycle."""

    def tick(self, requesting: Sequence[int]) -> None:
        """One clock cycle elapsed; ``requesting`` are still waiting."""


class FixedPriorityArbiter(Arbiter):
    """Static priority by port index: port 0 always beats port 1, etc."""


class ProgrammablePriorityArbiter(Arbiter):
    """Priority registers, writable through the node's programming port.

    Higher priority value wins; ties break toward the lower port index.
    """

    policy = ArbitrationPolicy.PROGRAMMABLE_PRIORITY

    def __init__(self, n_requesters: int, priorities: Optional[Sequence[int]] = None):
        super().__init__(n_requesters)
        if priorities is None:
            # Default: descending priority by index (port 0 highest).
            priorities = list(range(n_requesters - 1, -1, -1))
        if len(priorities) != n_requesters:
            raise ValueError("one priority per requester required")
        self.priorities: List[int] = list(priorities)

    def set_priority(self, index: int, priority: int) -> None:
        self.priorities[index] = priority

    def pick(self, requesting: Sequence[int]) -> int:
        if not requesting:
            raise ValueError("pick() called with no requesters")
        return max(requesting, key=lambda i: (self.priorities[i], -i))


class LruArbiter(Arbiter):
    """Least-recently-used: the requester served longest ago wins.

    Recency updates when the winner's **packet ends** (``on_packet_end``) —
    the update hook the seeded BCA bug ``lru-recency-stuck`` forgets to
    call.
    """

    policy = ArbitrationPolicy.LRU

    def __init__(self, n_requesters: int):
        super().__init__(n_requesters)
        # recency[i] = position in the LRU order; lower = less recently used.
        self._order: List[int] = list(range(n_requesters))

    def pick(self, requesting: Sequence[int]) -> int:
        if not requesting:
            raise ValueError("pick() called with no requesters")
        requesting_set = set(requesting)
        for index in self._order:
            if index in requesting_set:
                return index
        raise AssertionError("unreachable: requesting not subset of ports")

    def on_packet_end(self, winner: int) -> None:
        self._order.remove(winner)
        self._order.append(winner)  # most recently used

    def snapshot(self) -> List[int]:
        """LRU order, least recent first (for checkers and tests)."""
        return list(self._order)


class RoundRobinArbiter(Arbiter):
    """Rotating pointer: first requester at or after the pointer wins."""

    policy = ArbitrationPolicy.ROUND_ROBIN

    def __init__(self, n_requesters: int):
        super().__init__(n_requesters)
        self._pointer = 0

    def pick(self, requesting: Sequence[int]) -> int:
        if not requesting:
            raise ValueError("pick() called with no requesters")
        requesting_set = set(requesting)
        for offset in range(self.n_requesters):
            index = (self._pointer + offset) % self.n_requesters
            if index in requesting_set:
                return index
        raise AssertionError("unreachable")

    def on_packet_end(self, winner: int) -> None:
        self._pointer = (winner + 1) % self.n_requesters


class LatencyArbiter(Arbiter):
    """Latency-based arbitration: most urgent request wins.

    Each requester has a latency budget; a per-cycle down-counter starts at
    the budget when a request begins waiting and decrements every cycle.
    The lowest counter (closest to or beyond its deadline) wins; ties break
    toward the lower index.  The counter resets when the requester's packet
    completes.
    """

    policy = ArbitrationPolicy.LATENCY_BASED

    def __init__(self, n_requesters: int, budgets: Optional[Sequence[int]] = None):
        super().__init__(n_requesters)
        if budgets is None:
            budgets = [16 * (i + 1) for i in range(n_requesters)]
        if len(budgets) != n_requesters:
            raise ValueError("one latency budget per requester required")
        if any(b < 1 for b in budgets):
            raise ValueError("latency budgets must be >= 1")
        self.budgets: List[int] = list(budgets)
        self._counters: List[int] = list(budgets)

    def set_budget(self, index: int, budget: int) -> None:
        if budget < 1:
            raise ValueError("latency budget must be >= 1")
        self.budgets[index] = budget

    def tick(self, requesting: Sequence[int]) -> None:
        for index in requesting:
            self._counters[index] -= 1

    def pick(self, requesting: Sequence[int]) -> int:
        if not requesting:
            raise ValueError("pick() called with no requesters")
        return min(requesting, key=lambda i: (self._counters[i], i))

    def on_packet_end(self, winner: int) -> None:
        self._counters[winner] = self.budgets[winner]

    def urgency(self, index: int) -> int:
        """Remaining budget (may be negative when overdue)."""
        return self._counters[index]


class BandwidthArbiter(Arbiter):
    """Bandwidth limitation: allocations replenish a token bucket.

    Every ``window`` cycles each requester receives ``allocation[i]``
    tokens (capped at one window's worth); transferring a cell costs one
    token.  Requesters holding tokens beat exhausted ones; within each
    class, lower index wins.  This caps any port's share of the bus at
    ``allocation[i] / window`` under contention while letting it burst
    when the bus is idle.
    """

    policy = ArbitrationPolicy.BANDWIDTH_LIMITED

    def __init__(
        self,
        n_requesters: int,
        allocations: Optional[Sequence[int]] = None,
        window: int = 32,
    ):
        super().__init__(n_requesters)
        if allocations is None:
            allocations = [max(1, window // n_requesters)] * n_requesters
        if len(allocations) != n_requesters:
            raise ValueError("one allocation per requester required")
        if window < 1:
            raise ValueError("window must be >= 1")
        if any(a < 0 for a in allocations):
            raise ValueError("allocations must be non-negative")
        self.allocations: List[int] = list(allocations)
        self.window = window
        self._tokens: List[int] = list(allocations)
        self._cycle_in_window = 0

    def tick(self, requesting: Sequence[int]) -> None:
        self._cycle_in_window += 1
        if self._cycle_in_window >= self.window:
            self._cycle_in_window = 0
            for index, allocation in enumerate(self.allocations):
                self._tokens[index] = min(
                    self._tokens[index] + allocation, allocation
                )

    def pick(self, requesting: Sequence[int]) -> int:
        if not requesting:
            raise ValueError("pick() called with no requesters")
        funded = [i for i in requesting if self._tokens[i] > 0]
        pool = funded if funded else list(requesting)
        return min(pool)

    def on_grant_cycle(self, winner: int) -> None:
        if self._tokens[winner] > 0:
            self._tokens[winner] -= 1

    def tokens(self, index: int) -> int:
        return self._tokens[index]


def make_arbiter(
    policy: ArbitrationPolicy,
    n_requesters: int,
    *,
    priorities: Optional[Sequence[int]] = None,
    latency_budgets: Optional[Sequence[int]] = None,
    bandwidth_allocations: Optional[Sequence[int]] = None,
    bandwidth_window: int = 32,
) -> Arbiter:
    """Factory: build the policy object a :class:`NodeConfig` describes."""
    if policy is ArbitrationPolicy.FIXED_PRIORITY:
        return FixedPriorityArbiter(n_requesters)
    if policy is ArbitrationPolicy.PROGRAMMABLE_PRIORITY:
        return ProgrammablePriorityArbiter(n_requesters, priorities)
    if policy is ArbitrationPolicy.LRU:
        return LruArbiter(n_requesters)
    if policy is ArbitrationPolicy.ROUND_ROBIN:
        return RoundRobinArbiter(n_requesters)
    if policy is ArbitrationPolicy.LATENCY_BASED:
        return LatencyArbiter(n_requesters, latency_budgets)
    if policy is ArbitrationPolicy.BANDWIDTH_LIMITED:
        return BandwidthArbiter(n_requesters, bandwidth_allocations, bandwidth_window)
    raise ValueError(f"unknown policy {policy!r}")


#: Map from policy to the programming-port register block offset (one
#: register per initiator, 4 bytes each) — see ``rtl.programming_port``.
PROGRAMMABLE_POLICIES = (
    ArbitrationPolicy.PROGRAMMABLE_PRIORITY,
    ArbitrationPolicy.LATENCY_BASED,
)
