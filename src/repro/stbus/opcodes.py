"""STBus operation encodings.

The encoding is a simplified but self-consistent rendition of the STBus
Type II/III command set: loads and stores of 1..64 bytes, plus the
"specific operations" the spec names (read-modify-write, swap, flush,
purge, read-exclusive).  The 8-bit ``opc`` field encodes the kind in the
high nibble and log2(size) in the low nibble.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from .types import MAX_OPERATION_BYTES, ProtocolType


class OpcodeError(ValueError):
    """Illegal operation kind/size combination or encoding."""


class OpKind(enum.Enum):
    """Operation kinds of the Type II/III command set."""

    LOAD = 0x1
    STORE = 0x2
    RMW = 0x3
    SWAP = 0x4
    FLUSH = 0x5
    PURGE = 0x6
    READEX = 0x7

    @property
    def carries_request_data(self) -> bool:
        """Does the request packet carry write data?"""
        return self in (OpKind.STORE, OpKind.RMW, OpKind.SWAP)

    @property
    def carries_response_data(self) -> bool:
        """Does the response packet carry read data?"""
        return self in (OpKind.LOAD, OpKind.RMW, OpKind.SWAP, OpKind.READEX)


#: Sizes each kind accepts, in bytes.
_LEGAL_SIZES = {
    OpKind.LOAD: (1, 2, 4, 8, 16, 32, 64),
    OpKind.STORE: (1, 2, 4, 8, 16, 32, 64),
    OpKind.RMW: (1, 2, 4, 8),
    OpKind.SWAP: (1, 2, 4, 8),
    OpKind.FLUSH: (1,),
    OpKind.PURGE: (1,),
    OpKind.READEX: (1, 2, 4, 8),
}


@dataclass(frozen=True)
class Opcode:
    """One operation: a kind and a size in bytes.

    ``Opcode.load(4)`` is a 4-byte read; ``Opcode.store(64)`` a 64-byte
    write.  Instances are hashable and usable as coverage bin keys.
    """

    kind: OpKind
    size: int

    def __post_init__(self) -> None:
        legal = _LEGAL_SIZES[self.kind]
        if self.size not in legal:
            raise OpcodeError(
                f"{self.kind.name} does not support size {self.size} "
                f"(legal: {legal})"
            )
        if self.size > MAX_OPERATION_BYTES:
            raise OpcodeError(f"operation size {self.size} exceeds 64 bytes")

    # -- constructors -------------------------------------------------------

    @staticmethod
    def load(size: int) -> "Opcode":
        return Opcode(OpKind.LOAD, size)

    @staticmethod
    def store(size: int) -> "Opcode":
        return Opcode(OpKind.STORE, size)

    @staticmethod
    def rmw(size: int) -> "Opcode":
        return Opcode(OpKind.RMW, size)

    @staticmethod
    def swap(size: int) -> "Opcode":
        return Opcode(OpKind.SWAP, size)

    @staticmethod
    def flush() -> "Opcode":
        return Opcode(OpKind.FLUSH, 1)

    @staticmethod
    def purge() -> "Opcode":
        return Opcode(OpKind.PURGE, 1)

    @staticmethod
    def readex(size: int) -> "Opcode":
        return Opcode(OpKind.READEX, size)

    # -- encoding ------------------------------------------------------------

    def encode(self) -> int:
        """The 8-bit ``opc`` field value."""
        return (self.kind.value << 4) | self.size.bit_length() - 1

    @staticmethod
    def decode(opc: int) -> "Opcode":
        """Inverse of :meth:`encode`; raises :class:`OpcodeError` if illegal."""
        kind_bits = (opc >> 4) & 0xF
        size = 1 << (opc & 0xF)
        try:
            kind = OpKind(kind_bits)
        except ValueError:
            raise OpcodeError(f"opc 0x{opc:02x}: unknown kind {kind_bits:#x}")
        return Opcode(kind, size)

    @staticmethod
    def is_valid_encoding(opc: int) -> bool:
        try:
            Opcode.decode(opc)
            return True
        except OpcodeError:
            return False

    # -- packet geometry -------------------------------------------------------

    def data_cells(self, bus_bytes: int) -> int:
        """Cells needed to carry ``size`` bytes on a ``bus_bytes``-wide bus."""
        return max(1, (self.size + bus_bytes - 1) // bus_bytes)

    def request_cells(self, bus_bytes: int, protocol: ProtocolType) -> int:
        """Length of the request packet in cells.

        Type II packets are symmetric: the request occupies the data-cell
        count whether or not it carries data.  Type III shrinks dataless
        requests (loads) to a single cell.
        """
        if protocol is ProtocolType.T1:
            return 1
        if self.kind.carries_request_data or protocol.symmetric_packets:
            return self.data_cells(bus_bytes)
        return 1

    def response_cells(self, bus_bytes: int, protocol: ProtocolType) -> int:
        """Length of the response packet in cells (mirrors request_cells)."""
        if protocol is ProtocolType.T1:
            return 1
        if self.kind.carries_response_data or protocol.symmetric_packets:
            return self.data_cells(bus_bytes)
        return 1

    def check_alignment(self, address: int) -> None:
        """STBus requires natural alignment of the address to the size."""
        if address % self.size:
            raise OpcodeError(
                f"address {address:#x} not aligned to {self.size}-byte "
                f"{self.kind.name}"
            )

    def __str__(self) -> str:
        return f"{self.kind.name}{self.size}"


def all_opcodes() -> Tuple[Opcode, ...]:
    """Every legal opcode (used to define the functional coverage space)."""
    result = []
    for kind, sizes in _LEGAL_SIZES.items():
        for size in sizes:
            result.append(Opcode(kind, size))
    return tuple(result)
