"""STBus protocol layer: types, opcodes, packets, interfaces, configuration.

This package is the *functional specification* both design views implement
and the verification environment checks against — the paper's "the
functional specifications must be the only reference of verification
implementation".
"""

from .types import (
    ADDR_WIDTH,
    LEGAL_DATA_WIDTHS,
    MAX_OPERATION_BYTES,
    OPC_WIDTH,
    PRI_WIDTH,
    R_OPC_ERROR,
    R_OPC_WIDTH,
    SRC_WIDTH,
    TID_WIDTH,
    ProtocolType,
)
from .opcodes import OpKind, Opcode, OpcodeError, all_opcodes
from .packet import (
    Cell,
    PacketError,
    RespCell,
    Transaction,
    build_request_cells,
    build_response_cells,
    bytes_to_int,
    int_to_bytes,
    request_data_from_cells,
    response_data_from_cells,
)
from .routing import AddressMap, Region, RoutingError
from .arbitration import (
    Arbiter,
    ArbitrationPolicy,
    BandwidthArbiter,
    FixedPriorityArbiter,
    LatencyArbiter,
    LruArbiter,
    PROGRAMMABLE_POLICIES,
    ProgrammablePriorityArbiter,
    RoundRobinArbiter,
    make_arbiter,
)
from .config import Architecture, ConfigError, NodeConfig
from .interface import (
    REQUEST_FIELDS,
    RESPONSE_FIELDS,
    StbusPort,
    T1_IDLE,
    T1_READ,
    T1_WRITE,
    Type1Port,
)

__all__ = [
    "ProtocolType",
    "ADDR_WIDTH", "OPC_WIDTH", "TID_WIDTH", "SRC_WIDTH", "PRI_WIDTH",
    "R_OPC_WIDTH", "R_OPC_ERROR", "LEGAL_DATA_WIDTHS", "MAX_OPERATION_BYTES",
    "OpKind", "Opcode", "OpcodeError", "all_opcodes",
    "Cell", "RespCell", "Transaction", "PacketError",
    "build_request_cells", "build_response_cells",
    "request_data_from_cells", "response_data_from_cells",
    "bytes_to_int", "int_to_bytes",
    "AddressMap", "Region", "RoutingError",
    "Arbiter", "ArbitrationPolicy", "make_arbiter",
    "FixedPriorityArbiter", "ProgrammablePriorityArbiter", "LruArbiter",
    "RoundRobinArbiter", "LatencyArbiter", "BandwidthArbiter",
    "PROGRAMMABLE_POLICIES",
    "Architecture", "NodeConfig", "ConfigError",
    "StbusPort", "Type1Port", "REQUEST_FIELDS", "RESPONSE_FIELDS",
    "T1_IDLE", "T1_READ", "T1_WRITE",
]
