"""Packet repacking — the functional core of size and type conversion.

Section 3: "the STBus provides also the size conversion when the
initiators and targets have different data bus size" and "type converters
into the interconnect can be used" so components of different protocol
types can communicate.

Repacking is pure packet geometry: re-expressing the same operation
(opcode, address, payload, tags) in the cell geometry of a different bus
width and/or protocol type.  Like the rest of :mod:`repro.stbus` it is
specification-level code shared by both design views.
"""

from __future__ import annotations

from typing import List, Sequence

from .opcodes import Opcode, OpcodeError
from .packet import (
    Cell,
    RespCell,
    Transaction,
    build_request_cells,
    build_response_cells,
    request_data_from_cells,
    response_data_from_cells,
)
from .types import ProtocolType


class RepackError(ValueError):
    """A packet that cannot be re-expressed at the destination interface."""


def repack_request(
    cells: Sequence[Cell],
    from_bytes: int,
    to_bytes: int,
    from_protocol: ProtocolType,
    to_protocol: ProtocolType,
) -> List[Cell]:
    """Re-express a request packet for a different width/protocol.

    The operation itself (opcode, address, data, tid, pri, lck, src) is
    preserved; only the cell geometry changes.
    """
    if not cells:
        raise RepackError("empty request packet")
    first = cells[0]
    try:
        opcode = Opcode.decode(first.opc)
    except OpcodeError:
        raise RepackError(f"cannot repack invalid opc 0x{first.opc:02x}")
    expected = opcode.request_cells(from_bytes, from_protocol)
    if len(cells) != expected:
        raise RepackError(
            f"{opcode}: got {len(cells)} cells, expected {expected} at "
            f"{from_bytes}-byte/{from_protocol} interface"
        )
    data = request_data_from_cells(cells, from_bytes)
    txn = Transaction(
        opcode, first.add, data=data, tid=first.tid, pri=first.pri,
        lck=cells[-1].lck,
    )
    out = build_request_cells(txn, to_bytes, to_protocol)
    for cell in out:
        cell.src = first.src
    return out


def repack_response(
    cells: Sequence[RespCell],
    opcode: Opcode,
    address: int,
    from_bytes: int,
    to_bytes: int,
    from_protocol: ProtocolType,
    to_protocol: ProtocolType,
) -> List[RespCell]:
    """Re-express a response packet for a different width/protocol.

    The converter knows ``opcode`` and ``address`` from the request packet
    it forwarded earlier (responses do not carry them on the wire).
    """
    if not cells:
        raise RepackError("empty response packet")
    first = cells[0]
    error = any(cell.is_error for cell in cells)
    data = b""
    if not error and opcode.kind.carries_response_data:
        data = response_data_from_cells(cells, opcode, from_bytes,
                                        address=address)
    return build_response_cells(
        opcode, to_bytes, to_protocol, data=data, error=error,
        src=first.r_src, tid=first.r_tid, address=address,
    )
