"""Fabric builder — programmatic construction of hierarchical interconnects.

Section 3: the STBus "is not only a single bus or a set of buses, but it
can be a hierarchical communication network composed of more than one
router ... connecting a set of 4 basic components: nodes, size
converters, type converters and register decoders."

:class:`FabricSpec` describes such a network declaratively — components
and point-to-point connections — validates it (port counts, widths,
protocol types), and builds it in either design view, wiring every link
as one shared :class:`~repro.stbus.interface.StbusPort`.  The masters are
CATG BFMs, so any built fabric is immediately drivable with the same
sequences the node testbench uses.

Example (the paper's Figure 1)::

    spec = FabricSpec()
    spec.master("cpu", width=32)
    spec.node("nodeA", config_a)
    spec.memory("memA", latency=2)
    spec.connect("cpu", ("nodeA", "init", 0))
    spec.connect(("nodeA", "targ", 0), "memA")
    fabric = spec.build(view="rtl")
    fabric.masters["cpu"].load_program(...)
    fabric.run_until_drained()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..bca import (
    BcaNode,
    BcaRegisterDecoder,
    BcaSizeConverter,
    BcaTypeConverter,
)
from ..catg.bfm import InitiatorBfm
from ..catg.target import TargetHarness
from ..kernel import Module, Simulator
from ..rtl import (
    RtlNode,
    RtlRegisterDecoder,
    RtlSizeConverter,
    RtlTypeConverter,
)
from ..stbus import NodeConfig, ProtocolType, StbusPort


class FabricError(ValueError):
    """Inconsistent fabric description."""


#: Endpoint naming: a plain component name ("cpu", "memA", bridges use
#: ("name", "up"/"down")), or a node port ("nodeA", "init"|"targ", index).
Endpoint = Union[str, Tuple[str, str], Tuple[str, str, int]]


@dataclass
class _MasterSpec:
    name: str
    width: int
    protocol: ProtocolType


@dataclass
class _MemorySpec:
    name: str
    latency: int
    jitter: int
    capacity: int
    seed: int


@dataclass
class _RegisterSpec:
    name: str
    n_regs: int
    latency: int


@dataclass
class _NodeSpec:
    name: str
    config: NodeConfig


@dataclass
class _BridgeSpec:
    name: str
    kind: str  # "size" or "type"
    up_protocol: ProtocolType
    down_protocol: ProtocolType
    queue_depth: int


def _canonical(endpoint: Endpoint) -> Tuple:
    if isinstance(endpoint, str):
        return (endpoint,)
    return tuple(endpoint)


class FabricSpec:
    """Declarative description of an interconnect fabric."""

    def __init__(self) -> None:
        self._masters: Dict[str, _MasterSpec] = {}
        self._memories: Dict[str, _MemorySpec] = {}
        self._registers: Dict[str, _RegisterSpec] = {}
        self._nodes: Dict[str, _NodeSpec] = {}
        self._bridges: Dict[str, _BridgeSpec] = {}
        self._links: List[Tuple[Tuple, Tuple]] = []

    # -- component declaration ---------------------------------------------

    def master(self, name: str, width: int = 32,
               protocol: ProtocolType = ProtocolType.T2) -> str:
        self._check_new(name)
        self._masters[name] = _MasterSpec(name, width, protocol)
        return name

    def memory(self, name: str, latency: int = 2, jitter: int = 0,
               capacity: int = 8, seed: int = 0) -> str:
        self._check_new(name)
        self._memories[name] = _MemorySpec(name, latency, jitter, capacity,
                                           seed)
        return name

    def register_decoder(self, name: str, n_regs: int = 16,
                         latency: int = 1) -> str:
        self._check_new(name)
        self._registers[name] = _RegisterSpec(name, n_regs, latency)
        return name

    def node(self, name: str, config: NodeConfig) -> str:
        self._check_new(name)
        config.validate()
        self._nodes[name] = _NodeSpec(name, config)
        return name

    def size_converter(self, name: str, protocol: ProtocolType,
                       queue_depth: int = 2) -> str:
        self._check_new(name)
        self._bridges[name] = _BridgeSpec(name, "size", protocol, protocol,
                                          queue_depth)
        return name

    def type_converter(self, name: str, up_protocol: ProtocolType,
                       down_protocol: ProtocolType,
                       queue_depth: int = 2) -> str:
        self._check_new(name)
        self._bridges[name] = _BridgeSpec(name, "type", up_protocol,
                                          down_protocol, queue_depth)
        return name

    def _check_new(self, name: str) -> None:
        for pool in (self._masters, self._memories, self._registers,
                     self._nodes, self._bridges):
            if name in pool:
                raise FabricError(f"duplicate component name {name!r}")

    # -- wiring ----------------------------------------------------------------

    def connect(self, a: Endpoint, b: Endpoint) -> None:
        """Wire two endpoints with one STBus link.

        One side must *drive requests* (master, bridge ``("x","down")``,
        node target port); the other must *serve* them (memory, register
        decoder, bridge ``("x","up")``, node initiator port).
        """
        self._links.append((_canonical(a), _canonical(b)))

    # -- endpoint classification ------------------------------------------------

    def _endpoint_role(self, ep: Tuple) -> str:
        """'source' drives requests; 'sink' serves them."""
        name = ep[0]
        if name in self._masters:
            return "source"
        if name in self._memories or name in self._registers:
            return "sink"
        if name in self._bridges:
            if len(ep) != 2 or ep[1] not in ("up", "down"):
                raise FabricError(
                    f"bridge endpoint must be ('{name}', 'up'|'down')"
                )
            return "sink" if ep[1] == "up" else "source"
        if name in self._nodes:
            if len(ep) != 3 or ep[1] not in ("init", "targ"):
                raise FabricError(
                    f"node endpoint must be ('{name}', 'init'|'targ', k)"
                )
            config = self._nodes[name].config
            limit = config.n_initiators if ep[1] == "init" \
                else config.n_targets
            if not 0 <= ep[2] < limit:
                raise FabricError(f"{ep}: port index out of range")
            return "sink" if ep[1] == "init" else "source"
        raise FabricError(f"unknown component in endpoint {ep!r}")

    def _endpoint_width(self, ep: Tuple) -> Optional[int]:
        name = ep[0]
        if name in self._masters:
            return self._masters[name].width
        if name in self._nodes:
            return self._nodes[name].config.data_width_bits
        return None  # memories/registers/bridges adapt to the link

    # -- validation + build -----------------------------------------------------

    def validate(self) -> None:
        seen: Dict[Tuple, int] = {}
        for a, b in self._links:
            roles = {self._endpoint_role(a), self._endpoint_role(b)}
            if roles != {"source", "sink"}:
                raise FabricError(
                    f"link {a} <-> {b}: needs one request driver and one "
                    "server"
                )
            for ep in (a, b):
                seen[ep] = seen.get(ep, 0) + 1
                if seen[ep] > 1:
                    raise FabricError(f"endpoint {ep} connected twice")
            width_a = self._endpoint_width(a)
            width_b = self._endpoint_width(b)
            if width_a is not None and width_b is not None \
                    and width_a != width_b:
                raise FabricError(
                    f"link {a} <-> {b}: width mismatch "
                    f"{width_a} vs {width_b}"
                )
        # Every node port must be wired.
        for name, spec in self._nodes.items():
            for kind, count in (("init", spec.config.n_initiators),
                                ("targ", spec.config.n_targets)):
                for k in range(count):
                    if (name, kind, k) not in seen:
                        raise FabricError(
                            f"node port ({name!r}, {kind!r}, {k}) unwired"
                        )
        # Every bridge needs both sides.
        for name in self._bridges:
            for side in ("up", "down"):
                if (name, side) not in seen:
                    raise FabricError(
                        f"bridge side ({name!r}, {side!r}) unwired"
                    )
        # Masters, memories and register decoders need exactly one link.
        for pool in (self._masters, self._memories, self._registers):
            for name in pool:
                if (name,) not in seen:
                    raise FabricError(f"component {name!r} unwired")

    def build(self, view: str = "rtl",
              sim: Optional[Simulator] = None) -> "Fabric":
        if view not in ("rtl", "bca"):
            raise FabricError("view must be 'rtl' or 'bca'")
        self.validate()
        return Fabric(self, view, sim or Simulator())


def _link_width(spec: FabricSpec, a: Tuple, b: Tuple) -> int:
    width = spec._endpoint_width(a)
    if width is None:
        width = spec._endpoint_width(b)
    return width if width is not None else 32


def _link_protocol(spec: FabricSpec, a: Tuple, b: Tuple) -> ProtocolType:
    """The protocol spoken on a link (from whichever side fixes it)."""
    for ep in (a, b):
        name = ep[0]
        if name in spec._nodes:
            return spec._nodes[name].config.protocol_type
        if name in spec._bridges:
            bridge = spec._bridges[name]
            return bridge.up_protocol if ep[1] == "up" \
                else bridge.down_protocol
        if name in spec._masters:
            return spec._masters[name].protocol
    return ProtocolType.T2


class Fabric:
    """A built (elaboratable) interconnect."""

    def __init__(self, spec: FabricSpec, view: str, sim: Simulator):
        self.spec = spec
        self.view = view
        self.sim = sim
        self.top = Module(sim, "fabric")
        self.ports: Dict[Tuple[Tuple, Tuple], StbusPort] = {}
        self.masters: Dict[str, InitiatorBfm] = {}
        self.memories: Dict[str, TargetHarness] = {}
        self.registers: Dict[str, object] = {}
        self.nodes: Dict[str, object] = {}
        self.bridges: Dict[str, object] = {}
        self._build()

    # -- port bookkeeping -------------------------------------------------------

    def _port_for(self, a: Tuple, b: Tuple) -> StbusPort:
        key = (a, b)
        if key not in self.ports:
            width = _link_width(self.spec, a, b)
            label = "__".join("_".join(str(p) for p in ep) for ep in key)
            self.ports[key] = StbusPort(self.top, f"link_{label}", width)
        return self.ports[key]

    def port_of(self, endpoint: Endpoint) -> StbusPort:
        """The link port attached to ``endpoint``."""
        ep = _canonical(endpoint)
        for (a, b), port in self.ports.items():
            if ep in (a, b):
                return port
        raise FabricError(f"endpoint {ep} not found in built fabric")

    # -- construction -------------------------------------------------------------

    def _endpoint_links(self, name: str) -> Dict[Tuple, StbusPort]:
        result = {}
        for a, b in self.spec._links:
            for ep in (a, b):
                if ep[0] == name:
                    result[ep] = self._port_for(a, b)
        return result

    def _build(self) -> None:
        spec = self.spec
        rtl = self.view == "rtl"
        # Create every link port first.
        for a, b in spec._links:
            self._port_for(a, b)
        # Masters.
        for name, master in spec._masters.items():
            port = self.port_of(name)
            self.masters[name] = InitiatorBfm(
                self.sim, name, port, master.protocol, parent=self.top
            )
        # Memories.
        for name, memory in spec._memories.items():
            port = self.port_of(name)
            protocol = _link_protocol(spec, *self._link_of(name))
            self.memories[name] = TargetHarness(
                self.sim, name, port, protocol,
                latency=memory.latency, jitter=memory.jitter,
                capacity=memory.capacity, seed=memory.seed,
                parent=self.top,
            )
        # Register decoders.
        regdec_cls = RtlRegisterDecoder if rtl else BcaRegisterDecoder
        for name, reg in spec._registers.items():
            port = self.port_of(name)
            protocol = _link_protocol(spec, *self._link_of(name))
            self.registers[name] = regdec_cls(
                self.sim, name, port, protocol,
                n_regs=reg.n_regs, latency=reg.latency, parent=self.top,
            )
        # Nodes.
        node_cls = RtlNode if rtl else BcaNode
        for name, node in spec._nodes.items():
            links = self._endpoint_links(name)
            init_ports = [links[(name, "init", k)]
                          for k in range(node.config.n_initiators)]
            targ_ports = [links[(name, "targ", k)]
                          for k in range(node.config.n_targets)]
            self.nodes[name] = node_cls(
                self.sim, name, node.config, init_ports, targ_ports,
                parent=self.top,
            )
        # Bridges.
        for name, bridge in spec._bridges.items():
            links = self._endpoint_links(name)
            up = links[(name, "up")]
            down = links[(name, "down")]
            if bridge.kind == "size":
                cls = RtlSizeConverter if rtl else BcaSizeConverter
                self.bridges[name] = cls(
                    self.sim, name, up, down, bridge.up_protocol,
                    queue_depth=bridge.queue_depth, parent=self.top,
                )
            else:
                cls = RtlTypeConverter if rtl else BcaTypeConverter
                self.bridges[name] = cls(
                    self.sim, name, up, down, bridge.up_protocol,
                    bridge.down_protocol,
                    queue_depth=bridge.queue_depth, parent=self.top,
                )

    def _link_of(self, name: str) -> Tuple[Tuple, Tuple]:
        for a, b in self.spec._links:
            if a[0] == name or b[0] == name:
                return a, b
        raise FabricError(f"component {name!r} has no link")

    # -- running ------------------------------------------------------------------

    def elaborate(self) -> None:
        self.sim.elaborate()

    def run_until_drained(self, max_cycles: int = 20000,
                          drain: int = 10) -> int:
        """Run until every master is done and every memory is idle."""
        if not self.sim._elaborated:
            self.sim.elaborate()

        def finished() -> bool:
            if not all(bfm.done for bfm in self.masters.values()):
                return False
            if any(mem.busy for mem in self.memories.values()):
                return False
            # A node still tracking outstanding packets means traffic is
            # in flight somewhere along the path (bridges included,
            # transitively: their responses retire the node records).
            for name, node in self.nodes.items():
                config = self.spec._nodes[name].config
                if any(node.outstanding_count(i)
                       for i in range(config.n_initiators)):
                    return False
            return True

        cycles = self.sim.run_until(finished, max_cycles)
        self.sim.run(drain)
        return cycles

    def all_port_signals(self) -> List:
        signals = []
        for port in self.ports.values():
            signals.extend(port.signals())
        return signals
