"""Hierarchical interconnect construction from the four basic components."""

from .builder import Endpoint, Fabric, FabricError, FabricSpec

__all__ = ["FabricSpec", "Fabric", "FabricError", "Endpoint"]
