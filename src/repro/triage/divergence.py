"""First-divergence localization: lockstep walk over two VCD dumps.

The bus analyzer answers "how aligned are the ports"; this module answers
the engineer's next question — *where exactly* did the two models split.
Both dumps are walked cycle by cycle over the signals they share, and the
first (cycle, signal) point at which the values differ is reported, with
ties inside one cycle broken by signal name so the answer is
deterministic for any dump order.

Design notes, pinned by the edge-case tests:

* Only signals present in **both** dumps are compared.  The RTL and BCA
  views legitimately differ inside ``tb.dut.``, so view-private signals
  are reported (``only_in_a``/``only_in_b``) but never walked.
* The walk is keyed by hierarchical name, so the ``$var`` declaration
  order of the two files is irrelevant.
* ``x``/``z`` digits were already mapped to 0 by the parser; a signal
  that is X in one dump and 0 in the other therefore compares equal.
  That is the comparison the analyzer itself performs, and the triage
  verdict must agree with the alignment rate, not second-guess it.
* Dumps of different lengths are compared over the shorter one
  (``truncated`` is set): a crashed run's tail is absence of evidence,
  not a divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..vcd import VcdFile, parse_vcd


@dataclass(frozen=True)
class SignalDivergence:
    """One (signal, cycle) point where the two dumps disagree."""

    signal: str
    cycle: int
    a_value: int
    b_value: int

    def describe(self, labels: Tuple[str, str] = ("rtl", "bca")) -> str:
        return (
            f"{self.signal} @ cycle {self.cycle} "
            f"({labels[0]}={self.a_value} {labels[1]}={self.b_value})"
        )


@dataclass
class DivergenceScan:
    """Outcome of one lockstep walk."""

    #: The earliest divergence — smallest cycle, then smallest signal
    #: name — or ``None`` when the shared signals agree everywhere.
    first: Optional[SignalDivergence]
    #: Every signal that disagrees at the first diverging cycle (the
    #: same-cycle split set; ``first`` is its name-wise minimum).
    at_first_cycle: Tuple[SignalDivergence, ...]
    #: Hierarchical names compared (present in both dumps).
    compared: Tuple[str, ...]
    #: Signals only one dump declares — never compared.
    only_in_a: Tuple[str, ...]
    only_in_b: Tuple[str, ...]
    #: Cycles walked: ``min`` of the two dump lengths.
    total_cycles: int
    #: True when the dumps covered different cycle counts.
    truncated: bool
    #: Per-signal mismatch counts over the whole walk (diagnostics).
    mismatch_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def diverged(self) -> bool:
        return self.first is not None

    def summary(self) -> str:
        if self.first is None:
            return (
                f"no divergence: {len(self.compared)} shared signal(s) "
                f"identical over {self.total_cycles} cycle(s)"
            )
        others = len(self.at_first_cycle) - 1
        tail = f" (+{others} more signal(s) that cycle)" if others else ""
        return f"first divergence: {self.first.describe()}{tail}"


def find_first_divergence(
    a: Union[str, VcdFile],
    b: Union[str, VcdFile],
    signals: Optional[Sequence[str]] = None,
) -> DivergenceScan:
    """Walk ``a`` and ``b`` in lockstep to their first diverging point.

    ``signals`` optionally restricts the walk to those names (missing
    ones are silently classified as one-sided); by default every signal
    the dumps share is compared.
    """
    vcd_a = parse_vcd(a) if isinstance(a, str) else a
    vcd_b = parse_vcd(b) if isinstance(b, str) else b
    names_a = set(vcd_a.signals)
    names_b = set(vcd_b.signals)
    universe = set(signals) if signals is not None else names_a | names_b
    shared = sorted(universe & names_a & names_b)
    only_a = tuple(sorted(universe & names_a - names_b))
    only_b = tuple(sorted(universe & names_b - names_a))
    total = min(vcd_a.n_cycles, vcd_b.n_cycles)
    truncated = vcd_a.n_cycles != vcd_b.n_cycles

    series: List[Tuple[str, List[int], List[int]]] = []
    for name in shared:
        sa = vcd_a[name].expand(total, vcd_a.timescale)
        sb = vcd_b[name].expand(total, vcd_b.timescale)
        if sa != sb:
            series.append((name, sa, sb))
    mismatch_counts: Dict[str, int] = {}
    first_cycle: Optional[int] = None
    for name, sa, sb in series:
        count = 0
        earliest: Optional[int] = None
        for cycle in range(total):
            if sa[cycle] != sb[cycle]:
                count += 1
                if earliest is None:
                    earliest = cycle
        mismatch_counts[name] = count
        if earliest is not None and (first_cycle is None
                                     or earliest < first_cycle):
            first_cycle = earliest
    if first_cycle is None:
        return DivergenceScan(
            first=None, at_first_cycle=(), compared=tuple(shared),
            only_in_a=only_a, only_in_b=only_b, total_cycles=total,
            truncated=truncated, mismatch_counts=mismatch_counts,
        )
    at_first = tuple(
        SignalDivergence(name, first_cycle, sa[first_cycle], sb[first_cycle])
        for name, sa, sb in series
        if sa[first_cycle] != sb[first_cycle]
    )
    return DivergenceScan(
        first=at_first[0], at_first_cycle=at_first, compared=tuple(shared),
        only_in_a=only_a, only_in_b=only_b, total_cycles=total,
        truncated=truncated, mismatch_counts=mismatch_counts,
    )
