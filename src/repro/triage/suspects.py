"""Cone-ranked suspect scoring for a diverging signal.

Given the first diverging (signal, cycle) point of an RTL/BCA pair, the
question is "which process of the compared model must be wrong".  The
static dataflow graph already knows which signals can influence the
diverging one (:meth:`~repro.analysis.dataflow.DataflowGraph.fan_in_cone`)
and which processes write each signal
(:attr:`~repro.lint.graph.DesignGraph.known_writers`); intersecting the
two shrinks the whole model down to the handful of processes that can
possibly have produced the wrong value.

Suspects are ranked by

1. **cone distance** — the BFS depth (in signal hops) from the diverging
   signal back to the nearest signal the process writes.  A process that
   drives the diverging pin itself (distance 0) outranks one that only
   feeds it indirectly.
2. **last-write cycle** — the most recent cycle at or before the
   divergence at which any of the process's in-cone signals changed in
   the compared trace.  Between equally-near processes, the one whose
   outputs moved last is the likelier culprit.
3. name, for determinism.

The graph is built from an elaboration dry run (no cycle is simulated),
so triage costs one elaboration plus a BFS — independent of test length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..stbus import NodeConfig
from ..vcd import VcdFile


@dataclass(frozen=True)
class Suspect:
    """One process that can influence the diverging signal."""

    process: str
    kind: str                       # "clocked" | "comb"
    distance: int                   # signal hops from the divergence
    via: Tuple[str, ...]            # its written signals inside the cone
    last_write_cycle: Optional[int]  # from the compared trace, if seen

    def describe(self) -> str:
        wrote = (
            f"last wrote @{self.last_write_cycle}"
            if self.last_write_cycle is not None else "no write in trace"
        )
        return (
            f"{self.process} ({self.kind}, distance {self.distance}, "
            f"{wrote})"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "process": self.process,
            "kind": self.kind,
            "distance": self.distance,
            "via": list(self.via),
            "last_write_cycle": self.last_write_cycle,
        }


@dataclass
class SuspectReport:
    """Ranked suspect set for one diverging signal."""

    signal: str
    suspects: Tuple[Suspect, ...]
    #: Signals in the fan-in cone (including the anchor), sorted by BFS
    #: distance then name — the wave-excerpt candidates.
    cone_signals: Tuple[str, ...]
    #: False when an undeclared clocked process may hide influence paths
    #: (the suspect set is then a lower bound, stated, not guessed).
    complete: bool

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(s.process for s in self.suspects)


def _signal_distances(dataflow, anchor) -> Dict[object, int]:
    """BFS depth of every fan-in-cone signal from ``anchor`` (depth 0)."""
    dist = {anchor: 0}
    frontier = [anchor]
    depth = 0
    while frontier:
        depth += 1
        nxt = []
        for sig in frontier:
            for src in sorted(dataflow.fan_in.get(sig, ()),
                              key=lambda s: s.name):
                if src not in dist:
                    dist[src] = depth
                    nxt.append(src)
        frontier = nxt
    return dist


def _last_write_cycle(trace: Optional[VcdFile], names: Tuple[str, ...],
                      cycle: int) -> Optional[int]:
    """Most recent cycle <= ``cycle`` at which any of ``names`` changed."""
    if trace is None:
        return None
    latest: Optional[int] = None
    horizon = cycle * trace.timescale
    for name in names:
        if name not in trace:
            continue
        for when, _value in trace[name].changes:
            if when > horizon:
                break
            c = when // trace.timescale
            if latest is None or c > latest:
                latest = c
    return latest


def rank_suspects(
    config: NodeConfig,
    signal_name: str,
    divergence_cycle: int,
    view: str = "bca",
    trace: Optional[VcdFile] = None,
) -> SuspectReport:
    """Rank the processes of ``view`` that can influence ``signal_name``.

    ``trace`` is the compared run's parsed dump (used only for the
    last-write tiebreaker; suspects are still ranked without it).
    """
    from ..analysis.dataflow import DataflowGraph
    from ..lint.graph import DesignGraph
    from ..lint.runner import build_env

    env = build_env(config, view)
    graph = DesignGraph.from_simulator(env.sim)
    dataflow = DataflowGraph(graph)
    by_name = {sig.name: sig for sig in graph.signals}
    anchor = by_name.get(signal_name)
    if anchor is None:
        return SuspectReport(
            signal=signal_name, suspects=(), cone_signals=(),
            complete=dataflow.complete,
        )
    dist = _signal_distances(dataflow, anchor)
    cone_signals = tuple(
        sig.name for sig in sorted(dist, key=lambda s: (dist[s], s.name))
    )
    suspects: List[Suspect] = []
    for info in list(graph.comb) + list(graph.clocked):
        if info.kind == "comb":
            written = set(info.observed_writes)
        else:
            written = set(info.declared_writes or ())
            written.update(sig for sig, _ in info.declared_tie_offs)
        in_cone = sorted(
            (sig for sig in written if sig in dist),
            key=lambda s: (dist[s], s.name),
        )
        if not in_cone:
            continue
        via = tuple(sig.name for sig in in_cone)
        suspects.append(Suspect(
            process=info.name,
            kind=info.kind,
            distance=min(dist[sig] for sig in in_cone),
            via=via,
            last_write_cycle=_last_write_cycle(
                trace, via, divergence_cycle),
        ))
    suspects.sort(key=lambda s: (
        s.distance,
        -(s.last_write_cycle if s.last_write_cycle is not None else -1),
        s.process,
    ))
    return SuspectReport(
        signal=signal_name,
        suspects=tuple(suspects),
        cone_signals=cone_signals,
        complete=dataflow.complete,
    )
