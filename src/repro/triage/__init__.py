"""Failure triage: first-divergence localization and cone-ranked suspects.

When a regression entry fails — the arbitration checkers flag the BCA,
or the bus-alignment rate drops below sign-off — this package walks the
two waveform dumps in lockstep to the first (signal, cycle) point where
they split, intersects the static fan-in cone of that signal with the
process write-sets to shrink the whole model to a ranked suspect list,
and emits a self-contained minimal repro (``triage.json``): the replay
command, the trimmed cycle window, the cone wave excerpt and the
configuration text.
"""

from .divergence import (
    DivergenceScan,
    SignalDivergence,
    find_first_divergence,
)
from .suspects import Suspect, SuspectReport, rank_suspects
from .report import (
    REASON_ALIGNMENT,
    REASON_CHECKERS,
    REASON_MANUAL,
    TRIAGE_SCHEMA,
    TRIAGE_SCHEMA_VERSION,
    VERDICT_LOCALIZED,
    VERDICT_NOT_PIN_VISIBLE,
    TriageReport,
    load_triage,
    triage_entry,
)

__all__ = [
    "SignalDivergence",
    "DivergenceScan",
    "find_first_divergence",
    "Suspect",
    "SuspectReport",
    "rank_suspects",
    "TriageReport",
    "triage_entry",
    "load_triage",
    "TRIAGE_SCHEMA",
    "TRIAGE_SCHEMA_VERSION",
    "REASON_CHECKERS",
    "REASON_ALIGNMENT",
    "REASON_MANUAL",
    "VERDICT_LOCALIZED",
    "VERDICT_NOT_PIN_VISIBLE",
]
