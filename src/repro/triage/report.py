"""The triage artifact: first divergence + suspect set + minimal repro.

One :class:`TriageReport` is the self-contained answer to "this run
failed — now what": the first diverging (signal, cycle) point, the
cone-ranked process suspects, a trimmed waveview excerpt of the cone
signals around the split, and the exact commands that replay the failure
in isolation.  It is a plain picklable dataclass of primitives so the
regression pool can ship it across process boundaries, the journal can
checkpoint it, and CI can diff its JSON form against golden files.

The JSON schema is versioned (``schema_version``); paths inside the
repro commands are stored relative to the triage file's own directory so
the artifact stays byte-stable across work directories.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..ioutil import atomic_write
from ..stbus import NodeConfig
from ..vcd import VcdFile, parse_vcd
from .divergence import DivergenceScan, find_first_divergence
from .suspects import SuspectReport, rank_suspects

#: Version tag written into every triage.json.
TRIAGE_SCHEMA = "repro.triage/v1"
TRIAGE_SCHEMA_VERSION = 1

#: Wave excerpt: cone signals shown and cycles each side of the split.
WAVE_SIGNAL_LIMIT = 8
WAVE_WINDOW = 4

#: Suspects listed in the human-readable render (JSON keeps them all).
RENDER_SUSPECT_LIMIT = 8

#: Why a triage ran.
REASON_CHECKERS = "checkers-failed"
REASON_ALIGNMENT = "low-alignment"
REASON_MANUAL = "manual"

#: What it concluded.
VERDICT_LOCALIZED = "localized"
VERDICT_NOT_PIN_VISIBLE = "divergence-not-pin-visible"


@dataclass
class TriageReport:
    """Structured triage of one failing (config, test, seed) entry."""

    config_name: str
    test_name: str
    seed: int
    reason: str
    verdict: str
    bugs: Tuple[str, ...] = ()
    #: First diverging point (None when not pin-visible).
    signal: Optional[str] = None
    cycle: Optional[int] = None
    rtl_value: Optional[int] = None
    bca_value: Optional[int] = None
    #: Other signals that split at the same cycle.
    co_diverging: Tuple[str, ...] = ()
    #: Trimmed cycle window around the divergence.
    window_start: Optional[int] = None
    window_end: Optional[int] = None
    total_cycles: int = 0
    truncated: bool = False
    only_in_rtl: Tuple[str, ...] = ()
    only_in_bca: Tuple[str, ...] = ()
    #: Cone-ranked suspects (dicts, see Suspect.to_dict) and the cone
    #: excerpt signals the wave shows.
    suspects: List[Dict[str, object]] = field(default_factory=list)
    cone_signals: Tuple[str, ...] = ()
    cone_complete: bool = True
    #: Replay commands (paths relative to the triage file's directory)
    #: and the configuration text that makes the artifact self-contained.
    repro: Dict[str, str] = field(default_factory=dict)
    config_text: str = ""
    #: Waveview excerpt of the diverging cone signals.
    wave: str = ""
    schema: str = TRIAGE_SCHEMA
    schema_version: int = TRIAGE_SCHEMA_VERSION

    @property
    def localized(self) -> bool:
        return self.verdict == VERDICT_LOCALIZED

    @property
    def suspect_names(self) -> Tuple[str, ...]:
        return tuple(str(s["process"]) for s in self.suspects)

    @property
    def top_suspect(self) -> Optional[str]:
        return str(self.suspects[0]["process"]) if self.suspects else None

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": self.schema,
            "schema_version": self.schema_version,
            "config": self.config_name,
            "test": self.test_name,
            "seed": self.seed,
            "reason": self.reason,
            "verdict": self.verdict,
            "bugs": list(self.bugs),
            "first_divergence": (
                None if self.signal is None else {
                    "signal": self.signal,
                    "cycle": self.cycle,
                    "rtl": self.rtl_value,
                    "bca": self.bca_value,
                    "co_diverging": list(self.co_diverging),
                }
            ),
            "window": (
                None if self.window_start is None else
                {"start": self.window_start, "end": self.window_end}
            ),
            "total_cycles": self.total_cycles,
            "truncated": self.truncated,
            "only_in_rtl": list(self.only_in_rtl),
            "only_in_bca": list(self.only_in_bca),
            "suspects": [dict(s) for s in self.suspects],
            "cone_signals": list(self.cone_signals),
            "cone_complete": self.cone_complete,
            "repro": dict(self.repro),
            "config_text": self.config_text,
            "wave": self.wave,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n"

    def render(self) -> str:
        """Human-readable block for the regression report."""
        head = f"{self.config_name} {self.test_name} seed={self.seed}"
        if self.signal is None:
            lines = [
                f"{head}: {self.verdict} — no shared signal diverges "
                f"over {self.total_cycles} cycle(s); the checker failure "
                "is not visible at the dumped pins"
            ]
        else:
            lines = [
                f"{head}: first divergence {self.signal} @ cycle "
                f"{self.cycle} (rtl={self.rtl_value} bca={self.bca_value})"
            ]
            if self.co_diverging:
                lines.append(
                    f"  also split that cycle: "
                    f"{', '.join(self.co_diverging)}"
                )
            if self.window_start is not None:
                lines.append(
                    f"  window: cycles {self.window_start}.."
                    f"{self.window_end} of {self.total_cycles}"
                )
        if self.suspects:
            bound = "" if self.cone_complete else \
                " (lower bound: opaque process(es) in the design)"
            lines.append(f"  suspects, cone-ranked{bound}:")
            shown = self.suspects[:RENDER_SUSPECT_LIMIT]
            for pos, s in enumerate(shown, 1):
                wrote = (
                    f"last wrote @{s['last_write_cycle']}"
                    if s.get("last_write_cycle") is not None
                    else "no write in trace"
                )
                lines.append(
                    f"    {pos}. {s['process']} ({s['kind']}, "
                    f"distance {s['distance']}, {wrote})"
                )
            hidden = len(self.suspects) - len(shown)
            if hidden:
                lines.append(f"    ... and {hidden} more in triage.json")
        for key in ("analyzer", "regression"):
            if key in self.repro:
                lines.append(f"  repro ({key}): {self.repro[key]}")
        return "\n".join(lines) + "\n"


def _relative(path: str, base: Optional[str]) -> str:
    if not base:
        return path
    try:
        return os.path.relpath(path, base)
    except ValueError:  # different drive (Windows); keep it absolute
        return path


def _wave_signals(scan: DivergenceScan,
                  suspects: SuspectReport) -> List[str]:
    """The cone signals worth showing: the split set first, then the
    nearest cone signals, capped at :data:`WAVE_SIGNAL_LIMIT`."""
    chosen: List[str] = [d.signal for d in scan.at_first_cycle]
    for name in suspects.cone_signals:
        if len(chosen) >= WAVE_SIGNAL_LIMIT:
            break
        if name not in chosen:
            chosen.append(name)
    return chosen[:WAVE_SIGNAL_LIMIT]


def triage_entry(
    config: NodeConfig,
    test_name: str,
    seed: int,
    rtl_vcd: Union[str, VcdFile],
    bca_vcd: Union[str, VcdFile],
    *,
    bugs: Sequence[str] = (),
    reason: str = REASON_MANUAL,
    out_path: Optional[str] = None,
    telemetry=None,
) -> TriageReport:
    """Triage one failing entry from its two dumps.

    Walks the dumps to the first divergence, ranks the BCA processes
    that can influence it, renders the cone wave excerpt, and (when
    ``out_path`` is given) writes the ``triage.json`` artifact
    atomically.  ``telemetry`` optionally records the triage span and
    the ``triage.*`` counters.
    """
    from ..telemetry import NULL_TELEMETRY

    tele = telemetry if telemetry is not None else NULL_TELEMETRY
    # Materialize the lazy address-map default before rendering the
    # config text: a config that already elaborated in this process
    # prints the map, a freshly unpickled one would not, and the
    # artifact must be byte-identical for serial and pooled batches.
    config.resolved_map
    rtl_path = rtl_vcd if isinstance(rtl_vcd, str) else None
    bca_path = bca_vcd if isinstance(bca_vcd, str) else None
    base = os.path.dirname(out_path) if out_path else None
    with tele.span("triage.scan", config=config.name, test=test_name,
                   seed=seed):
        parsed_rtl = parse_vcd(rtl_vcd) if isinstance(rtl_vcd, str) \
            else rtl_vcd
        parsed_bca = parse_vcd(bca_vcd) if isinstance(bca_vcd, str) \
            else bca_vcd
        scan = find_first_divergence(parsed_rtl, parsed_bca)
    report = TriageReport(
        config_name=config.name,
        test_name=test_name,
        seed=seed,
        reason=reason,
        verdict=VERDICT_LOCALIZED if scan.diverged
        else VERDICT_NOT_PIN_VISIBLE,
        bugs=tuple(sorted(bugs)),
        total_cycles=scan.total_cycles,
        truncated=scan.truncated,
        only_in_rtl=scan.only_in_a,
        only_in_bca=scan.only_in_b,
        config_text=config.to_text(),
    )
    if scan.first is not None:
        first = scan.first
        report.signal = first.signal
        report.cycle = first.cycle
        report.rtl_value = first.a_value
        report.bca_value = first.b_value
        report.co_diverging = tuple(
            d.signal for d in scan.at_first_cycle
            if d.signal != first.signal
        )
        report.window_start = max(0, first.cycle - WAVE_WINDOW)
        report.window_end = min(scan.total_cycles - 1,
                                first.cycle + WAVE_WINDOW)
        with tele.span("triage.suspects", signal=first.signal):
            suspect_report = rank_suspects(
                config, first.signal, first.cycle, view="bca",
                trace=parsed_bca,
            )
        report.suspects = [s.to_dict() for s in suspect_report.suspects]
        report.cone_complete = suspect_report.complete
        wave_signals = _wave_signals(scan, suspect_report)
        report.cone_signals = tuple(wave_signals)
        from ..analyzer.waveview import render_signals_wave

        report.wave = render_signals_wave(
            parsed_rtl, parsed_bca, wave_signals, first.cycle,
            window=WAVE_WINDOW,
            title=f"cone of {first.signal}",
        )
    repro: Dict[str, str] = {}
    if rtl_path and bca_path:
        repro["analyzer"] = (
            f"python -m repro.analyzer {_relative(rtl_path, base)} "
            f"{_relative(bca_path, base)} --first-divergence"
        )
    bug_flags = f" --bugs {' '.join(sorted(bugs))}" if bugs else ""
    repro["regression"] = (
        f"python -m repro.regression <config-dir> --workdir <workdir> "
        f"--tests {test_name} --seeds {seed}{bug_flags} --triage"
    )
    report.repro = repro
    if tele.enabled:
        tele.registry.counter("triage.suspect_count").inc(
            len(report.suspects))
        if report.cycle is not None:
            tele.registry.counter("triage.first_divergence_cycle").inc(
                report.cycle)
        tele.log.log(
            "triage.complete",
            config=config.name, test=test_name, seed=seed,
            verdict=report.verdict, signal=report.signal,
            cycle=report.cycle, suspects=len(report.suspects),
        )
    if out_path:
        with atomic_write(out_path) as handle:
            handle.write(report.to_json())
    return report


def load_triage(path: str) -> Dict[str, object]:
    """Read a ``triage.json`` back, validating the schema tag."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("schema") != TRIAGE_SCHEMA:
        raise ValueError(
            f"{path!r} is not a triage artifact "
            f"(schema {payload.get('schema')!r})"
        )
    return payload
