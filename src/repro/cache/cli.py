"""``python -m repro.cache`` — inspect the content-addressed store.

The one command today is ``explain``: print every component of a cache
entry's key so invalidation is diagnosable instead of opaque — which
design hash (monolithic or cone-scoped) the entry was stored under,
the configuration text digest, test, seed, view, bug set and
arbitration-checker flag, plus the entry's integrity verdict.

Examples::

    # by path
    python -m repro.cache explain cache/objects/ab/ab12...json

    # by key, against a store root
    python -m repro.cache explain ab12... --root cache/
    REPRO_CACHE_DIR=cache/ python -m repro.cache explain ab12...

Exit status: 0 when the entry verifies, 1 when it exists but fails
verification (the reason is printed), 2 on usage errors (missing or
unlocatable entry).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from typing import List, Optional, Sequence

from .store import CACHE_DIR_ENV, ResultCache, design_source_hash

USAGE_EXIT = 2

_KEY_RE = re.compile(r"^[0-9a-f]{64}$")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cache",
        description="Inspect the content-addressed result cache.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    explain = sub.add_parser(
        "explain",
        help="print every key component of one cache entry",
        description="Print every component of a cache entry's key "
                    "(design/cone hash, config digest, test, seed, "
                    "view, bugs, checker flag) and verify its "
                    "integrity.",
    )
    explain.add_argument(
        "entry",
        help="entry file path, or a 64-hex key to look up under --root "
             "(default root: $REPRO_CACHE_DIR)",
    )
    explain.add_argument(
        "--root", metavar="DIR", default=None,
        help="cache root for key lookups (default: $REPRO_CACHE_DIR)",
    )
    explain.add_argument(
        "--json", action="store_true",
        help="machine-readable output",
    )
    return parser


def _locate(entry: str, root: Optional[str]) -> Optional[str]:
    """Resolve the ``explain`` operand to an entry file path."""
    if os.path.isfile(entry):
        return entry
    if _KEY_RE.match(entry):
        root = root or os.environ.get(CACHE_DIR_ENV) or None
        if root is None:
            return None
        path = ResultCache(root).entry_path(entry)
        if os.path.isfile(path):
            return path
    return None


def _explain(args: argparse.Namespace) -> int:
    path = _locate(args.entry, args.root)
    if path is None:
        if _KEY_RE.match(args.entry) and not (
                args.root or os.environ.get(CACHE_DIR_ENV)):
            print("repro.cache explain: key lookup needs a store root "
                  "(--root or REPRO_CACHE_DIR)", file=sys.stderr)
        else:
            print(f"repro.cache explain: no such entry: {args.entry}",
                  file=sys.stderr)
        return USAGE_EXIT
    with open(path, "rb") as handle:
        raw = handle.read()
    stem = os.path.basename(path)
    key = stem.split(".", 1)[0]
    entry, reason, detail = ResultCache._verify(key, raw)
    if entry is None:
        # Still show whatever parses, so a corrupt entry is diagnosable.
        try:
            parsed = json.loads(raw.decode("utf-8"))
            entry = parsed if isinstance(parsed, dict) else {}
        except (ValueError, UnicodeDecodeError):
            entry = {}
    verified = reason is None
    coords = entry.get("coords") or {}
    key_inputs = entry.get("key_inputs")
    artifacts = entry.get("artifacts") or {}
    current_design = design_source_hash()
    if args.json:
        payload = {
            "entry": path,
            "key": key,
            "schema": entry.get("schema"),
            "verified": verified,
            "coords": coords,
            "key_inputs": key_inputs,
            "artifacts": sorted(artifacts),
            "current_design_hash": current_design,
        }
        if not verified:
            payload["reason"] = reason
            payload["detail"] = detail
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if verified else 1
    lines: List[str] = [
        f"entry: {path}",
        f"key: {key}",
        f"schema: {entry.get('schema')}",
        "integrity: verified" if verified
        else f"integrity: FAILED ({reason}: {detail})",
    ]
    if coords:
        lines.append(
            "coords: config={config} test={test} seed={seed} "
            "view={view}".format(**{
                name: coords.get(name) for name in
                ("config", "test", "seed", "view")}))
    if artifacts:
        lines.append("artifacts: " + ", ".join(sorted(artifacts)))
    if key_inputs is None:
        lines.append(
            "key components: not recorded (entry predates "
            "`repro.cache explain`; re-run the batch to upgrade it)")
    else:
        lines.append("key components:")
        design = key_inputs.get("design")
        mode = ("monolithic design-source hash"
                if design == current_design
                else "cone-scoped or stale design hash")
        lines.append(f"  design: {design}")
        lines.append(f"    ({mode}; current design-source hash is "
                     f"{current_design})")
        lines.append(
            f"  config sha256: {key_inputs.get('config_sha256')}")
        lines.append(f"  test: {key_inputs.get('test')}")
        lines.append(f"  seed: {key_inputs.get('seed')}")
        lines.append(f"  view: {key_inputs.get('view')}")
        bugs = key_inputs.get("bugs") or []
        lines.append(
            "  bugs: " + (", ".join(bugs) if bugs else "(none)"))
        lines.append(
            "  with_arbitration_checker: "
            f"{key_inputs.get('with_arbitration_checker')}")
    print("\n".join(lines))
    return 0 if verified else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "explain":
        return _explain(args)
    parser.print_usage(sys.stderr)  # pragma: no cover - unreachable
    return USAGE_EXIT  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
