"""Content-addressed, integrity-verified result store for regression runs.

The paper's economic claim is that one reusable environment amortizes
verification effort across models and teams; the logical endpoint is a
verification farm where every batch any engineer has ever run feeds a
shared, dedup'd result pool.  This module is that pool's storage layer:

* **Content-addressed keys.**  Every simulation run is deterministic in
  its coordinates, so its result is addressed by the SHA-256 of
  everything that determines it: the *design-source hash* (the bytes of
  every Python module the simulated models are built from), the
  canonical configuration text, the test name, the seed, the view, the
  injected BCA bug set (BCA view only — the RTL view never sees bugs,
  so its entries stay shared across bug experiments) and the
  arbitration-checker flag.  The ``--kernel`` engine selection is
  deliberately *excluded*: the compiled kernel's contract is
  byte-identical artifacts, so a result produced under either engine
  answers for both (the same rationale that excludes it from the resume
  journal's batch signature).

* **Integrity verification on every read.**  Each entry carries the
  SHA-256 digest of its own canonical body.  A torn entry (killed
  writer before atomic rename existed), a flipped byte (bad disk, bad
  NFS), or a poisoned entry (payload swapped under a key it does not
  belong to) fails verification and is **never served**: it is moved to
  ``quarantine/`` with a structured diagnostic and the run re-executes.

* **Atomic, last-wins writes.**  Entries are staged to a unique temp
  file in the store and published with :func:`os.replace`, so any
  number of concurrent writers (workers of one batch, or many engineers
  sharing one cache directory) race harmlessly: readers see a complete
  old entry, a complete new entry, or no entry — never a torn one.

On a hit the store materializes the run's artifacts (VCD, verification
report, coverage report) byte-for-byte into the requesting batch's
workdir and returns the unpickled
:class:`~repro.catg.env.RunResult`, so a cache-served batch renders
reports identical to one that simulated every cycle.
"""

from __future__ import annotations

import base64
import contextlib
import copy
import hashlib
import json
import os
import pickle
import tempfile
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Schema tag of every entry file; entries from an incompatible schema
#: are quarantined, not misread.
CACHE_SCHEMA = "repro.cache/entry/v1"

#: Schema tag of the structured diagnostic written next to a
#: quarantined entry.
DIAGNOSTIC_SCHEMA = "repro.cache/diagnostic/v1"

#: Environment variable naming a default cache root for the regression
#: CLI (``--cache-dir`` overrides it, ``--no-cache`` ignores it).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Package subtrees (under ``src/repro``) whose sources determine a
#: simulation result.  Deliberately excludes the orchestration layers
#: (``regression``, ``telemetry``, ``triage``, ``analysis``, ``lint``,
#: ``analyzer``): a change to the scheduler or the report tooling cannot
#: change a single simulated cycle, so it must not invalidate the pool.
DESIGN_ROOTS: Tuple[str, ...] = (
    "kernel", "stbus", "rtl", "bca", "catg", "fabric", "vcd", "oldflow",
)

#: Module-level memo for :func:`design_source_hash` (the sources cannot
#: change under a running process that already imported them).
_DESIGN_HASH: Optional[str] = None


def design_source_hash(roots: Sequence[str] = DESIGN_ROOTS) -> str:
    """SHA-256 over every ``*.py`` file of the design-defining subtrees.

    Hashed as ``relpath NUL content NUL`` in an explicitly sorted walk
    (directories and files both), with ``__pycache__`` trees and
    compiled ``*.pyc`` files skipped and line endings normalized to
    ``\\n``, so renames, additions and edits all change the hash while a
    checkout of identical sources reproduces it on any platform.
    """
    global _DESIGN_HASH
    if roots == DESIGN_ROOTS and _DESIGN_HASH is not None:
        return _DESIGN_HASH
    package_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    digest = hashlib.sha256()
    for root in roots:
        root_dir = os.path.join(package_dir, root)
        for dirpath, dirnames, filenames in os.walk(root_dir):
            dirnames[:] = sorted(
                d for d in dirnames if d != "__pycache__")
            for name in sorted(filenames):
                if not name.endswith(".py") or name.endswith(".pyc"):
                    continue
                full = os.path.join(dirpath, name)
                rel = os.path.relpath(full, package_dir)
                digest.update(rel.replace(os.sep, "/").encode("utf-8"))
                digest.update(b"\0")
                with open(full, "rb") as handle:
                    data = handle.read()
                digest.update(
                    data.replace(b"\r\n", b"\n").replace(b"\r", b"\n"))
                digest.update(b"\0")
    value = digest.hexdigest()
    if roots == DESIGN_ROOTS:
        _DESIGN_HASH = value
    return value


def cache_key(job, design: Optional[str] = None) -> str:
    """The content address of one run's result.

    ``job`` is a :class:`~repro.regression.parallel.RunJob`; ``design``
    overrides the design-source hash (tests, remote pools with a
    pre-agreed hash).
    """
    # Resolve the address map first: elaboration materializes the
    # default map onto the config, so a resolved and an unresolved copy
    # of the same configuration must key identically.
    job.config.resolved_map
    payload = json.dumps({
        "design": design if design is not None else design_source_hash(),
        "config": job.config.to_text(),
        "test": job.test_name,
        "seed": job.seed,
        "view": job.view,
        # The RTL view never executes with bugs (the runner only seeds
        # them into the BCA model), so RTL entries are shared across
        # bug experiments.
        "bugs": sorted(job.bugs) if job.view == "bca" else [],
        "with_arbitration_checker": job.with_arbitration_checker,
    }, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """What one batch (or one process) did to the store."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    verify_failures: int = 0
    quarantined: int = 0

    def counters(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "verify_failures": self.verify_failures,
            "quarantined": self.quarantined,
        }


@dataclass(frozen=True)
class CacheDiagnostic:
    """Structured record of one rejected (quarantined) entry."""

    key: str
    reason: str        # torn-entry | schema-mismatch | digest-mismatch |
                       # key-mismatch | payload-undecodable
    detail: str
    entry_path: str
    quarantine_path: Optional[str]

    def as_record(self) -> Dict[str, object]:
        return {
            "schema": DIAGNOSTIC_SCHEMA,
            "event": "cache.quarantined",
            "key": self.key,
            "reason": self.reason,
            "detail": self.detail,
            "entry_path": self.entry_path,
            "quarantine_path": self.quarantine_path,
        }


def _encode_blob(data: bytes) -> str:
    return base64.b64encode(zlib.compress(data, 6)).decode("ascii")


def _decode_blob(text: str) -> bytes:
    return zlib.decompress(base64.b64decode(text))


def _entry_digest(body: Dict[str, object]) -> str:
    canonical = json.dumps(body, sort_keys=True).encode("utf-8")
    return hashlib.sha256(canonical).hexdigest()


class ResultCache:
    """A content-addressed result store rooted at one directory.

    Layout::

        <root>/objects/<key[:2]>/<key>.json   one entry per result
        <root>/quarantine/<key>.json          rejected entries (+ .diag.json)

    Thread-compatibility: one instance is used from the coordinating
    process only; concurrent *processes* sharing the same root are safe
    by construction (unique temp files + atomic rename, last-wins).
    """

    def __init__(self, root: str, design: Optional[str] = None,
                 design_resolver=None) -> None:
        self.root = root
        self._design = design
        #: Optional per-job design-key resolver (``job -> hash``), used
        #: by incremental regression to substitute a cone-scoped key
        #: (see :mod:`repro.analysis.impact`) for the monolithic
        #: design-source hash.  When unset, every job keys on
        #: ``design`` (default: the design-source hash).
        self._design_resolver = design_resolver
        self.stats = CacheStats()
        #: Structured events (hit/miss/store/quarantine) for the
        #: telemetry run log; drained by the batch exporter.
        self.events: List[Dict[str, object]] = []

    # -- paths --------------------------------------------------------------

    @property
    def design(self) -> str:
        if self._design is None:
            self._design = design_source_hash()
        return self._design

    def design_for(self, job) -> str:
        """The design-key component of ``job``'s cache key."""
        if self._design_resolver is not None:
            return self._design_resolver(job)
        return self.design

    def key_for(self, job) -> str:
        return cache_key(job, design=self.design_for(job))

    def entry_path(self, key: str) -> str:
        return os.path.join(self.root, "objects", key[:2], f"{key}.json")

    def _quarantine_dir(self) -> str:
        return os.path.join(self.root, "quarantine")

    # -- write --------------------------------------------------------------

    def store(self, job, result,
              artifacts: Dict[str, str]) -> Optional[str]:
        """Publish one run's result (and its artifact bytes) under its
        content address.  Returns the entry path (``None`` when the
        result is not cacheable, e.g. an artifact file vanished).

        The stored payload is stripped of per-execution telemetry and
        process timings: those describe *one historical execution*, not
        the result, and must not leak into a later batch's side-channel
        exports.
        """
        key = self.key_for(job)
        clean = copy.copy(result)
        clean.telemetry = None
        clean.process_seconds = {}
        blobs: Dict[str, str] = {}
        try:
            for role, path in sorted(artifacts.items()):
                with open(path, "rb") as handle:
                    blobs[role] = _encode_blob(handle.read())
        except OSError:
            return None
        # Key components are recorded alongside the entry so cache
        # invalidation is diagnosable (`python -m repro.cache explain`):
        # the config *digest* rather than its full text keeps the entry
        # small while still pinpointing which component diverged.
        job.config.resolved_map
        body = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "coords": {
                "config": job.config.name,
                "test": job.test_name,
                "seed": job.seed,
                "view": job.view,
            },
            "key_inputs": {
                "design": self.design_for(job),
                "config_sha256": hashlib.sha256(
                    job.config.to_text().encode("utf-8")).hexdigest(),
                "test": job.test_name,
                "seed": job.seed,
                "view": job.view,
                "bugs": sorted(job.bugs) if job.view == "bca" else [],
                "with_arbitration_checker": job.with_arbitration_checker,
            },
            "payload": _encode_blob(pickle.dumps(clean, protocol=4)),
            "artifacts": blobs,
        }
        body["digest"] = _entry_digest(
            {name: value for name, value in body.items() if name != "digest"}
        )
        path = self.entry_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            prefix=f".{key[:12]}.", suffix=".tmp~",
            dir=os.path.dirname(path))
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(body, handle, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            with _suppress_oserror():
                os.remove(tmp)
            raise
        self.stats.stores += 1
        self.events.append({
            "event": "cache.store", "key": key, **body["coords"]})
        return path

    # -- read ---------------------------------------------------------------

    def load(self, job, artifacts: Dict[str, str]):
        """Look one run up.  On a verified hit, materialize its artifact
        files at the paths in ``artifacts`` (atomically) and return the
        :class:`~repro.catg.env.RunResult`; on a miss return ``None``.

        A present-but-unverifiable entry (torn, corrupt, poisoned) is
        quarantined with a structured diagnostic and reported as a miss
        — a batch never trusts bytes that fail verification.
        """
        key = self.key_for(job)
        path = self.entry_path(key)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError:
            self._miss(key, job, "no-entry")
            return None
        entry, reason, detail = self._verify(key, raw)
        if entry is None:
            self._quarantine(key, path, reason, detail)
            self._miss(key, job, f"quarantined:{reason}")
            return None
        if not set(artifacts) <= set(entry["artifacts"]):
            # A valid entry stored by a batch that dumped fewer
            # artifacts (e.g. no workdir) cannot satisfy this request;
            # not corruption, just insufficient — plain miss.
            self._miss(key, job, "insufficient-artifacts")
            return None
        try:
            result = pickle.loads(_decode_blob(entry["payload"]))
        except Exception as exc:
            self._quarantine(key, path, "payload-undecodable",
                             f"{type(exc).__name__}: {exc}")
            self._miss(key, job, "quarantined:payload-undecodable")
            return None
        for role, out_path in sorted(artifacts.items()):
            data = _decode_blob(entry["artifacts"][role])
            out_dir = os.path.dirname(out_path) or "."
            fd, tmp = tempfile.mkstemp(
                prefix=f".{key[:12]}.", suffix=".tmp~", dir=out_dir)
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                os.replace(tmp, out_path)
            except BaseException:
                with _suppress_oserror():
                    os.remove(tmp)
                raise
        self.stats.hits += 1
        self.events.append({
            "event": "cache.hit", "key": key,
            "config": job.config.name, "test": job.test_name,
            "seed": job.seed, "view": job.view,
        })
        return result

    # -- verification -------------------------------------------------------

    @staticmethod
    def _verify(key: str, raw: bytes):
        """Parse + verify one entry's bytes.  Returns
        ``(entry, None, None)`` or ``(None, reason, detail)``."""
        try:
            entry = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            return None, "torn-entry", f"undecodable JSON: {exc}"
        if not isinstance(entry, dict) \
                or entry.get("schema") != CACHE_SCHEMA:
            return None, "schema-mismatch", (
                f"expected schema {CACHE_SCHEMA!r}, "
                f"got {entry.get('schema') if isinstance(entry, dict) else type(entry).__name__!r}"
            )
        recorded = entry.get("digest")
        body = {name: value for name, value in entry.items()
                if name != "digest"}
        actual = _entry_digest(body)
        if recorded != actual:
            return None, "digest-mismatch", (
                f"entry digest {recorded} does not match its content "
                f"({actual}); refusing to serve"
            )
        if entry.get("key") != key:
            return None, "key-mismatch", (
                f"entry claims key {entry.get('key')} but is addressed "
                f"as {key}; refusing to serve"
            )
        if not isinstance(entry.get("artifacts"), dict) \
                or "payload" not in entry:
            return None, "schema-mismatch", "entry body is incomplete"
        return entry, None, None

    def _miss(self, key: str, job, reason: str = "no-entry") -> None:
        """Count and log one miss, with attribution: ``no-entry`` (cold
        or key changed), ``insufficient-artifacts``, or
        ``quarantined:<verify reason>``."""
        self.stats.misses += 1
        self.events.append({
            "event": "cache.miss", "key": key, "reason": reason,
            "config": job.config.name, "test": job.test_name,
            "seed": job.seed, "view": job.view,
        })

    def _quarantine(self, key: str, path: str, reason: str,
                    detail: str) -> None:
        """Move a rejected entry out of the addressable store and write
        a structured diagnostic next to it.  The entry is *moved*, not
        deleted: the corrupt bytes are evidence."""
        qdir = self._quarantine_dir()
        os.makedirs(qdir, exist_ok=True)
        dest = os.path.join(qdir, os.path.basename(path))
        index = 0
        while os.path.exists(dest):
            index += 1
            dest = os.path.join(
                qdir, f"{os.path.basename(path)}.{index}")
        moved: Optional[str] = dest
        try:
            os.replace(path, dest)
        except OSError:
            moved = None  # someone else already moved/replaced it
        diagnostic = CacheDiagnostic(
            key=key, reason=reason, detail=detail,
            entry_path=path, quarantine_path=moved,
        )
        if moved is not None:
            with _suppress_oserror():
                fd, tmp = tempfile.mkstemp(
                    prefix=".diag.", suffix=".tmp~", dir=qdir)
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(diagnostic.as_record(), handle,
                              sort_keys=True, indent=1)
                    handle.write("\n")
                os.replace(tmp, dest + ".diag.json")
        self.stats.verify_failures += 1
        if moved is not None:
            self.stats.quarantined += 1
        self.events.append(diagnostic.as_record())


def _suppress_oserror():
    return contextlib.suppress(OSError)
