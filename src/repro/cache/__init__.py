"""Content-addressed, integrity-verified result cache.

``repro.cache`` promotes the resume journal's artifact digests into a
shared result pool: any (design, config, test, seed, view) run that has
ever executed against the same design sources is a cache hit, verified
on read and never served when torn or corrupt.  See
:mod:`repro.cache.store` for the storage contract.
"""

from .store import (
    CACHE_DIR_ENV,
    CACHE_SCHEMA,
    DESIGN_ROOTS,
    DIAGNOSTIC_SCHEMA,
    CacheDiagnostic,
    CacheStats,
    ResultCache,
    cache_key,
    design_source_hash,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA",
    "DESIGN_ROOTS",
    "DIAGNOSTIC_SCHEMA",
    "CacheDiagnostic",
    "CacheStats",
    "ResultCache",
    "cache_key",
    "design_source_hash",
]
