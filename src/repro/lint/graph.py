"""Signal dataflow graph extracted from an elaborated simulator.

The graph is bipartite — signals on one side, processes on the other:

* a **wake edge** runs from a signal to every combinational process that
  lists it in its sensitivity list;
* a **drive edge** runs from a process to every signal it is known to
  write (observed during the elaboration dry run for combinational
  processes, declared at registration for clocked ones).

Composing the two gives the process-level graph the comb-loop rule runs
cycle detection on; the per-signal driver/reader indexes feed the other
rules.  Clocked dataflow is only as precise as the declarations: a design
whose clocked processes do not declare their write (read) sets gets
``clocked_writes_known = False`` (``clocked_reads_known = False``), and
rules that would otherwise produce false positives disable themselves.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..kernel import ProcessInfo, Signal, Simulator


class DesignGraph:
    """Driver/reader/wake indexes over one simulator's design."""

    def __init__(self, sim: Simulator) -> None:
        if not sim.elaborated:
            raise ValueError("DesignGraph needs an elaborated simulator; "
                             "use DesignGraph.from_simulator()")
        self.sim = sim
        self.signals: List[Signal] = list(sim.signals)
        self.comb: List[ProcessInfo] = list(sim.comb_processes)
        self.clocked: List[ProcessInfo] = list(sim.clocked_processes)
        self.traced: bool = bool(sim.tracers)
        self.clocked_writes_known: bool = all(
            info.declared_writes is not None for info in self.clocked
        )
        self.clocked_reads_known: bool = all(
            info.declared_reads is not None for info in self.clocked
        )

        #: signal -> comb processes woken by it (declared sensitivity).
        self.wakes: Dict[Signal, List[ProcessInfo]] = {}
        for info in self.comb:
            for sig in info.sensitivity:
                self.wakes.setdefault(sig, []).append(info)

        #: signal -> processes known to drive it.
        self.known_writers: Dict[Signal, List[ProcessInfo]] = {}
        #: signal -> processes known to read it (sensitivity not included).
        self.known_readers: Dict[Signal, List[ProcessInfo]] = {}
        #: signal -> declared constant drives on it, as (process, value).
        self.tie_offs: Dict[Signal, List[Tuple[ProcessInfo, int]]] = {}
        for info in self.comb:
            for sig in info.observed_writes:
                self.known_writers.setdefault(sig, []).append(info)
            for sig in info.observed_reads:
                self.known_readers.setdefault(sig, []).append(info)
        for info in self.clocked:
            for sig in info.declared_writes or ():
                self.known_writers.setdefault(sig, []).append(info)
            for sig in info.declared_reads or ():
                self.known_readers.setdefault(sig, []).append(info)
            for sig, value in info.declared_tie_offs:
                self.tie_offs.setdefault(sig, []).append((info, value))
                if info.declared_writes is None:
                    # add_clocked() folds tie-offs into a declared write
                    # set; with no declared set, the tie-off is still a
                    # known writer fact.
                    self.known_writers.setdefault(sig, []).append(info)

    def clock_domains(self) -> Dict[str, List[ProcessInfo]]:
        """Clocked processes grouped by declared clock domain.

        Processes without an annotation land in the implicit default
        domain ``"clk"`` — the single simulated clock.
        """
        domains: Dict[str, List[ProcessInfo]] = {}
        for info in self.clocked:
            domains.setdefault(info.domain or "clk", []).append(info)
        return domains

    @classmethod
    def from_simulator(cls, sim: Simulator) -> "DesignGraph":
        """Build the graph, elaborating (with error harvesting) if needed.

        Elaboration *is* the dry run: it executes every combinational
        process once under read/write tracking.  Harvest mode keeps
        defective designs analyzable — a combinational loop or width
        violation is recorded instead of aborting the analysis.
        """
        if not sim.elaborated:
            sim.elaborate(harvest_errors=True)
        return cls(sim)

    # -- combinational cycle detection -----------------------------------------

    def _comb_edges(self) -> Dict[int, Dict[int, Signal]]:
        """Process-level adjacency: P -> Q via the first connecting signal."""
        edges: Dict[int, Dict[int, Signal]] = {}
        for info in self.comb:
            out = edges.setdefault(info.index, {})
            for sig in info.observed_writes:
                for woken in self.wakes.get(sig, ()):
                    out.setdefault(woken.index, sig)
        return edges

    def comb_cycles(self) -> List[List[Tuple[ProcessInfo, Signal]]]:
        """Structural combinational feedback loops.

        Returns one representative cycle per strongly-connected component
        of the process graph, as ``[(process, signal-it-drives-next), ...]``
        in loop order (the last signal wakes the first process again).
        """
        edges = self._comb_edges()
        cycles: List[List[Tuple[ProcessInfo, Signal]]] = []
        for component in _sccs(edges):
            members = set(component)
            if len(component) == 1:
                idx = component[0]
                if idx not in edges.get(idx, {}):
                    continue  # trivial SCC without a self-loop
            path = _cycle_through(edges, min(members), members)
            if path is not None:
                cycles.append(
                    [(self.comb[i], edges[i][j]) for i, j in path]
                )
        return cycles


def _sccs(edges: Dict[int, Dict[int, Signal]]) -> List[List[int]]:
    """Iterative Tarjan strongly-connected components."""
    index_of: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    result: List[List[int]] = []
    counter = [0]

    for root in sorted(edges):
        if root in index_of:
            continue
        # Explicit DFS stack: (node, iterator over successors).
        work: List[Tuple[int, List[int]]] = [(root, sorted(edges.get(root, ())))]
        index_of[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succs = work[-1]
            advanced = False
            while succs:
                nxt = succs.pop(0)
                if nxt not in index_of:
                    index_of[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, sorted(edges.get(nxt, ()))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index_of[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(component)
    return result


def _cycle_through(
    edges: Dict[int, Dict[int, Signal]],
    start: int,
    members: Set[int],
) -> Optional[List[Tuple[int, int]]]:
    """A simple cycle from ``start`` back to itself inside ``members``.

    Returns the cycle as ``[(src, dst), ...]`` edge pairs, or None.
    """
    # BFS over SCC-internal edges; parent links reconstruct the path.
    parent: Dict[int, Tuple[int, int]] = {}
    frontier = [start]
    seen = {start}
    while frontier:
        nxt_frontier: List[int] = []
        for node in frontier:
            for succ in sorted(edges.get(node, ())):
                if succ not in members:
                    continue
                if succ == start:
                    path = [(node, start)]
                    walk = node
                    while walk != start:
                        src, dst = parent[walk]
                        path.append((src, dst))
                        walk = src
                    path.reverse()
                    return path
                if succ not in seen:
                    seen.add(succ)
                    parent[succ] = (node, succ)
                    nxt_frontier.append(succ)
        frontier = nxt_frontier
    return None
