"""Run the rules over simulators, environments and configurations.

Three entry points, in increasing scope:

* :func:`lint_simulator` — one elaborated (or elaboratable) design;
* :func:`lint_view` — one node configuration in one view, by building the
  common verification environment around it exactly as a regression run
  would (minus tracing);
* :func:`lint_config` — both views of one configuration plus the
  cross-view interface-equivalence check the paper's reuse story depends
  on: the RTL and BCA testbenches must expose the *same* port signals with
  the *same* widths, or the "common environment" is not actually common.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..kernel import Simulator
from ..stbus import NodeConfig
from .diagnostics import (
    Finding,
    LintReport,
    Severity,
    Waiver,
    apply_waivers,
)
from .graph import DesignGraph
from .rules import DEFAULT_RULES, RULES, Rule


def lint_simulator(
    sim: Simulator,
    *,
    design: str = "design",
    rules: Optional[Sequence[Rule]] = None,
    waivers: Sequence[Waiver] = (),
) -> LintReport:
    """Statically check one design; no cycle is ever simulated.

    The simulator is elaborated in harvest mode if it has not been
    elaborated yet, so even designs that could not run (combinational
    loops, driver conflicts) produce a report instead of an exception.
    """
    graph = DesignGraph.from_simulator(sim)
    report = LintReport(
        design=design,
        n_signals=len(graph.signals),
        n_comb=len(graph.comb),
        n_clocked=len(graph.clocked),
    )
    for rule in rules if rules is not None else DEFAULT_RULES:
        report.findings.extend(rule.check(graph))
    apply_waivers(report.findings, waivers)
    report.sort()
    return report


def resolve_rules(rule_ids: Optional[Iterable[str]]) -> Optional[List[Rule]]:
    """Map rule ids to Rule records; None passes through (= defaults)."""
    if rule_ids is None:
        return None
    resolved = []
    for rule_id in rule_ids:
        try:
            resolved.append(RULES[rule_id])
        except KeyError:
            known = ", ".join(sorted(RULES))
            raise ValueError(f"unknown rule {rule_id!r} (known: {known})")
    return resolved


# ---------------------------------------------------------------------------
# Environment-level linting
# ---------------------------------------------------------------------------

def build_env(config: NodeConfig, view: str):
    """The environment a regression run would build, without tracing."""
    from ..catg.env import VerificationEnv  # local import: avoid cycle

    return VerificationEnv(config, view=view)


def lint_view(
    config: NodeConfig,
    view: str,
    *,
    rules: Optional[Sequence[Rule]] = None,
    waivers: Sequence[Waiver] = (),
) -> LintReport:
    """Build the full testbench around one view and lint it."""
    env = build_env(config, view)
    return lint_simulator(
        env.sim,
        design=f"{config.name}/{view}",
        rules=rules,
        waivers=waivers,
    )


def interface_signature(sim: Simulator,
                        exclude: Tuple[str, ...] = ("tb.dut.",)
                        ) -> Dict[str, int]:
    """``{signal name: width}`` for the testbench-side interface.

    DUT-internal signals (under ``tb.dut.``) are excluded: the two views
    legitimately differ inside; the reusable environment only requires the
    *port* signals to match.
    """
    return {
        sig.name: sig.width
        for sig in sim.signals
        if not any(sig.name.startswith(prefix) for prefix in exclude)
    }


def cross_view_findings(config: NodeConfig,
                        rtl_sim: Simulator,
                        bca_sim: Simulator) -> List[Finding]:
    """Check both views expose an identical port-level interface."""
    rtl = interface_signature(rtl_sim)
    bca = interface_signature(bca_sim)
    findings: List[Finding] = []
    for name in sorted(set(rtl) - set(bca)):
        findings.append(Finding(
            rule="xview-interface",
            severity=Severity.ERROR,
            message="interface signal exists in the RTL view only "
                    f"(width {rtl[name]}); the common environment cannot "
                    "bind to the BCA view",
            signal=name,
            hint="add the signal to the BCA view or drop it from the "
                 "shared port bundle",
        ))
    for name in sorted(set(bca) - set(rtl)):
        findings.append(Finding(
            rule="xview-interface",
            severity=Severity.ERROR,
            message="interface signal exists in the BCA view only "
                    f"(width {bca[name]})",
            signal=name,
            hint="add the signal to the RTL view or drop it from the "
                 "shared port bundle",
        ))
    for name in sorted(set(rtl) & set(bca)):
        if rtl[name] != bca[name]:
            findings.append(Finding(
                rule="xview-interface",
                severity=Severity.ERROR,
                message=f"width differs between views: {rtl[name]} bit(s) "
                        f"in RTL vs {bca[name]} bit(s) in BCA",
                signal=name,
                hint="derive both widths from the same NodeConfig field",
            ))
    return findings


@dataclass
class ConfigLintReport:
    """Lint outcome for one configuration: both views + cross-view check."""

    config_name: str
    views: Dict[str, LintReport] = field(default_factory=dict)
    cross_view: List[Finding] = field(default_factory=list)

    @property
    def has_errors(self) -> bool:
        return any(r.has_errors for r in self.views.values()) or any(
            f.severity is Severity.ERROR and not f.waived
            for f in self.cross_view
        )

    @property
    def clean(self) -> bool:
        return all(r.clean for r in self.views.values()) and not any(
            not f.waived for f in self.cross_view
        )

    def all_findings(self) -> List[Finding]:
        findings: List[Finding] = []
        for report in self.views.values():
            findings.extend(report.findings)
        findings.extend(self.cross_view)
        return findings

    def render(self) -> str:
        lines = []
        for view in sorted(self.views):
            lines.append(self.views[view].render().rstrip("\n"))
        if self.cross_view:
            lines.append(f"{self.config_name}: cross-view interface")
            for finding in self.cross_view:
                lines.append("  " + finding.render().replace("\n", "\n  "))
        else:
            lines.append(
                f"{self.config_name}: cross-view interface OK "
                "(RTL and BCA ports match)"
            )
        return "\n".join(lines) + "\n"

    def to_dict(self) -> Dict[str, object]:
        from .diagnostics import SCHEMA_VERSION

        return {
            "schema_version": SCHEMA_VERSION,
            "config": self.config_name,
            "clean": self.clean,
            "has_errors": self.has_errors,
            "views": {v: r.to_dict() for v, r in self.views.items()},
            "cross_view": [f.to_dict() for f in self.cross_view],
        }


def lint_config(
    config: NodeConfig,
    *,
    views: Sequence[str] = ("rtl", "bca"),
    rules: Optional[Sequence[Rule]] = None,
    waivers: Sequence[Waiver] = (),
) -> ConfigLintReport:
    """Lint every requested view of one configuration.

    With both views requested, also verifies they present the same
    port-level interface to the (shared) verification environment.
    """
    result = ConfigLintReport(config_name=config.name)
    sims: Dict[str, Simulator] = {}
    for view in views:
        env = build_env(config, view)
        sims[view] = env.sim
        result.views[view] = lint_simulator(
            env.sim,
            design=f"{config.name}/{view}",
            rules=rules,
            waivers=waivers,
        )
    if "rtl" in sims and "bca" in sims:
        result.cross_view = cross_view_findings(
            config, sims["rtl"], sims["bca"]
        )
        apply_waivers(result.cross_view, waivers)
    return result
