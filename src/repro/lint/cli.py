"""Command-line front end: ``python -m repro.lint`` / ``repro-lint``.

Examples::

    # lint every configuration of the built-in sweep, both views
    python -m repro.lint --matrix --small

    # lint the *.cfg files of a configuration directory, JSON output
    python -m repro.lint configs/ --json

    # show the pass catching seeded defects (exits nonzero)
    python -m repro.lint --demo

    # lint a user-provided design: module path + attribute that is (or
    # returns) a Simulator
    python -m repro.lint --design mypkg.mydesign:build

Exit status: 0 when no error-severity findings remain after waivers,
1 when errors remain (with ``--strict``, warnings too), 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
from typing import List, Optional, Sequence

from ..kernel import Simulator
from .diagnostics import Severity, Waiver, WaiverError, parse_waivers
from .rules import RULES
from .runner import (
    ConfigLintReport,
    lint_config,
    lint_simulator,
    resolve_rules,
)

USAGE_EXIT = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static design-rule checker for elaborated designs "
                    "(runs before any cycle is simulated).",
    )
    what = parser.add_argument_group("what to lint (pick one)")
    what.add_argument(
        "config_dir", nargs="?", default=None,
        help="directory of *.cfg node configurations to lint",
    )
    what.add_argument(
        "--matrix", action="store_true",
        help="lint the built-in >36-configuration sweep",
    )
    what.add_argument(
        "--small", action="store_true",
        help="with --matrix: reduced 8-configuration subset",
    )
    what.add_argument(
        "--demo", action="store_true",
        help="lint a deliberately defective demo design (exits nonzero)",
    )
    what.add_argument(
        "--design", metavar="MODULE:ATTR", default=None,
        help="lint a user design: ATTR in MODULE must be a Simulator or a "
             "zero-argument callable returning one",
    )
    parser.add_argument(
        "--view", choices=("rtl", "bca"), action="append", default=None,
        help="restrict config linting to one view (repeatable; default: "
             "both, plus the cross-view interface check)",
    )
    parser.add_argument(
        "--rules", metavar="ID", action="append", default=None,
        help="run only the named rule (repeatable)",
    )
    parser.add_argument(
        "--waivers", metavar="FILE", default=None,
        help="waiver file: one '<rule-glob> <location-glob> [# reason]' "
             "per line",
    )
    parser.add_argument(
        "--waive", metavar="RULE:LOCATION", action="append", default=[],
        help="inline waiver (repeatable), e.g. --waive 'dead-net:tb.*'",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit a JSON report instead of text",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit nonzero on warnings too, not only errors",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _load_waivers(args: argparse.Namespace) -> List[Waiver]:
    waivers: List[Waiver] = []
    if args.waivers:
        with open(args.waivers, "r", encoding="utf-8") as handle:
            waivers.extend(parse_waivers(handle.read()))
    for spec in args.waive:
        rule, sep, location = spec.partition(":")
        if not sep or not rule or not location:
            raise WaiverError(
                f"--waive expects RULE:LOCATION, got {spec!r}"
            )
        waivers.append(Waiver(rule, location, "command line"))
    return waivers


def _load_design(spec: str) -> Simulator:
    module_name, sep, attr = spec.partition(":")
    if not sep or not module_name or not attr:
        raise ValueError(f"--design expects MODULE:ATTR, got {spec!r}")
    module = importlib.import_module(module_name)
    try:
        obj = getattr(module, attr)
    except AttributeError:
        raise ValueError(f"{module_name!r} has no attribute {attr!r}")
    if callable(obj) and not isinstance(obj, Simulator):
        obj = obj()
    if not isinstance(obj, Simulator):
        raise ValueError(
            f"{spec!r} resolved to {type(obj).__name__}, not a Simulator"
        )
    return obj


def _gate(has_errors: bool, has_warnings: bool, strict: bool) -> int:
    if has_errors:
        return 1
    if strict and has_warnings:
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        from .diagnostics import format_rule_listing, rule_doc

        entries = [
            (rule_id, rule.severity.value, rule.summary,
             rule_doc(rule.check))
            for rule_id, rule in sorted(RULES.items())
        ]
        entries.append((
            "xview-interface", "error",
            "RTL and BCA views must expose identical port interfaces",
            "Both views of one configuration must declare the same "
            "ports with the same widths.",
        ))
        print(format_rule_listing(entries))
        return 0

    sources = [bool(args.config_dir), args.matrix, args.demo,
               bool(args.design)]
    if sum(sources) != 1:
        parser.print_usage(sys.stderr)
        print("repro-lint: pick exactly one of CONFIG_DIR, --matrix, "
              "--demo or --design", file=sys.stderr)
        return USAGE_EXIT

    try:
        waivers = _load_waivers(args)
        rules = resolve_rules(args.rules)
    except (WaiverError, ValueError, OSError) as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return USAGE_EXIT

    # -- single-design modes -------------------------------------------------
    if args.demo or args.design:
        try:
            if args.demo:
                from .demo import build_defective_design
                sim = build_defective_design()
                design_name = "lint-demo"
            else:
                sim = _load_design(args.design)
                design_name = args.design
        except (ValueError, ImportError) as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return USAGE_EXIT
        report = lint_simulator(sim, design=design_name, rules=rules,
                                waivers=waivers)
        if args.as_json:
            print(report.to_json())
        else:
            print(report.render(), end="")
        return _gate(report.has_errors, bool(report.warnings), args.strict)

    # -- configuration modes -------------------------------------------------
    if args.matrix:
        from ..regression.configs import configuration_matrix
        configs = configuration_matrix(small=args.small)
    else:
        from ..regression.configs import load_config_dir
        from ..stbus import ConfigError
        try:
            configs = load_config_dir(args.config_dir)
        except ConfigError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return USAGE_EXIT

    views = tuple(args.view) if args.view else ("rtl", "bca")
    reports: List[ConfigLintReport] = []
    for config in configs:
        reports.append(
            lint_config(config, views=views, rules=rules, waivers=waivers)
        )

    has_errors = any(r.has_errors for r in reports)
    has_warnings = any(
        f.severity is Severity.WARNING and not f.waived
        for r in reports for f in r.all_findings()
    )
    if args.as_json:
        from .diagnostics import SCHEMA_VERSION

        print(json.dumps(
            {
                "schema_version": SCHEMA_VERSION,
                "clean": all(r.clean for r in reports),
                "has_errors": has_errors,
                "configs": [r.to_dict() for r in reports],
            },
            indent=2,
        ))
    else:
        for report in reports:
            print(report.render(), end="")
        n_bad = sum(1 for r in reports if r.has_errors)
        print(f"linted {len(reports)} configuration(s) x "
              f"{len(views)} view(s): "
              + ("all clean of errors" if not n_bad
                 else f"{n_bad} with errors"))
    return _gate(has_errors, has_warnings, args.strict)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
