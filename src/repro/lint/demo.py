"""A deliberately defective design, one defect per lint rule.

Used by ``python -m repro.lint --demo`` and ``examples/lint_demo.py`` to
show the pass catching, *before any cycle is simulated*, the classes of
bug that would otherwise surface mid-run (delta overflow, driver
conflict) or never surface at all (floating input, dead net).
"""

from __future__ import annotations

from ..kernel import Module, Simulator


def build_defective_design() -> Simulator:
    """Return an un-elaborated simulator seeded with six distinct defects.

    1. ``demo.a``/``demo.b`` form a two-process combinational loop —
       running this design would raise DeltaOverflowError.
    2. ``demo.floating_in`` is read by a process but driven by nothing.
    3. ``demo.shared`` is driven by two combinational processes.
    4. ``demo.narrow`` (4 bits) is driven with a 5-bit constant.
    5. ``demo.gate`` reads ``demo.sel`` without listing it as sensitive.
    6. ``demo.unused_net`` is written by a clocked process nothing reads.
    """
    sim = Simulator()
    top = Module(sim, "demo")

    # 1. combinational feedback loop: a = !b, b = !a
    a = top.signal("a")
    b = top.signal("b")

    def invert_b() -> None:
        a.drive(1 - int(b))

    def invert_a() -> None:
        b.drive(1 - int(a))

    top.comb(invert_b, [b], name="invert_b")
    top.comb(invert_a, [a], name="invert_a")

    # 2. floating input feeding a mirror process
    floating_in = top.signal("floating_in")
    status = top.signal("status")

    def mirror() -> None:
        status.drive(int(floating_in))

    top.comb(mirror, [floating_in], name="mirror")

    # 3. driver conflict on one net
    shared = top.signal("shared")

    def source_one() -> None:
        shared.drive(int(floating_in))

    def source_two() -> None:
        shared.drive(0)

    top.comb(source_one, [floating_in], name="source_one")
    top.comb(source_two, [floating_in], name="source_two")

    # 4. constant wider than the signal
    narrow = top.signal("narrow", width=4)

    def drive_wide() -> None:
        narrow.drive(0x1F)

    top.comb(drive_wide, [floating_in], name="drive_wide")

    # 5. incomplete sensitivity: reads sel, sensitive only to floating_in
    sel = top.signal("sel")
    gated = top.signal("gated")

    def gate() -> None:
        gated.drive(int(floating_in) & int(sel))

    top.comb(gate, [floating_in], name="gate")

    # 6. clocked process feeding a net nothing consumes
    unused_net = top.signal("unused_net", width=8)

    def pulse() -> None:
        unused_net.drive(1)

    top.clocked(pulse, name="pulse", reads=[], writes=[unused_net])

    return sim
