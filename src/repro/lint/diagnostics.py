"""Structured lint diagnostics: findings, reports, waivers.

A :class:`Finding` is one rule violation, anchored to a signal and/or a
process by hierarchical name and carrying a fix hint — the same shape an
industrial HDL lint tool emits, so the regression flow can gate on
severity and the CLI can render text or JSON.

Waivers follow the usual lint-tool convention: a text file with one
``<rule-glob> <location-glob>`` pair per line (``#`` starts a comment;
the comment doubles as the waive reason).  Waived findings stay in the
report — flagged, but excluded from the error count that gates the flow.
The waiver machinery itself lives in :mod:`repro.analysis.waivers` (one
dialect shared by both static passes) and is re-exported here for
backward compatibility.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field, asdict
from typing import Dict, List, Optional, Tuple

from ..analysis.waivers import (  # noqa: F401  (re-exported public API)
    Waiver,
    WaiverError,
    apply_waivers,
    parse_waivers,
)

#: Version stamp for the JSON report format (see README "Lint JSON
#: schema"); shared with ``repro.analysis`` output.
SCHEMA_VERSION = 1


def rule_doc(check) -> str:
    """First paragraph of a rule check function's docstring, collapsed
    onto one line ('' if none).

    The ``--list-rules`` listings of both CLIs source their per-rule
    documentation from here, so the docstring on the check function is
    the single place a rule's one-line explanation lives.
    """
    doc = (getattr(check, "__doc__", None) or "").strip()
    if not doc:
        return ""
    first_paragraph = doc.split("\n\n", 1)[0]
    return " ".join(line.strip() for line in first_paragraph.splitlines())


def format_rule_listing(entries) -> str:
    """Render ``--list-rules`` output shared by the lint/analysis CLIs.

    ``entries`` — iterable of ``(rule_id, severity, summary, doc)``; the
    doc line (from :func:`rule_doc` or an explicit string for
    pseudo-rules) is printed indented beneath its rule when non-empty.
    """
    lines: List[str] = []
    for rule_id, severity, summary, doc in entries:
        lines.append(f"{rule_id:24s} {severity:8s} {summary}")
        if doc:
            lines.append(f"{'':33s} {doc}")
    return "\n".join(lines)


class Severity(enum.Enum):
    """Finding severity; the regression flow fails fast on ERROR."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass
class Finding:
    """One design-rule violation."""

    rule: str
    severity: Severity
    message: str
    signal: Optional[str] = None  # hierarchical signal name
    process: Optional[str] = None  # hierarchical process name
    path: Tuple[str, ...] = ()  # e.g. the full combinational loop
    hint: str = ""
    waived: bool = False

    @property
    def location(self) -> str:
        """Primary anchor: the signal if known, else the process."""
        return self.signal or self.process or "<design>"

    def render(self) -> str:
        mark = "waived " if self.waived else ""
        lines = [
            f"{mark}{self.severity.value}[{self.rule}] "
            f"{self.location}: {self.message}"
        ]
        if self.path:
            lines.append(f"    path: {' -> '.join(self.path)}")
        if self.hint:
            lines.append(f"    hint: {self.hint}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["severity"] = self.severity.value
        data["path"] = list(self.path)
        return data


@dataclass
class LintReport:
    """All findings for one analyzed design (one simulator instance)."""

    design: str
    findings: List[Finding] = field(default_factory=list)
    n_signals: int = 0
    n_comb: int = 0
    n_clocked: int = 0

    def _live(self) -> List[Finding]:
        return [f for f in self.findings if not f.waived]

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self._live() if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self._live() if f.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    @property
    def clean(self) -> bool:
        """No findings at all (waived ones excepted)."""
        return not self._live()

    def sort(self) -> None:
        self.findings.sort(
            key=lambda f: (f.severity.rank, f.rule, f.location, f.message)
        )

    def summary(self) -> str:
        n_err, n_warn = len(self.errors), len(self.warnings)
        n_waived = sum(1 for f in self.findings if f.waived)
        verdict = "CLEAN" if self.clean else f"{n_err} error(s), {n_warn} warning(s)"
        extra = f", {n_waived} waived" if n_waived else ""
        return (
            f"{self.design}: {verdict}{extra} "
            f"[{self.n_signals} signals, {self.n_comb} comb + "
            f"{self.n_clocked} clocked processes]"
        )

    def render(self, show_waived: bool = True) -> str:
        lines = [self.summary()]
        for finding in self.findings:
            if finding.waived and not show_waived:
                continue
            lines.append("  " + finding.render().replace("\n", "\n  "))
        return "\n".join(lines) + "\n"

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": SCHEMA_VERSION,
            "design": self.design,
            "n_signals": self.n_signals,
            "n_comb": self.n_comb,
            "n_clocked": self.n_clocked,
            "clean": self.clean,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
