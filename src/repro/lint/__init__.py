"""Static design-rule checking (lint) for elaborated designs.

The pass runs over an elaborated :class:`~repro.kernel.Simulator` *before
any cycle is simulated* and reports structural defects — combinational
feedback loops, driver conflicts, floating inputs, dead nets, width
violations, incomplete sensitivity lists — as structured findings with
severities, hierarchical locations and fix hints.  The regression flow
lints both design views of every configuration and fails fast on
error-severity findings; a cross-view check additionally verifies the RTL
and BCA views present the identical port interface the common
verification environment binds to.

Public API::

    from repro.lint import lint_simulator, lint_config, DesignGraph

    report = lint_simulator(sim, design="my-design")
    if report.has_errors:
        print(report.render())
"""

from .diagnostics import (
    Finding,
    LintReport,
    Severity,
    Waiver,
    WaiverError,
    apply_waivers,
    parse_waivers,
)
from .graph import DesignGraph
from .rules import DEFAULT_RULES, RULES, Rule
from .runner import (
    ConfigLintReport,
    cross_view_findings,
    interface_signature,
    lint_config,
    lint_simulator,
    lint_view,
    resolve_rules,
)

__all__ = [
    "Severity",
    "Finding",
    "LintReport",
    "Waiver",
    "WaiverError",
    "parse_waivers",
    "apply_waivers",
    "DesignGraph",
    "Rule",
    "RULES",
    "DEFAULT_RULES",
    "ConfigLintReport",
    "lint_simulator",
    "lint_view",
    "lint_config",
    "interface_signature",
    "cross_view_findings",
    "resolve_rules",
]
