"""The static design rules.

Each rule is a pure function over a :class:`~repro.lint.graph.DesignGraph`
returning :class:`~repro.lint.diagnostics.Finding` objects.  The registry
maps rule ids to :class:`Rule` records so the CLI can list them and the
runner can select subsets.

Soundness stance: rules are built to avoid false positives on designs the
kernel can actually run.

* Combinational dataflow is *observed* (the elaboration dry run), so a
  write or read that only happens under runtime-dependent conditions may
  be missed — the rules under-approximate rather than guess.
* Clocked dataflow is *declared*; rules that need the complete driver
  (reader) universe — ``undriven-input`` and ``dead-net`` — disable
  themselves unless every clocked process declared its writes (reads).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..kernel import Signal
from ..kernel.signal import MultipleDriverError, WidthError
from ..kernel.simulator import DeltaOverflowError
from .diagnostics import Finding, Severity
from .graph import DesignGraph


class Rule:
    """A registered design rule."""

    def __init__(
        self,
        rule_id: str,
        severity: Severity,
        summary: str,
        check: Callable[[DesignGraph], List[Finding]],
    ) -> None:
        self.id = rule_id
        self.severity = severity
        self.summary = summary
        self.check = check

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Rule({self.id}, {self.severity.value})"


RULES: Dict[str, Rule] = {}


def _rule(rule_id: str, severity: Severity, summary: str):
    def register(check: Callable[[DesignGraph], List[Finding]]):
        RULES[rule_id] = Rule(rule_id, severity, summary, check)
        return check

    return register


# ---------------------------------------------------------------------------
# comb-loop
# ---------------------------------------------------------------------------

@_rule(
    "comb-loop",
    Severity.ERROR,
    "combinational feedback loop (would raise DeltaOverflowError)",
)
def check_comb_loop(graph: DesignGraph) -> List[Finding]:
    """Flag combinational feedback cycles (process -> signal -> process)
    that would raise DeltaOverflowError the moment they went active."""
    findings: List[Finding] = []
    cycles = graph.comb_cycles()
    for cycle in cycles:
        path: List[str] = []
        for info, sig in cycle:
            path += [info.name, sig.name]
        path.append(cycle[0][0].name)  # close the loop visually
        first_proc, first_sig = cycle[0]
        findings.append(
            Finding(
                rule="comb-loop",
                severity=Severity.ERROR,
                message=(
                    f"combinational feedback loop through "
                    f"{len(cycle)} process(es): {' -> '.join(path)}"
                ),
                signal=first_sig.name,
                process=first_proc.name,
                path=tuple(path),
                hint=(
                    "break the loop with a clocked (registered) stage, or "
                    "remove the written signal from the downstream "
                    "sensitivity list"
                ),
            )
        )
    if not cycles:
        # A loop the static graph missed (e.g. conditional writes first
        # taken while settling) still surfaces as a harvested overflow.
        for info, exc in graph.sim.elaboration_errors:
            if isinstance(exc, DeltaOverflowError):
                findings.append(
                    Finding(
                        rule="comb-loop",
                        severity=Severity.ERROR,
                        message=f"combinational logic failed to settle "
                                f"during elaboration: {exc}",
                        process=info.name if info else None,
                        hint="break the feedback with a registered stage",
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# multi-driver
# ---------------------------------------------------------------------------

@_rule(
    "multi-driver",
    Severity.ERROR,
    "one signal with two or more registered driving processes",
)
def check_multi_driver(graph: DesignGraph) -> List[Finding]:
    """Flag signals owned by two or more registered processes, plus
    driver conflicts the kernel harvested during elaboration."""
    findings: List[Finding] = []
    reported = set()
    for sig, writers in graph.known_writers.items():
        if len(writers) < 2:
            continue
        names = sorted(w.name for w in writers)
        reported.add(sig.name)
        findings.append(
            Finding(
                rule="multi-driver",
                severity=Severity.ERROR,
                message=(
                    f"driven by {len(writers)} processes: {', '.join(names)}"
                ),
                signal=sig.name,
                hint="give the signal a single owning process, or mux the "
                     "sources explicitly",
            )
        )
    for info, exc in graph.sim.elaboration_errors:
        if isinstance(exc, MultipleDriverError):
            # Conflicts the static sets missed (e.g. an unregistered
            # external writer); the kernel message already names both.
            sig_name = str(exc).split("'")[1] if "'" in str(exc) else None
            if sig_name in reported:
                continue
            findings.append(
                Finding(
                    rule="multi-driver",
                    severity=Severity.ERROR,
                    message=f"driver conflict while elaborating: {exc}",
                    signal=sig_name,
                    process=info.name if info else None,
                    hint="give the signal a single owning process",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# incomplete-sensitivity
# ---------------------------------------------------------------------------

@_rule(
    "incomplete-sensitivity",
    Severity.WARNING,
    "combinational process reads a signal missing from its sensitivity list",
)
def check_incomplete_sensitivity(graph: DesignGraph) -> List[Finding]:
    """Flag signals a comb process was observed reading but left out of
    its sensitivity list, so the process misses their changes."""
    findings: List[Finding] = []
    for info in graph.comb:
        missing = info.observed_reads - set(info.sensitivity)
        for sig in sorted(missing, key=lambda s: s.name):
            findings.append(
                Finding(
                    rule="incomplete-sensitivity",
                    severity=Severity.WARNING,
                    message=(
                        f"read by combinational process {info.name} but "
                        "absent from its sensitivity list (the process "
                        "will not re-evaluate when it changes)"
                    ),
                    signal=sig.name,
                    process=info.name,
                    hint=f"add {sig.name} to the sensitivity list of "
                         f"{info.name}",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# undriven-input
# ---------------------------------------------------------------------------

def _input_signals(graph: DesignGraph) -> List[Tuple[Signal, str]]:
    """Signals some process depends on, with one representative consumer."""
    consumers: Dict[Signal, str] = {}
    for info in graph.comb:
        for sig in info.sensitivity:
            consumers.setdefault(sig, info.name)
        for sig in info.observed_reads:
            consumers.setdefault(sig, info.name)
    for info in graph.clocked:
        for sig in info.declared_reads or ():
            consumers.setdefault(sig, info.name)
    return sorted(consumers.items(), key=lambda item: item[0].name)


@_rule(
    "undriven-input",
    Severity.ERROR,
    "signal read by a process but driven by nothing (floating pin)",
)
def check_undriven_input(graph: DesignGraph) -> List[Finding]:
    """Flag signals consumed by some process but driven by none and
    never toggled externally (a floating input pin)."""
    if not graph.clocked_writes_known:
        # An undeclared clocked process could drive anything; stay silent
        # rather than guess (declare `writes=` on every clocked process
        # to enable this rule).
        return []
    findings: List[Finding] = []
    for sig, consumer in _input_signals(graph):
        if graph.known_writers.get(sig):
            continue
        if sig._value != sig.init:
            continue  # toggled before/at elaboration: externally driven
        findings.append(
            Finding(
                rule="undriven-input",
                severity=Severity.ERROR,
                message=(
                    f"read by {consumer} but driven by no process and "
                    "never toggled (floating input)"
                ),
                signal=sig.name,
                process=consumer,
                hint="connect a driver or tie the signal off with an "
                     "explicit constant drive",
            )
        )
    return findings


# ---------------------------------------------------------------------------
# dead-net
# ---------------------------------------------------------------------------

@_rule(
    "dead-net",
    Severity.WARNING,
    "signal driven but never read, never in a sensitivity list, not traced",
)
def check_dead_net(graph: DesignGraph) -> List[Finding]:
    """Flag driven-but-never-observed signals, exempting nets every
    driver provably pins to a constant (declared tie-off, or a comb
    output function the symbolic lifter proves closed)."""
    if graph.traced:
        return []  # a tracer observes every signal
    if not graph.clocked_reads_known:
        return []  # an undeclared clocked process could read anything
    findings: List[Finding] = []
    for sig in graph.signals:
        writers = graph.known_writers.get(sig)
        if not writers:
            continue
        if graph.known_readers.get(sig) or graph.wakes.get(sig):
            continue
        tied = graph.tie_offs.get(sig, [])
        if all(
            any(w is t for t, _ in tied)
            or _proven_constant_drive(w, sig) is not None
            for w in writers
        ):
            # Every driver pins the net to a constant — by an explicit
            # tie-off declaration (e.g. a BFM tying src to 0) or by a
            # lifted output function proven closed.  Pinned on purpose,
            # not left dangling.  The lift runs only for candidates that
            # already passed the never-observed filter, so clean designs
            # pay nothing.
            continue
        names = ", ".join(sorted(w.name for w in writers))
        findings.append(
            Finding(
                rule="dead-net",
                severity=Severity.WARNING,
                message=f"driven by {names} but never read, never in a "
                        "sensitivity list, and not traced",
                signal=sig.name,
                hint="delete the net, or attach a tracer/reader if it is "
                     "meant to be observed",
            )
        )
    return findings


def _proven_constant_drive(info, sig: Signal):
    """The constant ``info``'s lifted output function provably always
    drives onto ``sig``, or None (unliftable / input-dependent / not a
    comb process)."""
    if info.kind != "comb":
        return None
    from ..analysis.symbolic.ir import evaluate, is_closed
    from ..analysis.symbolic.lift import lift_process

    lifted = lift_process(info)
    assign = lifted.assign_for(sig.name)
    if assign is None or not is_closed(assign.expr):
        return None
    return evaluate(assign.expr, {})


# ---------------------------------------------------------------------------
# width-mismatch
# ---------------------------------------------------------------------------

@_rule(
    "width-mismatch",
    Severity.ERROR,
    "a drive or stored value exceeds the signal's declared width",
)
def check_width_mismatch(graph: DesignGraph) -> List[Finding]:
    """Flag drives whose value exceeds the target's declared bit width,
    plus stored values that violate the width invariant."""
    findings: List[Finding] = []
    seen = set()
    for info, sig, value in graph.sim.width_events:
        key = (sig.name, value)
        if key in seen:
            continue
        seen.add(key)
        by = info.name if info else "<external>"
        findings.append(
            Finding(
                rule="width-mismatch",
                severity=Severity.ERROR,
                message=(
                    f"process {by} drives {value}, which does not fit the "
                    f"declared width of {sig.width} bit(s) "
                    f"(max {sig.mask})"
                ),
                signal=sig.name,
                process=info.name if info else None,
                hint=f"widen {sig.name} or mask the driven expression",
            )
        )
    for sig in graph.signals:
        # Defensive: unreachable through the public constructor/drive API,
        # but subclasses or direct slot pokes can corrupt the invariant.
        if sig.init > sig.mask or sig._value > sig.mask \
                or sig._next > sig.mask:
            findings.append(
                Finding(
                    rule="width-mismatch",
                    severity=Severity.ERROR,
                    message=(
                        f"stored value exceeds the {sig.width}-bit range "
                        f"(init={sig.init}, value={sig._value}, "
                        f"next={sig._next}, max={sig.mask})"
                    ),
                    signal=sig.name,
                    hint=f"declare {sig.name} wide enough for its values",
                )
            )
    # Width errors harvested from processes but not seen by the write hook
    # (cannot happen through Signal.drive; kept for completeness).
    for info, exc in graph.sim.elaboration_errors:
        if isinstance(exc, WidthError) and not graph.sim.width_events:
            findings.append(
                Finding(
                    rule="width-mismatch",
                    severity=Severity.ERROR,
                    message=f"width violation while elaborating: {exc}",
                    process=info.name if info else None,
                )
            )
    return findings


#: Evaluation order (deterministic output order).
DEFAULT_RULES: Tuple[Rule, ...] = tuple(
    RULES[rule_id]
    for rule_id in (
        "comb-loop",
        "multi-driver",
        "undriven-input",
        "width-mismatch",
        "incomplete-sensitivity",
        "dead-net",
    )
)
