"""Two-state signals for the cycle-based simulation kernel.

A :class:`Signal` models a wire or register output visible at the pin level.
Reads always observe the *current* committed value; writes go to a shadow
``next`` value that the simulator commits between delta cycles.  This gives
the usual RTL simulation contract: every process scheduled in the same delta
sees the same stable snapshot, and combinational feedback settles through
repeated delta cycles rather than through Python call ordering.

Values are plain non-negative integers masked to the signal width (2-state
simulation: no ``X``/``Z``; the paper's flow compares VCD dumps of two
2-state-equivalent models, so 4-state resolution is not needed).

Every signal also records the distinct processes that have ever driven it
(``drivers``); the static lint pass (:mod:`repro.lint`) and the
:class:`MultipleDriverError` diagnostics both rely on that bookkeeping to
name the offending processes instead of printing bare values.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .simulator import Simulator


class SignalError(Exception):
    """Base class for signal-related simulation errors."""


class MultipleDriverError(SignalError):
    """Two different processes drove conflicting values in one delta."""


class WidthError(SignalError):
    """A value outside the representable range was driven onto a signal."""


class Signal:
    """A named, fixed-width, 2-state wire with deferred-commit semantics.

    Parameters
    ----------
    name:
        Hierarchical name (``top.dut.req``); used for VCD dumping and
        error messages.
    width:
        Bit width (>= 1).  Values are masked against ``(1 << width) - 1``;
        driving a value that does not fit raises :class:`WidthError`.
    init:
        Reset value, committed before time zero.
    """

    __slots__ = (
        "name",
        "width",
        "mask",
        "init",
        "_value",
        "_next",
        "_pending",
        "_writer",
        "_drivers",
        "_sim",
        "vcd_id",
    )

    def __init__(self, name: str, width: int = 1, init: int = 0) -> None:
        if width < 1:
            raise WidthError(f"signal {name!r}: width must be >= 1, got {width}")
        self.name = name
        self.width = width
        self.mask = (1 << width) - 1
        if init < 0 or init > self.mask:
            raise WidthError(
                f"signal {name!r}: init value {init} does not fit in {width} bits"
            )
        self.init = init
        self._value: int = init
        self._next: int = init
        self._pending = False
        self._writer: Optional[object] = None
        self._drivers: List[object] = []
        self._sim: Optional["Simulator"] = None
        self.vcd_id: Optional[str] = None

    # -- read side ---------------------------------------------------------

    @property
    def value(self) -> int:
        """The committed value, stable within a delta cycle."""
        sim = self._sim
        if sim is not None and sim._read_hook is not None:
            sim._read_hook(self)
        return self._value

    def __bool__(self) -> bool:
        sim = self._sim
        if sim is not None and sim._read_hook is not None:
            sim._read_hook(self)
        return self._value != 0

    def __int__(self) -> int:
        sim = self._sim
        if sim is not None and sim._read_hook is not None:
            sim._read_hook(self)
        return self._value

    def __index__(self) -> int:
        sim = self._sim
        if sim is not None and sim._read_hook is not None:
            sim._read_hook(self)
        return self._value

    # -- write side --------------------------------------------------------

    def drive(self, value: int) -> None:
        """Schedule ``value`` to be committed at the end of this delta.

        Conflicting writes from two different processes in the same delta
        raise :class:`MultipleDriverError`; re-driving the same value is
        allowed (idempotent fan-in of identical drivers is common in
        combinational code).
        """
        value = int(value)
        sim = self._sim
        if sim is not None and sim._write_hook is not None:
            # The hook runs before validation so the lint pass can record
            # over-wide drive attempts with their driving process.
            sim._write_hook(self, value)
        if value < 0 or value > self.mask:
            raise WidthError(
                f"signal {self.name!r}: value {value} does not fit in "
                f"{self.width} bits"
            )
        writer = sim.active_process if sim is not None else None
        if writer is not None:
            drivers = self._drivers
            if (not drivers or drivers[-1] is not writer) \
                    and writer not in drivers:
                drivers.append(writer)
        if self._pending:
            if self._next != value and self._writer is not writer:
                if sim is not None:
                    held_by = sim.process_label(self._writer)
                    new_by = sim.process_label(writer)
                else:  # unbound signal: best effort
                    held_by = repr(self._writer)
                    new_by = repr(writer)
                raise MultipleDriverError(
                    f"signal {self.name!r}: driven to {self._next} by process "
                    f"{held_by} and to {value} by process {new_by} in the "
                    "same delta cycle"
                )
            self._next = value
            self._writer = writer
            return
        self._next = value
        self._pending = True
        self._writer = writer
        if sim is not None:
            sim._schedule_commit(self)

    @property
    def next(self) -> int:
        """The pending (not yet committed) value."""
        return self._next

    @next.setter
    def next(self, value: int) -> None:
        self.drive(value)

    # -- introspection -------------------------------------------------------

    @property
    def drivers(self) -> Tuple[object, ...]:
        """Every distinct process that has driven this signal so far."""
        return tuple(self._drivers)

    def driver_names(self) -> Tuple[str, ...]:
        """Names of the recorded drivers (resolved via the simulator)."""
        sim = self._sim
        if sim is None:
            return tuple(repr(d) for d in self._drivers)
        return tuple(sim.process_label(d) for d in self._drivers)

    # -- kernel interface ----------------------------------------------------

    def _bind(self, sim: "Simulator") -> None:
        if self._sim is not None and self._sim is not sim:
            raise SignalError(
                f"signal {self.name!r} is already bound to another simulator"
            )
        self._sim = sim

    def _commit(self) -> bool:
        """Apply the pending value. Returns True if the value changed."""
        self._pending = False
        self._writer = None
        if self._next != self._value:
            self._value = self._next
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Signal({self.name!r}, width={self.width}, value={self._value})"
