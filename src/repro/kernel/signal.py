"""Two-state signals for the cycle-based simulation kernel.

A :class:`Signal` models a wire or register output visible at the pin level.
Reads always observe the *current* committed value; writes go to a shadow
``next`` value that the simulator commits between delta cycles.  This gives
the usual RTL simulation contract: every process scheduled in the same delta
sees the same stable snapshot, and combinational feedback settles through
repeated delta cycles rather than through Python call ordering.

Values are plain non-negative integers masked to the signal width (2-state
simulation: no ``X``/``Z``; the paper's flow compares VCD dumps of two
2-state-equivalent models, so 4-state resolution is not needed).

Every signal also records the distinct processes that have ever driven it
(``drivers``); the static lint pass (:mod:`repro.lint`) and the
:class:`MultipleDriverError` diagnostics both rely on that bookkeeping to
name the offending processes instead of printing bare values.

Fast path
---------

Reads and writes carry per-access overhead that only matters *during*
elaboration: the read/write attribution hooks exist solely for the
one-shot dry run that feeds the static lint pass.  Once
:meth:`~repro.kernel.simulator.Simulator.elaborate` returns, the
simulator flips every bound signal to :class:`_FastSignal`, a
layout-compatible subclass whose accessors skip the hook checks entirely.
All contracts survive the switch: :class:`WidthError` and
:class:`MultipleDriverError` are still raised with the same
process-named messages, and ``drivers`` bookkeeping still works (backed
by a set for O(1) membership, with the ordered list kept for
diagnostics).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .simulator import Simulator


class SignalError(Exception):
    """Base class for signal-related simulation errors."""


class MultipleDriverError(SignalError):
    """Two different processes drove conflicting values in one delta."""


class WidthError(SignalError):
    """A value outside the representable range was driven onto a signal."""


def multiple_driver_message(
    name: str, held: int, held_by: str, value: int, new_by: str
) -> str:
    """The canonical :class:`MultipleDriverError` text.

    Every drive path — the guarded elaboration accessors, the
    post-elaboration fast path, and the compiled levelized kernel —
    formats conflicts through this one helper, so the diagnostics carry
    identical process names and wording regardless of how the design is
    being scheduled.
    """
    return (
        f"signal {name!r}: driven to {held} by process {held_by} and to "
        f"{value} by process {new_by} in the same delta cycle"
    )


class Signal:
    """A named, fixed-width, 2-state wire with deferred-commit semantics.

    Parameters
    ----------
    name:
        Hierarchical name (``top.dut.req``); used for VCD dumping and
        error messages.
    width:
        Bit width (>= 1).  Values are masked against ``(1 << width) - 1``;
        driving a value that does not fit raises :class:`WidthError`.
    init:
        Reset value, committed before time zero.
    """

    __slots__ = (
        "name",
        "width",
        "mask",
        "init",
        "_value",
        "_next",
        "_pending",
        "_writer",
        "_drivers",
        "_driver_set",
        "_sim",
        "vcd_id",
    )

    def __init__(self, name: str, width: int = 1, init: int = 0) -> None:
        if width < 1:
            raise WidthError(f"signal {name!r}: width must be >= 1, got {width}")
        self.name = name
        self.width = width
        self.mask = (1 << width) - 1
        if init < 0 or init > self.mask:
            raise WidthError(
                f"signal {name!r}: init value {init} does not fit in {width} bits"
            )
        self.init = init
        self._value: int = init
        self._next: int = init
        self._pending = False
        self._writer: Optional[object] = None
        self._drivers: List[object] = []
        self._driver_set: Set[object] = set()
        self._sim: Optional["Simulator"] = None
        self.vcd_id: Optional[str] = None

    # -- read side ---------------------------------------------------------

    @property
    def value(self) -> int:
        """The committed value, stable within a delta cycle."""
        sim = self._sim
        if sim is not None and sim._read_hook is not None:
            sim._read_hook(self)
        return self._value

    def __bool__(self) -> bool:
        sim = self._sim
        if sim is not None and sim._read_hook is not None:
            sim._read_hook(self)
        return self._value != 0

    def __int__(self) -> int:
        sim = self._sim
        if sim is not None and sim._read_hook is not None:
            sim._read_hook(self)
        return self._value

    def __index__(self) -> int:
        sim = self._sim
        if sim is not None and sim._read_hook is not None:
            sim._read_hook(self)
        return self._value

    # -- write side --------------------------------------------------------

    def drive(self, value: int) -> None:
        """Schedule ``value`` to be committed at the end of this delta.

        Conflicting writes from two different processes in the same delta
        raise :class:`MultipleDriverError`; re-driving the same value is
        allowed (idempotent fan-in of identical drivers is common in
        combinational code).
        """
        value = int(value)
        sim = self._sim
        if sim is not None and sim._write_hook is not None:
            # The hook runs before validation so the lint pass can record
            # over-wide drive attempts with their driving process.
            sim._write_hook(self, value)
        if value < 0 or value > self.mask:
            raise WidthError(
                f"signal {self.name!r}: value {value} does not fit in "
                f"{self.width} bits"
            )
        writer = sim.active_process if sim is not None else None
        if writer is not None:
            drivers = self._drivers
            # Identity check first: the overwhelmingly common case is the
            # same process re-driving its own output, and ``is`` beats
            # hashing a bound method.  The set makes the miss O(1).
            if (not drivers or drivers[-1] is not writer) \
                    and writer not in self._driver_set:
                self._driver_set.add(writer)
                drivers.append(writer)
        if self._pending:
            if self._next != value and self._writer is not writer:
                if sim is not None:
                    held_by = sim.process_label(self._writer)
                    new_by = sim.process_label(writer)
                else:  # unbound signal: best effort
                    held_by = repr(self._writer)
                    new_by = repr(writer)
                raise MultipleDriverError(
                    multiple_driver_message(
                        self.name, self._next, held_by, value, new_by
                    )
                )
            self._next = value
            self._writer = writer
            return
        self._next = value
        self._pending = True
        self._writer = writer
        if sim is not None:
            sim._schedule_commit(self)

    @property
    def next(self) -> int:
        """The pending (not yet committed) value."""
        return self._next

    @next.setter
    def next(self, value: int) -> None:
        self.drive(value)

    def poke(self, value: int) -> None:
        """Drive ``value`` and commit it immediately.

        For replaying recorded traces onto unbound signals (the VCD
        ``dump_to_string`` helper, testbench scaffolding) — not for use
        inside simulation processes, where the deferred-commit contract
        of :meth:`drive` applies.
        """
        self.drive(value)
        self._commit()

    # -- introspection -------------------------------------------------------

    @property
    def drivers(self) -> Tuple[object, ...]:
        """Every distinct process that has driven this signal so far."""
        return tuple(self._drivers)

    def driver_names(self) -> Tuple[str, ...]:
        """Names of the recorded drivers (resolved via the simulator)."""
        sim = self._sim
        if sim is None:
            return tuple(repr(d) for d in self._drivers)
        return tuple(sim.process_label(d) for d in self._drivers)

    # -- kernel interface ----------------------------------------------------

    def _bind(self, sim: "Simulator") -> None:
        if self._sim is not None and self._sim is not sim:
            raise SignalError(
                f"signal {self.name!r} is already bound to another simulator"
            )
        self._sim = sim

    def _enable_fast_path(self) -> None:
        """Swap in the post-elaboration fast accessors (idempotent).

        Only bound signals switch: an unbound signal has no simulator to
        take ``active_process`` from, so it keeps the guarded slow path.
        """
        if self._sim is not None and type(self) is Signal:
            self.__class__ = _FastSignal

    def _commit(self) -> bool:
        """Apply the pending value. Returns True if the value changed."""
        self._pending = False
        self._writer = None
        if self._next != self._value:
            self._value = self._next
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Signal({self.name!r}, width={self.width}, value={self._value})"


class _FastSignal(Signal):
    """Post-elaboration accessors with the dry-run hook checks removed.

    The attribution hooks (``sim._read_hook``/``sim._write_hook``) only
    ever exist while :meth:`Simulator.elaborate` runs; afterwards every
    read paid two attribute loads and a comparison for nothing, on the
    hottest path in the kernel.  ``__slots__`` stays empty so instances
    keep the exact :class:`Signal` layout and ``__class__`` assignment is
    legal.  Width validation, driver bookkeeping and the
    :class:`MultipleDriverError` diagnostics are byte-for-byte the same
    as the slow path.
    """

    __slots__ = ()

    @property
    def value(self) -> int:
        return self._value

    def __bool__(self) -> bool:
        return self._value != 0

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def drive(self, value: int) -> None:
        if type(value) is not int:
            value = int(value)
        if value < 0 or value > self.mask:
            raise WidthError(
                f"signal {self.name!r}: value {value} does not fit in "
                f"{self.width} bits"
            )
        sim = self._sim
        writer = sim.active_process
        if writer is not None:
            drivers = self._drivers
            if (not drivers or drivers[-1] is not writer) \
                    and writer not in self._driver_set:
                self._driver_set.add(writer)
                drivers.append(writer)
        if self._pending:
            if self._next != value and self._writer is not writer:
                raise MultipleDriverError(
                    multiple_driver_message(
                        self.name, self._next,
                        sim.process_label(self._writer),
                        value, sim.process_label(writer),
                    )
                )
            self._next = value
            self._writer = writer
            return
        self._next = value
        self._pending = True
        self._writer = writer
        sim._commit_queue.append(self)

    # ``next`` is re-declared so the setter dispatches to the fast drive
    # without an extra method-resolution hop through the base property.
    @property
    def next(self) -> int:
        return self._next

    @next.setter
    def next(self, value: int) -> None:
        self.drive(value)


class _ElidingSignal(_FastSignal):
    """Fast signal that elides redundant re-drives of the current value.

    Used by the compiled levelized kernel, and only on signals it can
    prove have at most one writer (every clocked process declared its
    write set and the known-writer index holds <= 1 entry).  Driving the
    already-committed value with nothing pending is then a no-op: the
    interpreted kernel would schedule the write, commit it, and observe
    no toggle — same values, same wakes, same VCD bytes — so skipping
    the schedule/commit round trip is pure overhead removal.

    The single-writer proof matters: on a multi-writer signal an elided
    first drive would erase the evidence a conflicting second drive is
    checked against, masking a :class:`MultipleDriverError` the
    interpreted kernel raises.  Multi-writer signals therefore keep
    :class:`_FastSignal` semantics.  Elided drives also skip the
    ``drivers`` bookkeeping (there is no new fact to record: an elided
    writer has driven the signal before or never changes it).
    """

    __slots__ = ()

    def drive(self, value: int) -> None:
        if type(value) is not int:
            value = int(value)
        if not self._pending and value == self._value:
            return
        _FastSignal.drive(self, value)

    @property
    def next(self) -> int:
        return self._next

    @next.setter
    def next(self, value: int) -> None:
        self.drive(value)
