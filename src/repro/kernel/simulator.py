"""Cycle-based simulation scheduler with delta-cycle settling.

The kernel replaces the NCSim VHDL/SystemC co-simulation of the paper: it
hosts both the RTL view (clocked + combinational processes at pin level) and
the BCA view (transaction engines that still drive pins every cycle), and it
samples every traced signal once per clock cycle for VCD dumping — which is
exactly the granularity the paper's bus analyzer compares at.

Scheduling model (single implicit clock domain):

1. **Posedge phase** — every clocked process runs once, observing the stable
   pre-edge snapshot and scheduling register updates via ``Signal.drive``.
2. **Commit** — pending writes are applied; signals that changed wake the
   combinational processes sensitive to them.
3. **Delta loop** — woken combinational processes run, their writes commit,
   further processes wake, until no signal changes (bounded; a combinational
   oscillation raises :class:`DeltaOverflowError`).
4. **Sample** — tracers observe the settled end-of-cycle values.

A value visible during cycle *N* is therefore what the circuit shows between
clock edge *N* and edge *N+1*; clocked processes at edge *N+1* read it.

Static metadata
---------------

Every registered process gets a :class:`ProcessInfo` record.  During
:meth:`Simulator.elaborate` the kernel performs a one-shot *read/write
tracking dry run*: while the combinational processes execute for the first
time (and settle), per-signal read and write hooks attribute every signal
access to the running process.  The resulting
``observed_reads``/``observed_writes`` sets, together with the declared
sensitivity lists and any declared clocked read/write sets, form the signal
dataflow graph that the static lint pass (:mod:`repro.lint`) analyzes
before a single cycle is simulated.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from time import perf_counter
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .signal import Signal, SignalError

#: Upper bound on delta cycles per clock cycle before declaring oscillation.
MAX_DELTAS = 1000

Process = Callable[[], None]


class SimulatorError(Exception):
    """Base class for scheduler errors."""


class DeltaOverflowError(SimulatorError):
    """Combinational logic failed to settle (feedback loop)."""


class ElaborationError(SimulatorError):
    """The design was modified after elaboration or used before it."""


def delta_overflow_message(changed: Sequence[Signal]) -> str:
    """The canonical :class:`DeltaOverflowError` text.

    Shared by the interpreted delta loop and the compiled kernel's
    per-island delta loops, so an oscillating design is reported with
    identical wording and signal names whichever engine found it.
    """
    names = ", ".join(s.name for s in changed[:5])
    return (
        f"combinational logic did not settle after {MAX_DELTAS} "
        f"delta cycles (still toggling: {names})"
    )


def _default_label(process: Process) -> str:
    return getattr(process, "__qualname__", None) or repr(process)


@dataclass
class ProcessInfo:
    """Static metadata for one registered process.

    ``sensitivity`` applies to combinational processes only.  The
    ``declared_*`` sets are optional self-descriptions passed at
    registration (``None`` means "unknown"); the ``observed_*`` sets are
    filled in by the elaboration-time dry run.  ``errors`` collects
    exceptions harvested during ``elaborate(harvest_errors=True)``.

    ``declared_tie_offs`` records signals this process drives to a fixed
    constant every activation (``(signal, value)`` pairs); the static
    analysis pass treats them as proven constant nets.  ``domain`` names
    the clock domain a clocked process belongs to; ``None`` means the
    implicit default domain.  Neither changes scheduling — the kernel
    still runs every clocked process on the single simulated clock — but
    they let the CDC rule reason about designs annotated with their
    eventual physical clocking.
    """

    process: Process
    name: str
    kind: str  # "clocked" | "comb"
    index: int
    sensitivity: Tuple[Signal, ...] = ()
    declared_reads: Optional[Tuple[Signal, ...]] = None
    declared_writes: Optional[Tuple[Signal, ...]] = None
    declared_tie_offs: Tuple[Tuple[Signal, int], ...] = ()
    domain: Optional[str] = None
    observed_reads: Set[Signal] = field(default_factory=set)
    observed_writes: Set[Signal] = field(default_factory=set)
    errors: List[Exception] = field(default_factory=list)
    # Memoized source capture: False = not yet attempted, None = attempted
    # and unavailable.  Populated lazily by source()/source_ast() so the
    # registration and simulation hot paths never pay for inspect.
    _source: object = field(default=False, repr=False, compare=False)
    _source_ast: object = field(default=False, repr=False, compare=False)

    def source(self) -> Optional[str]:
        """Dedented source text of the process callable, or None.

        Captured lazily via :func:`inspect.getsource` and memoized; a
        process whose source is unavailable (builtins, callables defined
        in a REPL, ``functools.partial`` objects) yields None — callers
        such as the symbolic lifter degrade honestly instead of failing.
        """
        if self._source is False:
            try:
                self._source = textwrap.dedent(
                    inspect.getsource(self.process)
                )
            except (OSError, TypeError):
                self._source = None
        return self._source  # type: ignore[return-value]

    def source_ast(self) -> Optional[ast.AST]:
        """Parsed AST of :meth:`source` (memoized), or None.

        For a registered lambda the returned node is the ``ast.Lambda``
        itself (the surrounding registration statement is stripped); for
        ``def`` processes it is the ``ast.FunctionDef``.
        """
        if self._source_ast is False:
            self._source_ast = None
            text = self.source()
            if text is not None:
                try:
                    tree = ast.parse(text)
                except SyntaxError:
                    # getsource() of a lambda returns the whole enclosing
                    # statement, which may not parse standalone (e.g. a
                    # dangling close-paren); retry below via the name.
                    tree = None
                if tree is not None:
                    func = getattr(self.process, "__func__", self.process)
                    wanted = getattr(func, "__name__", None)
                    for node in ast.walk(tree):
                        if wanted == "<lambda>":
                            if isinstance(node, ast.Lambda):
                                self._source_ast = node
                                break
                        elif (isinstance(node, (ast.FunctionDef,
                                                ast.AsyncFunctionDef))
                              and node.name == wanted):
                            self._source_ast = node
                            break
        return self._source_ast  # type: ignore[return-value]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ProcessInfo({self.kind}:{self.name!r})"


class Tracer:
    """Interface for per-cycle waveform observers (e.g. a VCD writer).

    The simulator calls :meth:`declare` once per traced signal during
    elaboration and :meth:`sample` once per cycle after settling.
    """

    def declare(self, signal: Signal) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def sample(self, cycle: int, signals: Sequence[Signal]) -> None:
        raise NotImplementedError  # pragma: no cover - interface

    def sample_changes(
        self,
        cycle: int,
        signals: Sequence[Signal],
        changed: Set[Signal],
    ) -> None:
        """Per-cycle sample with the set of signals that committed a
        change this cycle.  The default falls back to the full
        :meth:`sample` scan, so tracers that predate the fast path keep
        working; observers that only care about deltas (the VCD writer)
        override this and skip the unchanged majority.
        """
        self.sample(cycle, signals)

    def finish(self, cycle: int) -> None:
        """Called when the simulation ends; flush buffered output."""


class Simulator:
    """Single-clock, cycle-based scheduler.

    Typical use::

        sim = Simulator()
        a = sim.signal("a", width=8)
        ...build modules, registering processes...
        sim.elaborate()
        sim.run(1000)
    """

    def __init__(self) -> None:
        self.signals: List[Signal] = []
        self._names: Set[str] = set()
        self._clocked: List[Process] = []
        self._comb: List[Process] = []
        self._sensitivity: Dict[Signal, List[int]] = {}
        self._commit_queue: List[Signal] = []
        self._tracers: List[Tracer] = []
        # Per-cycle changed-signal set, maintained only when tracers are
        # attached (the VCD writer samples just these instead of scanning
        # every signal every cycle).
        self._track_changes = False
        self._cycle_changed: Set[Signal] = set()
        # O(1) process -> label lookups (by id; the registration lists
        # keep every process object alive, so ids are never recycled).
        self._comb_labels: Dict[int, str] = {}
        self._clocked_labels: Dict[int, str] = {}
        self._elaborated = False
        self._finished = False
        self.now = 0  #: number of completed clock cycles
        self.active_process: Optional[object] = None
        #: Static metadata, aligned with the registration order.
        self.comb_processes: List[ProcessInfo] = []
        self.clocked_processes: List[ProcessInfo] = []
        #: ``(info-or-None, exception)`` pairs harvested by
        #: ``elaborate(harvest_errors=True)`` (``None`` = raised outside a
        #: specific process, e.g. a delta overflow while settling).
        self.elaboration_errors: List[Tuple[Optional[ProcessInfo], Exception]] = []
        #: ``(info-or-None, signal, value)`` for every over-wide drive
        #: attempt seen during the elaboration dry run.
        self.width_events: List[Tuple[Optional[ProcessInfo], Signal, int]] = []
        # Read/write attribution hooks; installed only while elaborating.
        self._read_hook: Optional[Callable[[Signal], None]] = None
        self._write_hook: Optional[Callable[[Signal, int], None]] = None
        self._track_info: Optional[ProcessInfo] = None
        self._harvest = False
        # Kernel activity counters, always on: each is bumped O(1) per
        # delta iteration or per cycle (never per signal access), so the
        # post-elaboration fast path keeps its cost.  Reset at the end of
        # elaborate() so they count simulated activity only.
        self.stat_deltas = 0  #: delta-loop iterations across all cycles
        self.stat_activations = 0  #: process invocations (clocked + comb)
        self.stat_commits = 0  #: scheduled writes committed
        self.stat_toggles = 0  #: commits that changed a signal's value
        # Levelized-kernel counters; stay 0 under the interpreted delta
        # loop.  Bumped by the attached CompiledKernel (one per straight-
        # line level executed or skipped per cycle).
        self.stat_levels_evaluated = 0  #: compiled levels run
        self.stat_levels_skipped = 0  #: compiled levels skipped (clean inputs)
        #: Attached compiled levelized kernel, or None (interpreted delta
        #: loop).  Set via repro.kernel.compiled.compile_simulator().
        self._compiled: Optional[object] = None
        # Opt-in per-process cumulative wall time: None (off, default) or
        # {process name: [activations, seconds]}.
        self._proc_times: Optional[Dict[str, List[float]]] = None

    # -- construction --------------------------------------------------------

    def signal(self, name: str, width: int = 1, init: int = 0) -> Signal:
        """Create and register a signal owned by this simulator."""
        if self._elaborated:
            raise ElaborationError("cannot add signals after elaborate()")
        if name in self._names:
            raise SignalError(f"duplicate signal name {name!r}")
        sig = Signal(name, width=width, init=init)
        sig._bind(self)
        self.signals.append(sig)
        self._names.add(name)
        return sig

    def add_clocked(
        self,
        process: Process,
        *,
        name: Optional[str] = None,
        reads: Optional[Iterable[Signal]] = None,
        writes: Optional[Iterable[Signal]] = None,
        tie_offs: Optional[Dict[Signal, int]] = None,
        domain: Optional[str] = None,
    ) -> None:
        """Register a process run once per clock posedge.

        ``reads``/``writes`` optionally declare the signals the process may
        ever read or drive.  The kernel never enforces them; they feed the
        static lint pass, whose undriven-input and dead-net rules only run
        when every clocked process in the design declares its set.

        ``tie_offs`` declares signals the process drives to a fixed
        constant on *every* activation (``{signal: value}``); tied
        signals are implicitly part of the write set.  ``domain``
        optionally names the clock domain the process belongs to
        (``None`` = the implicit default domain); the static analysis
        pass flags unsynchronized domain crossings.
        """
        if self._elaborated:
            raise ElaborationError("cannot add processes after elaborate()")
        tied = tuple(tie_offs.items()) if tie_offs else ()
        declared_writes = None if writes is None else tuple(writes)
        if tied and declared_writes is not None:
            # Tie-offs are writes; keep the declared set complete without
            # requiring callers to list tied signals twice.
            extra = tuple(
                sig for sig, _ in tied if sig not in declared_writes
            )
            declared_writes = declared_writes + extra
        info = ProcessInfo(
            process=process,
            name=name or _default_label(process),
            kind="clocked",
            index=len(self._clocked),
            declared_reads=None if reads is None else tuple(reads),
            declared_writes=declared_writes,
            declared_tie_offs=tied,
            domain=domain,
        )
        self._clocked.append(process)
        self.clocked_processes.append(info)
        self._clocked_labels.setdefault(id(process), info.name)

    def assign_clock_domain(self, prefix: str, domain: str) -> None:
        """Annotate every clocked process whose name starts with
        ``prefix`` as belonging to clock ``domain``.

        Static metadata only — scheduling is unchanged.  Lets a fabric
        builder (or a test) tag whole components with their physical
        clock after construction, which is what the CDC analysis rule
        keys on.
        """
        for info in self.clocked_processes:
            if info.name.startswith(prefix):
                info.domain = domain

    def add_comb(
        self,
        process: Process,
        sensitive_to: Iterable[Signal],
        *,
        name: Optional[str] = None,
    ) -> None:
        """Register a combinational process woken by its sensitivity list."""
        if self._elaborated:
            raise ElaborationError("cannot add processes after elaborate()")
        sens = list(sensitive_to)
        if not sens:
            raise SimulatorError("combinational process needs a sensitivity list")
        idx = len(self._comb)
        info = ProcessInfo(
            process=process,
            name=name or _default_label(process),
            kind="comb",
            index=idx,
            sensitivity=tuple(sens),
        )
        self._comb.append(process)
        self.comb_processes.append(info)
        self._comb_labels.setdefault(id(process), info.name)
        for sig in sens:
            self._sensitivity.setdefault(sig, []).append(idx)

    def add_tracer(self, tracer: Tracer) -> None:
        """Attach a waveform observer (must be added before elaborate)."""
        if self._elaborated:
            raise ElaborationError("cannot add tracers after elaborate()")
        self._tracers.append(tracer)

    # -- introspection --------------------------------------------------------

    @property
    def elaborated(self) -> bool:
        return self._elaborated

    @property
    def tracers(self) -> Tuple[Tracer, ...]:
        return tuple(self._tracers)

    def process_label(self, process: Optional[object]) -> str:
        """Human-readable name for a registered process object."""
        if process is None:
            return "<external>"
        label = self._comb_labels.get(id(process))
        if label is None:
            label = self._clocked_labels.get(id(process))
        if label is None:
            return _default_label(process)  # not registered here
        return label

    def enable_process_timing(self) -> None:
        """Opt in to per-process cumulative wall-time accounting.

        Each process activation is then bracketed by two
        ``perf_counter`` calls — cheap, but not free on the hottest
        loop, hence opt-in.  Idempotent; may be called before or after
        :meth:`elaborate`.
        """
        if self._proc_times is None:
            self._proc_times = {}

    def process_times(self) -> Dict[str, Tuple[int, float]]:
        """``{process name: (activations, cumulative seconds)}`` recorded
        since :meth:`enable_process_timing`; empty when timing is off."""
        if self._proc_times is None:
            return {}
        return {
            name: (int(cell[0]), cell[1])
            for name, cell in self._proc_times.items()
        }

    def stats_snapshot(self) -> Dict[str, int]:
        """The kernel activity counters as a plain dict.

        ``cycles`` is the number of completed clock cycles; the other
        counters accumulate from the end of :meth:`elaborate` (the
        elaboration dry run is excluded).
        """
        return {
            "cycles": self.now,
            "delta_iterations": self.stat_deltas,
            "process_activations": self.stat_activations,
            "signal_commits": self.stat_commits,
            "signal_toggles": self.stat_toggles,
            "levels_evaluated": self.stat_levels_evaluated,
            "levels_skipped": self.stat_levels_skipped,
        }

    # -- kernel internals ------------------------------------------------------

    def _schedule_commit(self, sig: Signal) -> None:
        self._commit_queue.append(sig)

    def _commit_all(self) -> List[Signal]:
        changed: List[Signal] = []
        append = changed.append
        queue, self._commit_queue = self._commit_queue, []
        # Signal._commit inlined: this runs once per scheduled write and
        # the method-call overhead alone was measurable (see E5 bench).
        for sig in queue:
            sig._pending = False
            sig._writer = None
            if sig._next != sig._value:
                sig._value = sig._next
                append(sig)
        self.stat_commits += len(queue)
        self.stat_toggles += len(changed)
        if self._track_changes and changed:
            self._cycle_changed.update(changed)
        return changed

    def _abort_commits(self) -> None:
        """Drop pending writes (recovery after a harvested settle error)."""
        for sig in self._commit_queue:
            sig._pending = False
            sig._writer = None
        self._commit_queue.clear()

    def _run_harvested(self, info: ProcessInfo) -> None:
        """Run ``info.process`` recording kernel errors instead of raising."""
        try:
            info.process()
        except (SignalError, SimulatorError) as exc:
            info.errors.append(exc)
            self.elaboration_errors.append((info, exc))

    def _settle(self) -> None:
        """Run the delta loop until no signal changes."""
        self._settle_changed(self._commit_all())

    def _settle_changed(self, changed: List[Signal]) -> None:
        """Delta-iterate to fixpoint from an initial changed-signal list.

        The compiled kernel reuses this as its per-cycle fallback: when
        the static schedule is contradicted at runtime (an unobserved
        write woke an already-evaluated level) it hands the accumulated
        changed set back to the interpreted loop, which finishes the
        cycle with the reference semantics.
        """
        deltas = 0
        tracking = self._read_hook is not None
        times = self._proc_times
        while changed:
            deltas += 1
            if deltas > MAX_DELTAS:
                raise DeltaOverflowError(delta_overflow_message(changed))
            woken: List[int] = []
            seen: Set[int] = set()
            for sig in changed:
                for idx in self._sensitivity.get(sig, ()):
                    if idx not in seen:
                        seen.add(idx)
                        woken.append(idx)
            self.stat_activations += len(woken)
            for idx in woken:
                proc = self._comb[idx]
                self.active_process = proc
                if tracking:
                    self._track_info = self.comb_processes[idx]
                    if self._harvest:
                        self._run_harvested(self.comb_processes[idx])
                        continue
                if times is None:
                    proc()
                else:
                    start = perf_counter()
                    proc()
                    cell = times.get(self.comb_processes[idx].name)
                    if cell is None:
                        times[self.comb_processes[idx].name] = cell = [0, 0.0]
                    cell[0] += 1
                    cell[1] += perf_counter() - start
            self.active_process = None
            changed = self._commit_all()
        self.stat_deltas += deltas

    # -- dry-run attribution hooks ---------------------------------------------

    def _note_read(self, sig: Signal) -> None:
        info = self._track_info
        if info is not None:
            info.observed_reads.add(sig)

    def _note_write(self, sig: Signal, value: int) -> None:
        info = self._track_info
        if info is not None:
            info.observed_writes.add(sig)
        if value < 0 or value > sig.mask:
            self.width_events.append((info, sig, value))

    # -- running ---------------------------------------------------------------

    def elaborate(self, *, harvest_errors: bool = False) -> None:
        """Freeze the design, run every combinational process once, settle.

        The first run doubles as the read/write tracking dry run: every
        signal access is attributed to the running combinational process
        and recorded in its :class:`ProcessInfo`.

        With ``harvest_errors=True`` (used by the lint pass) kernel errors
        raised while elaborating — :class:`~repro.kernel.WidthError`,
        :class:`~repro.kernel.MultipleDriverError`,
        :class:`DeltaOverflowError` — are collected into
        ``elaboration_errors`` instead of propagating, so a defective
        design can still be analyzed statically.
        """
        if self._elaborated:
            raise ElaborationError("elaborate() called twice")
        self._elaborated = True
        for tracer in self._tracers:
            for sig in self.signals:
                tracer.declare(sig)
        self._read_hook = self._note_read
        self._write_hook = self._note_write
        self._harvest = harvest_errors
        try:
            for info in self.comb_processes:
                self.active_process = info.process
                self._track_info = info
                if harvest_errors:
                    self._run_harvested(info)
                else:
                    info.process()
            self.active_process = None
            self._track_info = None
            if harvest_errors:
                try:
                    self._settle()
                except (SignalError, SimulatorError) as exc:
                    self.elaboration_errors.append((None, exc))
                    self._abort_commits()
            else:
                self._settle()
        finally:
            self._read_hook = None
            self._write_hook = None
            self._track_info = None
            self._harvest = False
            self.active_process = None
        # The dry run is over and the hooks are gone for good: switch
        # every signal to the unguarded fast accessors, and start
        # maintaining the per-cycle changed-signal set tracers sample.
        for sig in self.signals:
            sig._enable_fast_path()
        self._track_changes = bool(self._tracers)
        # Activity counters start at zero simulated work: the dry-run
        # settle above would otherwise leak into the first cycle's stats.
        self.stat_deltas = 0
        self.stat_activations = 0
        self.stat_commits = 0
        self.stat_toggles = 0
        self.stat_levels_evaluated = 0
        self.stat_levels_skipped = 0
        if self._proc_times is not None:
            self._proc_times.clear()

    def step(self) -> None:
        """Advance one clock cycle: posedge, commit, settle, sample.

        With a compiled kernel attached (``self._compiled``), the
        posedge/commit/settle body is delegated to its levelized cycle
        runner; sampling and time bookkeeping are shared, so tracers see
        the same end-of-cycle snapshot either way.
        """
        if not self._elaborated:
            raise ElaborationError("call elaborate() before step()")
        if self._finished:
            raise SimulatorError("simulation already finished")
        compiled = self._compiled
        if compiled is not None:
            compiled.cycle()
        else:
            times = self._proc_times
            if times is None:
                for proc in self._clocked:
                    self.active_process = proc
                    proc()
            else:
                for info in self.clocked_processes:
                    self.active_process = info.process
                    start = perf_counter()
                    info.process()
                    cell = times.get(info.name)
                    if cell is None:
                        times[info.name] = cell = [0, 0.0]
                    cell[0] += 1
                    cell[1] += perf_counter() - start
            self.active_process = None
            self.stat_activations += len(self._clocked)
            self._settle()
        if self._tracers:
            changed = self._cycle_changed
            for tracer in self._tracers:
                tracer.sample_changes(self.now, self.signals, changed)
            if changed:
                changed.clear()
        self.now += 1

    def run(self, cycles: int) -> None:
        """Run ``cycles`` clock cycles."""
        for _ in range(cycles):
            self.step()

    def run_until(self, predicate: Callable[[], bool], max_cycles: int) -> int:
        """Run until ``predicate()`` is true (checked after each cycle).

        Returns the number of cycles executed; raises
        :class:`SimulatorError` if the predicate never became true.
        """
        for executed in range(1, max_cycles + 1):
            self.step()
            if predicate():
                return executed
        raise SimulatorError(
            f"condition not reached within {max_cycles} cycles"
        )

    def finish(self) -> None:
        """End the simulation and flush tracers. Idempotent."""
        if self._finished:
            return
        self._finished = True
        for tracer in self._tracers:
            tracer.finish(self.now)
