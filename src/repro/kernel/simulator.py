"""Cycle-based simulation scheduler with delta-cycle settling.

The kernel replaces the NCSim VHDL/SystemC co-simulation of the paper: it
hosts both the RTL view (clocked + combinational processes at pin level) and
the BCA view (transaction engines that still drive pins every cycle), and it
samples every traced signal once per clock cycle for VCD dumping — which is
exactly the granularity the paper's bus analyzer compares at.

Scheduling model (single implicit clock domain):

1. **Posedge phase** — every clocked process runs once, observing the stable
   pre-edge snapshot and scheduling register updates via ``Signal.drive``.
2. **Commit** — pending writes are applied; signals that changed wake the
   combinational processes sensitive to them.
3. **Delta loop** — woken combinational processes run, their writes commit,
   further processes wake, until no signal changes (bounded; a combinational
   oscillation raises :class:`DeltaOverflowError`).
4. **Sample** — tracers observe the settled end-of-cycle values.

A value visible during cycle *N* is therefore what the circuit shows between
clock edge *N* and edge *N+1*; clocked processes at edge *N+1* read it.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from .signal import Signal, SignalError

#: Upper bound on delta cycles per clock cycle before declaring oscillation.
MAX_DELTAS = 1000

Process = Callable[[], None]


class SimulatorError(Exception):
    """Base class for scheduler errors."""


class DeltaOverflowError(SimulatorError):
    """Combinational logic failed to settle (feedback loop)."""


class ElaborationError(SimulatorError):
    """The design was modified after elaboration or used before it."""


class Tracer:
    """Interface for per-cycle waveform observers (e.g. a VCD writer).

    The simulator calls :meth:`declare` once per traced signal during
    elaboration and :meth:`sample` once per cycle after settling.
    """

    def declare(self, signal: Signal) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def sample(self, cycle: int, signals: Sequence[Signal]) -> None:
        raise NotImplementedError  # pragma: no cover - interface

    def finish(self, cycle: int) -> None:
        """Called when the simulation ends; flush buffered output."""


class Simulator:
    """Single-clock, cycle-based scheduler.

    Typical use::

        sim = Simulator()
        a = sim.signal("a", width=8)
        ...build modules, registering processes...
        sim.elaborate()
        sim.run(1000)
    """

    def __init__(self) -> None:
        self.signals: List[Signal] = []
        self._names: Set[str] = set()
        self._clocked: List[Process] = []
        self._comb: List[Process] = []
        self._sensitivity: Dict[Signal, List[int]] = {}
        self._comb_of: List[List[Signal]] = []
        self._commit_queue: List[Signal] = []
        self._tracers: List[Tracer] = []
        self._elaborated = False
        self._finished = False
        self.now = 0  #: number of completed clock cycles
        self.active_process: Optional[object] = None

    # -- construction --------------------------------------------------------

    def signal(self, name: str, width: int = 1, init: int = 0) -> Signal:
        """Create and register a signal owned by this simulator."""
        if self._elaborated:
            raise ElaborationError("cannot add signals after elaborate()")
        if name in self._names:
            raise SignalError(f"duplicate signal name {name!r}")
        sig = Signal(name, width=width, init=init)
        sig._bind(self)
        self.signals.append(sig)
        self._names.add(name)
        return sig

    def add_clocked(self, process: Process) -> None:
        """Register a process run once per clock posedge."""
        if self._elaborated:
            raise ElaborationError("cannot add processes after elaborate()")
        self._clocked.append(process)

    def add_comb(self, process: Process, sensitive_to: Iterable[Signal]) -> None:
        """Register a combinational process woken by its sensitivity list."""
        if self._elaborated:
            raise ElaborationError("cannot add processes after elaborate()")
        idx = len(self._comb)
        self._comb.append(process)
        sens = list(sensitive_to)
        if not sens:
            raise SimulatorError("combinational process needs a sensitivity list")
        self._comb_of.append(sens)
        for sig in sens:
            self._sensitivity.setdefault(sig, []).append(idx)

    def add_tracer(self, tracer: Tracer) -> None:
        """Attach a waveform observer (must be added before elaborate)."""
        if self._elaborated:
            raise ElaborationError("cannot add tracers after elaborate()")
        self._tracers.append(tracer)

    # -- kernel internals ------------------------------------------------------

    def _schedule_commit(self, sig: Signal) -> None:
        self._commit_queue.append(sig)

    def _commit_all(self) -> List[Signal]:
        changed: List[Signal] = []
        queue, self._commit_queue = self._commit_queue, []
        for sig in queue:
            if sig._commit():
                changed.append(sig)
        return changed

    def _settle(self) -> None:
        """Run the delta loop until no signal changes."""
        changed = self._commit_all()
        deltas = 0
        while changed:
            deltas += 1
            if deltas > MAX_DELTAS:
                names = ", ".join(s.name for s in changed[:5])
                raise DeltaOverflowError(
                    f"combinational logic did not settle after {MAX_DELTAS} "
                    f"delta cycles (still toggling: {names})"
                )
            woken: List[int] = []
            seen: Set[int] = set()
            for sig in changed:
                for idx in self._sensitivity.get(sig, ()):
                    if idx not in seen:
                        seen.add(idx)
                        woken.append(idx)
            for idx in woken:
                self.active_process = self._comb[idx]
                self._comb[idx]()
            self.active_process = None
            changed = self._commit_all()

    # -- running ---------------------------------------------------------------

    def elaborate(self) -> None:
        """Freeze the design, run every combinational process once, settle."""
        if self._elaborated:
            raise ElaborationError("elaborate() called twice")
        self._elaborated = True
        for tracer in self._tracers:
            for sig in self.signals:
                tracer.declare(sig)
        for idx, proc in enumerate(self._comb):
            self.active_process = proc
            proc()
        self.active_process = None
        self._settle()

    def step(self) -> None:
        """Advance one clock cycle: posedge, commit, settle, sample."""
        if not self._elaborated:
            raise ElaborationError("call elaborate() before step()")
        if self._finished:
            raise SimulatorError("simulation already finished")
        for proc in self._clocked:
            self.active_process = proc
            proc()
        self.active_process = None
        self._settle()
        for tracer in self._tracers:
            tracer.sample(self.now, self.signals)
        self.now += 1

    def run(self, cycles: int) -> None:
        """Run ``cycles`` clock cycles."""
        for _ in range(cycles):
            self.step()

    def run_until(self, predicate: Callable[[], bool], max_cycles: int) -> int:
        """Run until ``predicate()`` is true (checked after each cycle).

        Returns the number of cycles executed; raises
        :class:`SimulatorError` if the predicate never became true.
        """
        for executed in range(1, max_cycles + 1):
            self.step()
            if predicate():
                return executed
        raise SimulatorError(
            f"condition not reached within {max_cycles} cycles"
        )

    def finish(self) -> None:
        """End the simulation and flush tracers. Idempotent."""
        if self._finished:
            return
        self._finished = True
        for tracer in self._tracers:
            tracer.finish(self.now)
