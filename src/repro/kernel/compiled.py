"""Compiled levelized kernel: straight-line cycles instead of delta loops.

The interpreted scheduler settles combinational logic by iterating the
delta loop to fixpoint every clock cycle — every wave re-derives who to
wake, re-runs the commit scan, and re-executes processes whose inputs
settled waves ago.  For logic the static dataflow graph
(:mod:`repro.analysis.dataflow`) can prove acyclic, that fixpoint is
unique and reachable in one topologically-ordered pass; this module
computes that order once, after :meth:`~repro.kernel.Simulator.elaborate`,
and replaces the per-cycle loop with it.

Three layers stack on the static schedule:

1. **Levelized execution** — clocked processes run and commit, then each
   level of combinational processes runs exactly once, in ascending
   level order, with one commit per level.  Strongly-connected comb
   subgraphs ("islands") keep a local delta loop at their level, so a
   design with real feedback still simulates — honest degradation, never
   wrong answers.
2. **Closure specialization** — the per-cycle body is emitted as one
   generated Python function with the process callables, sensitivity
   frozensets and level structure bound as locals of its namespace:
   no per-cycle list walks, dict lookups or bound-method re-resolution.
   (With per-process timing enabled, a generic interpreter path with the
   same semantics runs instead.)
3. **Dirty-cone scheduling** — each straight-line process runs only when
   the cycle's accumulated changed-signal set intersects its sensitivity
   list, and a level none of whose processes are dirty is skipped
   entirely (counted in ``stat_levels_skipped``).

Why the results are byte-identical to the interpreted kernel: processes
commit through the same :meth:`Simulator._commit_all`, combinational
processes are pure functions of committed signal values within the
settle phase (the contract the whole environment is built on), and an
acyclic dataflow has exactly one fixpoint — so end-of-cycle values, the
per-cycle changed set the VCD writer samples, and every report derived
from them are unchanged.  Diagnostics go through the shared formatting
helpers (:func:`repro.kernel.multiple_driver_message`,
:func:`repro.kernel.delta_overflow_message`), so error text matches too.

The schedule trusts the elaboration dry run's *observed* write sets.  A
process with a data-dependent write the dry run never saw could break
the ordering, so the kernel guards every level's commit: a changed
signal that wakes a unit at the current level or below contradicts the
schedule, and the cycle falls back to the interpreted delta loop
(:meth:`Simulator._settle_changed`) seeded with everything changed so
far — the reference semantics finish the cycle.  Guarded fallback makes
the compiled kernel safe on *any* design, not just provably-complete
ones.

Drive elision rides along: a signal every clocked process declared its
writes against and that has at most one known writer can skip redundant
re-drives of its current value (see
:class:`~repro.kernel.signal._ElidingSignal`) — on the stock node that
removes ~5/6 of all scheduled commits.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from .signal import Signal, _ElidingSignal, _FastSignal
from .simulator import (
    MAX_DELTAS,
    DeltaOverflowError,
    ElaborationError,
    ProcessInfo,
    Simulator,
    delta_overflow_message,
)

#: Engine-selection values accepted by the environment and CLI.
KERNELS = ("delta", "compiled", "auto")


class _Island:
    """Execution state for one strongly-connected comb subgraph."""

    __slots__ = ("level", "procs", "sens_union", "wakes", "guard", "names")

    def __init__(self, level: int,
                 procs: List[Tuple[Callable[[], None], ProcessInfo,
                                   FrozenSet[Signal]]]) -> None:
        self.level = level
        self.procs = procs
        self.sens_union: FrozenSet[Signal] = frozenset().union(
            *(sens for _, _, sens in procs)
        ) if procs else frozenset()
        #: signal -> member positions woken by it, in the simulator's
        #: sensitivity registration order (mirrors the delta loop's wake
        #: ordering for identical process execution order).
        self.wakes: Dict[Signal, Tuple[int, ...]] = {}
        #: signals that, when changed by this island, wake a *different*
        #: unit at this level or below — a schedule contradiction.
        self.guard: FrozenSet[Signal] = frozenset()
        self.names = tuple(info.name for _, info, _ in procs)


class CompiledKernel:
    """Static levelized scheduler attached to an elaborated simulator.

    Build one with :func:`compile_simulator` (or :func:`maybe_compile`
    for string-valued engine selection).  While attached, each
    :meth:`Simulator.step` delegates its posedge/commit/settle body to
    :meth:`cycle`; :meth:`detach` restores the interpreted delta loop.

    Parameters
    ----------
    sim:
        An elaborated simulator.
    specialize:
        Emit the per-design specialized cycle closure (default).  With
        ``False`` — or whenever per-process timing is enabled — a
        generic interpreter with identical semantics runs instead.
    dirty_cones:
        Skip straight-line processes whose sensitivity sets are disjoint
        from the cycle's accumulated changed set (default).  With
        ``False`` every scheduled process runs every non-idle cycle —
        values are still identical (pure processes re-drive what they
        already drove); only the activation counts grow.
    """

    def __init__(self, sim: Simulator, *, specialize: bool = True,
                 dirty_cones: bool = True) -> None:
        if not sim.elaborated:
            raise ElaborationError(
                "compile_simulator() needs an elaborated simulator"
            )
        # Imported here, not at module top: the analysis layer imports
        # repro.kernel right back, and this module must stay importable
        # while the kernel package initializes.
        from ..analysis.dataflow import levelize_comb
        from ..lint.graph import DesignGraph

        self.sim = sim
        self.specialize = specialize
        self.dirty_cones = dirty_cones
        self.design = DesignGraph(sim)
        self.schedule = levelize_comb(self.design)
        #: cycles finished by the interpreted loop after a guard hit.
        self.fallback_cycles = 0
        #: signals switched to redundant-drive elision at attach time.
        self.elided: Tuple[Signal, ...] = tuple(self._elidable_signals())
        self._build_plan()
        self._cycle_fn: Callable[[], None] = (
            self._emit() if specialize else self._generic_cycle
        )
        self._attached = False

    # -- construction --------------------------------------------------------

    def _elidable_signals(self) -> List[Signal]:
        """Signals proven single-writer, safe for drive elision.

        Requires the clocked write universe to be complete (every
        clocked process declared its writes) so the known-writer index
        is trustworthy; a signal with two or more known writers keeps
        full :class:`MultipleDriverError` bookkeeping.
        """
        if not self.design.clocked_writes_known:
            return []
        writers = self.design.known_writers
        return [
            sig for sig in self.sim.signals
            if len(writers.get(sig, ())) <= 1 and type(sig) is _FastSignal
        ]

    def _build_plan(self) -> None:
        sim = self.sim
        sched = self.schedule
        comb = sim._comb

        def bind(info: ProcessInfo):
            return (comb[info.index], info, frozenset(info.sensitivity))

        #: per level: straight-line (proc, info, sens) triples.
        self._levels: List[List[Tuple[Callable[[], None], ProcessInfo,
                                      FrozenSet[Signal]]]] = [
            [bind(info) for info in level] for level in sched.levels
        ]
        self._n_straight_levels = sum(1 for lv in self._levels if lv)
        self._islands: List[_Island] = []
        for island in sched.islands:
            entry = _Island(island.level, [bind(i) for i in island.members])
            member_pos = {info.index: pos
                          for pos, (_, info, _) in enumerate(entry.procs)}
            for sig in entry.sens_union:
                positions = tuple(
                    member_pos[idx]
                    for idx in sim._sensitivity.get(sig, ())
                    if idx in member_pos
                )
                if positions:
                    entry.wakes[sig] = positions
            self._islands.append(entry)
        #: islands indexed per level, in deterministic order.
        n_levels = max(
            [len(self._levels)] + [i.level + 1 for i in self._islands]
        ) if (self._levels or self._islands) else 0
        while len(self._levels) < n_levels:
            self._levels.append([])
        self._level_islands: List[List[int]] = [[] for _ in range(n_levels)]
        for k, island in enumerate(self._islands):
            self._level_islands[island.level].append(k)

        # Guard sets.  A *unit* is a straight process or an island; a
        # signal's minimum wake level is the lowest level of any unit
        # sensitive to it.  A commit at the end of level L that changes
        # a signal with min-wake <= L means a unit that already ran (or
        # is running) should have seen it — the schedule missed a write.
        units: List[Tuple[int, FrozenSet[Signal], Optional[int]]] = []
        for lv, procs in enumerate(self._levels):
            for _, _, sens in procs:
                units.append((lv, sens, None))
        for k, island in enumerate(self._islands):
            units.append((island.level, island.sens_union, k))
        min_wake: Dict[Signal, int] = {}
        for lv, sens, _ in units:
            for sig in sens:
                cur = min_wake.get(sig)
                if cur is None or lv < cur:
                    min_wake[sig] = lv
        self._guards: List[FrozenSet[Signal]] = [
            frozenset(s for s, lv in min_wake.items() if lv <= L)
            for L in range(n_levels)
        ]
        for k, island in enumerate(self._islands):
            island.guard = frozenset(
                sig
                for lv, sens, island_id in units
                if lv <= island.level and island_id != k
                for sig in sens
            )

    def _emit(self) -> Callable[[], None]:
        """Generate the specialized per-design cycle closure.

        The emitted function unrolls the clocked calls and per-level
        dirty checks with every process callable, sensitivity frozenset
        and guard set pre-bound in its globals — the per-cycle path does
        no dict lookups, no list iteration over registration tables, and
        no attribute chains beyond the simulator's own counters.
        """
        sim = self.sim
        ns: Dict[str, object] = {
            "SIM": sim,
            "COMMIT": sim._commit_all,
            "FALLBACK": self._fallback,
            "ISLAND": self._run_island,
        }
        lines = ["def cycle():", "    sim = SIM"]
        for i, proc in enumerate(sim._clocked):
            ns[f"C{i}"] = proc
            lines.append(f"    sim.active_process = C{i}")
            lines.append(f"    C{i}()")
        if sim._clocked:
            lines.append("    sim.active_process = None")
            lines.append(
                f"    sim.stat_activations += {len(sim._clocked)}"
            )
        lines.append("    changed = COMMIT()")
        lines.append("    if not changed:")
        lines.append(
            f"        sim.stat_levels_skipped += {self._n_straight_levels}"
        )
        lines.append("        return")
        lines.append("    dirty = set(changed)")
        for L, procs in enumerate(self._levels):
            if procs:
                lines.append(f"    ran = 0  # level {L}")
                for _, info, _ in procs:
                    j = info.index
                    ns[f"P{j}"] = sim._comb[j]
                    if self.dirty_cones:
                        ns[f"S{j}"] = frozenset(info.sensitivity)
                        lines.append(f"    if not S{j}.isdisjoint(dirty):")
                        lines.append(f"        sim.active_process = P{j}")
                        lines.append(f"        P{j}()")
                        lines.append("        ran += 1")
                    else:
                        lines.append(f"    sim.active_process = P{j}")
                        lines.append(f"    P{j}()")
                        lines.append("    ran += 1")
                lines.append("    if ran:")
                lines.append("        sim.stat_activations += ran")
                lines.append("        sim.active_process = None")
                lines.append("        sim.stat_levels_evaluated += 1")
                lines.append("        new = COMMIT()")
                lines.append("        if new:")
                if self._guards[L]:
                    ns[f"G{L}"] = self._guards[L]
                    lines.append(
                        f"            if not G{L}.isdisjoint(new):"
                    )
                    lines.append("                FALLBACK(dirty, new)")
                    lines.append("                return")
                lines.append("            dirty.update(new)")
                lines.append("    else:")
                lines.append("        sim.stat_levels_skipped += 1")
            for k in self._level_islands[L]:
                ns[f"IS{k}"] = self._islands[k].sens_union
                lines.append(f"    if not IS{k}.isdisjoint(dirty):")
                lines.append(f"        if ISLAND({k}, dirty):")
                lines.append("            return")
        self.source = "\n".join(lines) + "\n"
        exec(compile(self.source, "<repro.kernel.compiled>", "exec"), ns)
        return ns["cycle"]  # type: ignore[return-value]

    # -- attachment ----------------------------------------------------------

    def attach(self) -> "CompiledKernel":
        """Install this kernel on the simulator (idempotent)."""
        if self.sim._compiled is self:
            return self
        if self.sim._compiled is not None:
            raise ElaborationError(
                "a compiled kernel is already attached to this simulator"
            )
        for sig in self.elided:
            sig.__class__ = _ElidingSignal
        self.sim._compiled = self
        self._attached = True
        return self

    def detach(self) -> None:
        """Restore the interpreted delta loop (and plain fast signals)."""
        if self.sim._compiled is self:
            self.sim._compiled = None
            for sig in self.elided:
                sig.__class__ = _FastSignal
        self._attached = False

    # -- execution -----------------------------------------------------------

    def cycle(self) -> None:
        """One clock cycle: posedge, commit, levels in order.

        Called by :meth:`Simulator.step`; sampling and ``now`` stay in
        the simulator.  Per-process timing forces the generic path (the
        specialized closure has no timing brackets, by design).
        """
        if self.sim._proc_times is not None:
            self._generic_cycle()
        else:
            self._cycle_fn()

    def _generic_cycle(self) -> None:
        """Interpreter twin of the emitted closure (same semantics)."""
        sim = self.sim
        times = sim._proc_times
        if times is None:
            for proc in sim._clocked:
                sim.active_process = proc
                proc()
        else:
            for info in sim.clocked_processes:
                sim.active_process = info.process
                start = perf_counter()
                info.process()
                cell = times.get(info.name)
                if cell is None:
                    times[info.name] = cell = [0, 0.0]
                cell[0] += 1
                cell[1] += perf_counter() - start
        sim.active_process = None
        sim.stat_activations += len(sim._clocked)
        changed = sim._commit_all()
        if not changed:
            sim.stat_levels_skipped += self._n_straight_levels
            return
        dirty = set(changed)
        dirty_cones = self.dirty_cones
        for L, procs in enumerate(self._levels):
            if procs:
                ran = 0
                for proc, info, sens in procs:
                    if dirty_cones and sens.isdisjoint(dirty):
                        continue
                    sim.active_process = proc
                    if times is None:
                        proc()
                    else:
                        start = perf_counter()
                        proc()
                        cell = times.get(info.name)
                        if cell is None:
                            times[info.name] = cell = [0, 0.0]
                        cell[0] += 1
                        cell[1] += perf_counter() - start
                    ran += 1
                if ran:
                    sim.stat_activations += ran
                    sim.active_process = None
                    sim.stat_levels_evaluated += 1
                    new = sim._commit_all()
                    if new:
                        guard = self._guards[L]
                        if guard and not guard.isdisjoint(new):
                            self._fallback(dirty, new)
                            return
                        dirty.update(new)
                else:
                    sim.stat_levels_skipped += 1
            for k in self._level_islands[L]:
                if not self._islands[k].sens_union.isdisjoint(dirty):
                    if self._run_island(k, dirty):
                        return

    def _run_island(self, k: int, dirty: set) -> bool:
        """Settle island ``k`` with a local delta loop.

        Returns True when a guard violation handed the rest of the cycle
        to the interpreted loop.  The loop mirrors the global delta
        loop's wake ordering (commit order x sensitivity registration
        order) so a non-settling island raises the same
        :class:`DeltaOverflowError` text the interpreted kernel would.
        """
        island = self._islands[k]
        sim = self.sim
        times = sim._proc_times
        procs = island.procs
        pending = [entry for entry in procs
                   if not entry[2].isdisjoint(dirty)]
        net: set = set()
        changed: List[Signal] = []
        deltas = 0
        while pending:
            deltas += 1
            if deltas > MAX_DELTAS:
                raise DeltaOverflowError(
                    delta_overflow_message(changed or sorted(
                        dirty, key=lambda s: s.name))
                )
            sim.stat_activations += len(pending)
            for proc, info, _ in pending:
                sim.active_process = proc
                if times is None:
                    proc()
                else:
                    start = perf_counter()
                    proc()
                    cell = times.get(info.name)
                    if cell is None:
                        times[info.name] = cell = [0, 0.0]
                    cell[0] += 1
                    cell[1] += perf_counter() - start
            sim.active_process = None
            changed = sim._commit_all()
            if not changed:
                break
            net.update(changed)
            woken: List[int] = []
            seen: set = set()
            for sig in changed:
                for pos in island.wakes.get(sig, ()):
                    if pos not in seen:
                        seen.add(pos)
                        woken.append(pos)
            pending = [procs[pos] for pos in woken]
        sim.stat_deltas += deltas
        if net:
            if island.guard and not island.guard.isdisjoint(net):
                self._fallback(dirty, net)
                return True
            dirty.update(net)
        return False

    def _fallback(self, dirty: set, new) -> None:
        """Finish the cycle with the interpreted delta loop.

        Called when a commit contradicted the static schedule (a signal
        changed that wakes an already-evaluated level).  Seeding the
        loop with *everything* changed so far re-wakes every process
        sensitive to any of it; straight-line processes that already ran
        with final inputs re-run idempotently (they are pure), and the
        fixpoint the loop converges to is the reference one.
        """
        self.fallback_cycles += 1
        dirty.update(new)
        # Sorted seed: set iteration order varies across interpreter
        # runs (signals hash by id); name order keeps replays stable.
        self.sim._settle_changed(sorted(dirty, key=lambda s: s.name))

    # -- introspection -------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        """Summary of what compiled how (for tests and benchmarks)."""
        info = self.schedule.describe()
        info.update(
            specialize=self.specialize,
            dirty_cones=self.dirty_cones,
            elided_signals=len(self.elided),
            fallback_cycles=self.fallback_cycles,
        )
        return info


def compile_simulator(sim: Simulator, *, specialize: bool = True,
                      dirty_cones: bool = True) -> CompiledKernel:
    """Levelize ``sim``'s combinational logic and attach the kernel.

    Always succeeds on an elaborated simulator: subgraphs that cannot be
    ordered statically become islands with local delta loops, and the
    runtime guard covers incomplete observed-write knowledge, so the
    compiled kernel never produces different results — at worst it
    degrades to interpreted speed.
    """
    return CompiledKernel(
        sim, specialize=specialize, dirty_cones=dirty_cones
    ).attach()


def maybe_compile(sim: Simulator, kernel: str, *, specialize: bool = True,
                  dirty_cones: bool = True) -> Optional[CompiledKernel]:
    """Engine selection by name: ``delta`` | ``compiled`` | ``auto``.

    ``delta`` returns None (interpreted loop).  ``compiled`` always
    attaches.  ``auto`` attaches only when the whole comb graph
    levelized with no islands — i.e. when the straight-line pass can
    actually retire the delta loop; otherwise it stays interpreted.
    """
    if kernel not in KERNELS:
        raise ValueError(
            f"kernel must be one of {KERNELS}, got {kernel!r}"
        )
    if kernel == "delta":
        return None
    compiled = CompiledKernel(
        sim, specialize=specialize, dirty_cones=dirty_cones
    )
    if kernel == "auto" and not compiled.schedule.acyclic:
        return None
    return compiled.attach()
