"""Hierarchical module base class.

Plays the role of the SystemC ``SC_MODULE`` / VHDL entity in the paper's
flow: a named container that owns signals (its pins and internal nets) and
registers processes with the simulator.  Port *binding* is by reference —
two modules that should share a wire are simply handed the same
:class:`~repro.kernel.signal.Signal` object, mirroring how the paper's VHDL
testbench declares the signals and both the wrapper and the eVCs connect to
them.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from .signal import Signal
from .simulator import Simulator


class Module:
    """Base class for simulated hardware and verification components.

    Subclasses receive the simulator and a hierarchical name; helpers create
    signals scoped under that name and register processes.  Children added
    via :meth:`add_child` extend the hierarchy, which the VCD writer turns
    into nested scopes.
    """

    def __init__(self, sim: Simulator, name: str, parent: Optional["Module"] = None):
        self.sim = sim
        self.basename = name
        self.parent = parent
        self.children: List["Module"] = []
        if parent is not None:
            parent.children.append(self)
        self.name = name if parent is None else f"{parent.name}.{name}"

    # -- construction helpers -------------------------------------------------

    def signal(self, name: str, width: int = 1, init: int = 0) -> Signal:
        """Create a signal named under this module's scope."""
        return self.sim.signal(f"{self.name}.{name}", width=width, init=init)

    def clocked(
        self,
        process: Callable[[], None],
        *,
        name: Optional[str] = None,
        reads: Optional[Iterable[Signal]] = None,
        writes: Optional[Iterable[Signal]] = None,
        tie_offs: Optional[Dict[Signal, int]] = None,
        domain: Optional[str] = None,
    ) -> None:
        """Register a posedge process, named under this module's scope.

        ``reads``/``writes`` optionally declare every signal the process
        may ever read or drive; ``tie_offs`` declares unconditional
        constant drives and ``domain`` the clock domain.  The static
        lint/analysis passes use the declarations to reason about clocked
        dataflow (see :meth:`repro.kernel.Simulator.add_clocked`).
        """
        self.sim.add_clocked(
            process, name=self._process_name(process, name),
            reads=reads, writes=writes, tie_offs=tie_offs, domain=domain,
        )

    def comb(
        self,
        process: Callable[[], None],
        sensitive_to: Iterable[Signal],
        *,
        name: Optional[str] = None,
    ) -> None:
        """Register a combinational process with a sensitivity list."""
        self.sim.add_comb(
            process, sensitive_to, name=self._process_name(process, name),
        )

    def _process_name(self, process: Callable[[], None],
                      name: Optional[str]) -> str:
        base = name or getattr(process, "__name__", "proc")
        return f"{self.name}.{base}"

    def add_child(self, child: "Module") -> None:
        if child.parent is None:
            child.parent = self
            self.children.append(child)
            child.name = f"{self.name}.{child.basename}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r})"
