"""Cycle-based simulation kernel (the NCSim substitute).

Public API:

- :class:`Signal` — 2-state wire/register with deferred commit
- :class:`Simulator` — single-clock scheduler with delta-cycle settling
- :class:`Module` — hierarchical container for signals and processes
- :class:`Tracer` — per-cycle waveform observer interface
"""

from .signal import (
    MultipleDriverError,
    Signal,
    SignalError,
    WidthError,
    multiple_driver_message,
)
from .simulator import (
    MAX_DELTAS,
    DeltaOverflowError,
    ElaborationError,
    ProcessInfo,
    Simulator,
    SimulatorError,
    Tracer,
    delta_overflow_message,
)
from .module import Module

# The compiled levelized kernel lives in repro.kernel.compiled and is
# imported on demand (it pulls in the static-analysis layer, which this
# package must not depend on at import time).

__all__ = [
    "Signal",
    "SignalError",
    "MultipleDriverError",
    "WidthError",
    "Simulator",
    "SimulatorError",
    "DeltaOverflowError",
    "ElaborationError",
    "ProcessInfo",
    "Tracer",
    "Module",
    "MAX_DELTAS",
    "multiple_driver_message",
    "delta_overflow_message",
]
