"""Cycle-based simulation kernel (the NCSim substitute).

Public API:

- :class:`Signal` — 2-state wire/register with deferred commit
- :class:`Simulator` — single-clock scheduler with delta-cycle settling
- :class:`Module` — hierarchical container for signals and processes
- :class:`Tracer` — per-cycle waveform observer interface
"""

from .signal import (
    MultipleDriverError,
    Signal,
    SignalError,
    WidthError,
)
from .simulator import (
    MAX_DELTAS,
    DeltaOverflowError,
    ElaborationError,
    ProcessInfo,
    Simulator,
    SimulatorError,
    Tracer,
)
from .module import Module

__all__ = [
    "Signal",
    "SignalError",
    "MultipleDriverError",
    "WidthError",
    "Simulator",
    "SimulatorError",
    "DeltaOverflowError",
    "ElaborationError",
    "ProcessInfo",
    "Tracer",
    "Module",
    "MAX_DELTAS",
]
