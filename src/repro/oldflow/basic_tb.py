"""The past flow — the baseline the paper's methodology replaced.

Section 2: "the verification of the BCA models ... was based on a very
basic model of harnesses written in SystemC and doing write then read
operations towards a memory model.  The tests cases were directive ...
And a lot of checks were done visually. ... The test bench was also not
strong enough to reach corner cases."

This testbench reproduces those limitations on purpose:

- a **single initiator** drives directed, full-width, aligned
  write-then-read pairs to one target at a time;
- the only automatic check is read-data == written-data on that one path;
- no protocol checkers, no scoreboard, no coverage, no arbitration
  reference, no alignment comparison.

The bug-detection benchmark (experiment E2) runs this against each seeded
BCA bug and shows it reports PASS on all of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..bca.node import BcaNode
from ..catg.bfm import InitiatorBfm
from ..catg.target import TargetHarness
from ..kernel import Module, Simulator
from ..rtl.node import RtlNode
from ..stbus import (
    NodeConfig,
    Opcode,
    StbusPort,
    Transaction,
    Type1Port,
    response_data_from_cells,
)


@dataclass
class OldFlowResult:
    """What the past flow can tell you: its one check, pass or fail."""

    view: str
    passed: bool
    timed_out: bool
    n_pairs: int
    mismatches: List[str] = field(default_factory=list)

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"{status} past-flow/{self.view}: {self.n_pairs} write-read "
            f"pairs, {len(self.mismatches)} data mismatches"
            + (" (TIMEOUT)" if self.timed_out else "")
        )


class PastFlowTestbench:
    """Directed single-initiator write-then-read testbench."""

    def __init__(self, config: NodeConfig, view: str = "bca", bugs=()):
        self.config = config
        self.view = view
        self.sim = Simulator()
        self.top = Module(self.sim, "oldtb")
        width = config.data_width_bits
        self.init_ports = [
            StbusPort(self.top, f"init{i}", width)
            for i in range(config.n_initiators)
        ]
        self.targ_ports = [
            StbusPort(self.top, f"targ{t}", width)
            for t in range(config.n_targets)
        ]
        self.prog_port = (
            Type1Port(self.top, "prog") if config.has_programming_port else None
        )
        if view == "rtl":
            self.dut = RtlNode(self.sim, "dut", config, self.init_ports,
                               self.targ_ports, prog_port=self.prog_port,
                               parent=self.top)
        else:
            self.dut = BcaNode(self.sim, "dut", config, self.init_ports,
                               self.targ_ports, prog_port=self.prog_port,
                               parent=self.top, bugs=bugs)
        # Only initiator 0 is ever driven — the model owner's harness.
        self.bfm = InitiatorBfm(self.sim, "bfm0", self.init_ports[0],
                                config.protocol_type, parent=self.top)
        self.targets = [
            TargetHarness(self.sim, f"mem{t}", self.targ_ports[t],
                          config.protocol_type, latency=2, seed=77 + t,
                          parent=self.top)
            for t in range(config.n_targets)
        ]
        self._expected: List[Tuple[bytes, int]] = []  # (data, address)

    def build_program(self, pairs_per_target: int = 4) -> None:
        """Directed full-width write-then-read sweeps (the old test plan)."""
        size = self.config.bus_bytes  # always bus width, always aligned
        if size > 64:
            size = 64
        program = []
        amap = self.config.resolved_map
        for target in self.config.reachable_targets(0):
            region = amap.region_of(target)
            for k in range(pairs_per_target):
                address = region.base + (k * size) % (region.size - size)
                address -= address % size
                data = bytes(((0x10 + target + k + j) & 0xFF)
                             for j in range(size))
                program.append(
                    (Transaction(Opcode.store(size), address, data=data), 0)
                )
                program.append(
                    (Transaction(Opcode.load(size), address), 0)
                )
                self._expected.append((data, address))
        self.bfm.load_program(program)

    def run(self, max_cycles: int = 20000) -> OldFlowResult:
        self.sim.elaborate()
        timed_out = True
        for _ in range(max_cycles):
            self.sim.step()
            if self.bfm.done and \
                    len(self.bfm.response_packets) >= 2 * len(self._expected):
                timed_out = False
                break
        self.sim.run(10)
        self.sim.finish()
        mismatches: List[str] = []
        size = min(self.config.bus_bytes, 64)
        for idx, (data, address) in enumerate(self._expected):
            resp_idx = idx * 2 + 1  # responses alternate store/load
            if resp_idx >= len(self.bfm.response_packets):
                mismatches.append(f"pair {idx}: no load response")
                continue
            cells = self.bfm.response_packets[resp_idx]
            got = response_data_from_cells(
                cells, Opcode.load(size), self.config.bus_bytes,
                address=address,
            )
            if got != data:
                mismatches.append(
                    f"pair {idx} @{address:#x}: wrote {data.hex()}, "
                    f"read {got.hex()}"
                )
        return OldFlowResult(
            view=self.view,
            passed=not mismatches and not timed_out,
            timed_out=timed_out,
            n_pairs=len(self._expected),
            mismatches=mismatches,
        )


def run_past_flow(config: NodeConfig, view: str = "bca", bugs=(),
                  pairs_per_target: int = 4) -> OldFlowResult:
    """Convenience wrapper: build, program and run the past flow."""
    tb = PastFlowTestbench(config, view=view, bugs=bugs)
    tb.build_program(pairs_per_target)
    return tb.run()
