"""The past flow: the directed, checker-less baseline testbench."""

from .basic_tb import OldFlowResult, PastFlowTestbench, run_past_flow

__all__ = ["PastFlowTestbench", "OldFlowResult", "run_past_flow"]
