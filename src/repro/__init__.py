"""repro — a common reusable verification environment for BCA and RTL models.

A from-scratch Python reproduction of the DATE'04/05 paper by Falconeri,
Naifer and Romdhane (STMicroelectronics): one verification environment —
constrained-random BFMs, monitors, protocol checkers, scoreboard,
functional coverage — applied unchanged to both the RTL and the BCA view
of STBus interconnect components, a regression tool that runs the same
seeded suite on both, and a bus analyzer that checks the two views stay
cycle-aligned (99% per port for BCA sign-off).

Package map
-----------

=====================  =====================================================
``repro.kernel``        cycle-based simulation kernel (signals, scheduler)
``repro.stbus``         protocol spec: opcodes, packets, interfaces, config
``repro.rtl``           RTL view: node, converters, register decoder
``repro.bca``           BCA view of the same components + seeded bugs
``repro.catg``          the verification library and generic testbench
``repro.vcd``           VCD writer/parser
``repro.analyzer``      STBus Analyzer: alignment rates, transaction diff
``repro.regression``    regression tool: configs, 12 test cases, flow
``repro.oldflow``       the past-flow baseline testbench
=====================  =====================================================

Quick start::

    from repro import NodeConfig, run_test, build_test

    config = NodeConfig(n_initiators=3, n_targets=2)
    result = run_test(config, build_test("t02_random_uniform", config, 1))
    assert result.passed
"""

from .stbus import (
    AddressMap,
    Architecture,
    ArbitrationPolicy,
    NodeConfig,
    Opcode,
    OpKind,
    ProtocolType,
    Region,
    Transaction,
)
from .catg import RunResult, VerificationEnv, run_test
from .regression import (
    CommonVerificationFlow,
    RegressionRunner,
    TESTCASES,
    build_test,
    configuration_matrix,
)
from .analyzer import compare_vcds, diff_transactions
from .oldflow import run_past_flow
from .bca import ALL_BUGS, BUG_CATALOG

__version__ = "1.0.0"

__all__ = [
    "NodeConfig",
    "Architecture",
    "ArbitrationPolicy",
    "ProtocolType",
    "Opcode",
    "OpKind",
    "Transaction",
    "AddressMap",
    "Region",
    "VerificationEnv",
    "RunResult",
    "run_test",
    "RegressionRunner",
    "CommonVerificationFlow",
    "TESTCASES",
    "build_test",
    "configuration_matrix",
    "compare_vcds",
    "diff_transactions",
    "run_past_flow",
    "ALL_BUGS",
    "BUG_CATALOG",
    "__version__",
]
