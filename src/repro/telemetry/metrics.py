"""Counters, gauges and histograms with a zero-cost disabled mode.

The regression flow of the paper signs BCA models off from *aggregate*
evidence (coverage, alignment rate, pass/fail); this module adds the
missing quantitative layer underneath: where do cycles, wall-time and
worker capacity actually go?  A :class:`MetricRegistry` hands out named
instruments —

* :class:`Counter` — monotonically increasing totals (kernel cycles,
  delta iterations, signal commits, VCD bytes),
* :class:`Gauge` — last-value-wins measurements (worker count, queue
  depth),
* :class:`Histogram` — bucketed distributions (per-port alignment
  rates, phase durations).

A registry created with ``enabled=False`` (or the module-level
:data:`NULL_REGISTRY`) hands out shared *no-op* singletons instead:
``counter(...).inc()`` on the disabled path is a constant-time call on a
stateless object — no allocation, no dict growth, no branches in the
caller.  Hot paths therefore take a registry unconditionally and never
guard their instrument calls.

Snapshots are plain JSON-able dicts, picklable across the regression
engine's worker-process boundary, and mergeable (counters add,
histograms combine bucket-wise) so a batch rollup can aggregate per-run
registries.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, Optional, Sequence, Tuple


class MetricError(ValueError):
    """Instrument misuse (name reused across kinds, bucket mismatch)."""


class Counter:
    """A monotonically increasing integer total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A bucketed distribution with count/sum/min/max.

    ``buckets`` are upper bounds (inclusive); one implicit overflow
    bucket catches everything above the last bound.  An empty bucket
    tuple records only count/sum/min/max.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total",
                 "minimum", "maximum")

    def __init__(self, name: str, buckets: Sequence[float] = ()) -> None:
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(buckets)
        if list(self.buckets) != sorted(self.buckets):
            raise MetricError(f"histogram {name!r}: buckets must be sorted")
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        self.counts[bisect_left(self.buckets, value)] += 1

    def snapshot(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "bounds": list(self.buckets),
            "counts": list(self.counts),
        }


def merge_histogram_snapshots(
    into: Dict[str, object], snap: Dict[str, object]
) -> Dict[str, object]:
    """Combine two histogram snapshots (same bucket bounds) in place."""
    if not into:
        into.update({key: (list(val) if isinstance(val, list) else val)
                     for key, val in snap.items()})
        return into
    if into["bounds"] != snap["bounds"]:
        raise MetricError(
            f"cannot merge histograms with bounds {into['bounds']} "
            f"and {snap['bounds']}"
        )
    into["count"] = int(into["count"]) + int(snap["count"])
    into["sum"] = float(into["sum"]) + float(snap["sum"])
    for key, pick in (("min", min), ("max", max)):
        values = [v for v in (into[key], snap[key]) if v is not None]
        into[key] = pick(values) if values else None
    into["counts"] = [a + b for a, b in zip(into["counts"], snap["counts"])]
    return into


class _NullCounter:
    """Shared no-op counter handed out by disabled registries."""

    __slots__ = ()
    name = "<null>"
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "<null>"
    value = 0.0

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "<null>"
    count = 0

    def observe(self, value: float) -> None:
        pass

    def snapshot(self) -> Dict[str, object]:
        return {}


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricRegistry:
    """Named instruments, memoized by name, with a disabled no-op mode."""

    __slots__ = ("enabled", "_counters", "_gauges", "_histograms")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_unique(self, name: str, kind: str) -> None:
        for other_kind, table in (("counter", self._counters),
                                  ("gauge", self._gauges),
                                  ("histogram", self._histograms)):
            if kind != other_kind and name in table:
                raise MetricError(
                    f"metric {name!r} already registered as a {other_kind}"
                )

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER  # type: ignore[return-value]
        inst = self._counters.get(name)
        if inst is None:
            self._check_unique(name, "counter")
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE  # type: ignore[return-value]
        inst = self._gauges.get(name)
        if inst is None:
            self._check_unique(name, "gauge")
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str,
                  buckets: Sequence[float] = ()) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM  # type: ignore[return-value]
        inst = self._histograms.get(name)
        if inst is None:
            self._check_unique(name, "histogram")
            inst = self._histograms[name] = Histogram(name, buckets)
        elif buckets and tuple(buckets) != inst.buckets:
            raise MetricError(
                f"histogram {name!r} already registered with buckets "
                f"{inst.buckets}"
            )
        return inst

    def inc_many(self, items: Iterable[Tuple[str, int]],
                 prefix: str = "") -> None:
        """Bulk-increment counters (``prefix`` is prepended to each name)."""
        if not self.enabled:
            return
        for name, amount in items:
            self.counter(prefix + name).inc(amount)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-able view of every live instrument."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.snapshot() for n, h in sorted(self._histograms.items())
            },
        }


#: Shared disabled registry: the default for every instrumented code path.
NULL_REGISTRY = MetricRegistry(enabled=False)
