"""Human-readable digest of a ``metrics.json`` batch rollup.

``python -m repro.telemetry summarize metrics.json`` renders the batch
headline, kernel counter totals, per-phase time split, worker-lane
utilization, the slowest runs, the hottest kernel processes (when the
batch ran with ``--time-processes``) and the worst-aligned comparisons
— the questions every perf PR starts from.

The output is a pure function of the file contents (no clocks, no
environment), so tests can pin it down byte-for-byte.
"""

from __future__ import annotations

from typing import Dict, List

from .session import METRICS_SCHEMA


class SummaryError(ValueError):
    """The metrics file is missing or malformed."""


def _run_label(run: Dict[str, object]) -> str:
    return (f"{run['config']} {run['test']} seed={run['seed']} "
            f"{run['view']}")


def _top_phases(run: Dict[str, object], limit: int = 2) -> str:
    phases = run.get("phase_seconds") or {}
    ranked = sorted(phases.items(), key=lambda kv: (-kv[1], kv[0]))[:limit]
    if not ranked:
        return ""
    inner = ", ".join(f"{name} {seconds:.3f}s" for name, seconds in ranked)
    return f" ({inner})"


def summarize_metrics(payload: Dict[str, object], top: int = 5) -> str:
    """Render the digest for one metrics rollup dict."""
    if payload.get("schema") != METRICS_SCHEMA:
        raise SummaryError(
            f"not a telemetry metrics file (schema "
            f"{payload.get('schema')!r}, expected {METRICS_SCHEMA!r})"
        )
    batch = payload.get("batch", {})
    runs: List[dict] = list(payload.get("runs", []))
    compares: List[dict] = list(payload.get("compares", []))
    lines = [
        f"Batch: {batch.get('n_runs', 0)} runs over "
        f"{batch.get('n_configs', 0)} configuration(s), "
        f"jobs={batch.get('jobs', 1)}, "
        f"wall {batch.get('wall_seconds', 0.0):.2f}s, "
        f"{'all signed off' if batch.get('all_signed_off') else 'NOT signed off'}"
    ]
    kernel = batch.get("kernel_totals") or {}
    if kernel:
        lines.append("Kernel totals: " + "  ".join(
            f"{name}={value}" for name, value in sorted(kernel.items())
        ))
    levels_run = int(kernel.get("levels_evaluated", 0) or 0)
    levels_skipped = int(kernel.get("levels_skipped", 0) or 0)
    if levels_run or levels_skipped:
        total_levels = levels_run + levels_skipped
        lines.append(
            f"Compiled kernel: {levels_run} level(s) evaluated, "
            f"{levels_skipped} skipped "
            f"({levels_skipped / total_levels * 100:.1f}% settled)"
        )
    phases = batch.get("phase_totals") or {}
    if phases:
        lines.append("Phase totals: " + "  ".join(
            f"{name} {seconds:.2f}s"
            for name, seconds in sorted(
                phases.items(), key=lambda kv: (-kv[1], kv[0]))
        ))
    workers = batch.get("workers") or {}
    if workers:
        lines.append("Worker utilization:")
        for label in sorted(workers, key=lambda l: (l == "main", l)):
            lane = workers[label]
            lines.append(
                f"  {label:<10} {lane.get('n_jobs', 0):3d} jobs  "
                f"{lane.get('busy_seconds', 0.0):8.2f}s busy  "
                f"{lane.get('utilization', 0.0) * 100:5.1f}%"
            )
    if runs:
        lines.append("Slowest runs:")
        ranked = sorted(
            runs, key=lambda r: (-float(r.get("wall_seconds", 0.0)),
                                 _run_label(r)),
        )[:top]
        for pos, run in enumerate(ranked, 1):
            lines.append(
                f"  {pos}. {float(run.get('wall_seconds', 0.0)):.3f}s  "
                f"{_run_label(run)}{_top_phases(run)}"
            )
    hot: Dict[str, List[float]] = {}
    for run in runs:
        for name, (calls, seconds) in (run.get("process_seconds") or {}).items():
            cell = hot.setdefault(name, [0, 0.0])
            cell[0] += calls
            cell[1] += seconds
    if hot:
        lines.append("Hottest kernel processes:")
        ranked_hot = sorted(
            hot.items(), key=lambda kv: (-kv[1][1], kv[0]))[:top]
        for pos, (name, (calls, seconds)) in enumerate(ranked_hot, 1):
            lines.append(
                f"  {pos}. {seconds:.3f}s  {name} ({int(calls)} activations)"
            )
    elif runs:
        lines.append(
            "Hottest kernel processes: (no data — rerun with "
            "--time-processes)"
        )
    rated = [c for c in compares if "min_rate" in c]
    if rated:
        lines.append("Worst alignment:")
        ranked_cmp = sorted(
            rated, key=lambda c: (float(c["min_rate"]),
                                  c["config"], c["test"], c["seed"]),
        )[:top]
        for pos, cmp_entry in enumerate(ranked_cmp, 1):
            seconds = (
                f" (compare {float(cmp_entry['seconds']):.3f}s)"
                if "seconds" in cmp_entry else ""
            )
            lines.append(
                f"  {pos}. {float(cmp_entry['min_rate']) * 100:6.2f}%  "
                f"{cmp_entry['config']} {cmp_entry['test']} "
                f"seed={cmp_entry['seed']}{seconds}"
            )
    triages: List[dict] = list(payload.get("triages", []))
    if triages:
        counters = batch.get("triage_counters") or {}
        header = f"Triaged failures: {len(triages)}"
        if counters:
            header += " (" + "  ".join(
                f"{name}={value}"
                for name, value in sorted(counters.items())) + ")"
        lines.append(header)
        for row in triages[:top]:
            signal = row.get("first_divergence_signal")
            point = (
                f"{signal} @ cycle {row.get('first_divergence_cycle')}"
                if signal else "no pin-visible divergence"
            )
            suspect = row.get("top_suspect")
            tail = f"; top suspect {suspect}" if suspect else ""
            lines.append(
                f"  {row.get('config')} {row.get('test')} "
                f"seed={row.get('seed')} [{row.get('reason')}]: "
                f"{point}{tail}"
            )
        if len(triages) > top:
            lines.append(f"  ... and {len(triages) - top} more")
    return "\n".join(lines) + "\n"
