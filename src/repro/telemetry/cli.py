"""Command-line front-end for the telemetry tools.

Usage::

    python -m repro.telemetry summarize METRICS_JSON [--top N]

Renders the human-readable batch digest (slowest runs, hottest kernel
processes, worker utilization) from a ``metrics.json`` produced by
``python -m repro.regression ... --metrics-out METRICS_JSON``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .summarize import SummaryError, summarize_metrics


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.telemetry",
        description="Inspect telemetry artifacts from regression batches.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    summ = sub.add_parser(
        "summarize",
        help="render a human-readable digest of a metrics.json rollup",
    )
    summ.add_argument("metrics", help="metrics.json written by --metrics-out")
    summ.add_argument("--top", type=int, default=5, metavar="N",
                      help="entries per ranking section (default 5)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "summarize":
        if args.top < 1:
            print("error: --top must be >= 1", file=sys.stderr)
            return 2
        try:
            with open(args.metrics, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read {args.metrics}: {exc}",
                  file=sys.stderr)
            return 2
        try:
            print(summarize_metrics(payload, top=args.top), end="")
        except SummaryError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0
    return 2  # pragma: no cover - argparse enforces the subcommand
