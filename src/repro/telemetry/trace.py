"""Span tracing with Chrome/Perfetto ``trace.json`` export.

A :class:`TraceCollector` records *complete* trace events ("ph": "X")
with wall-clock timestamps (``time.time``, microseconds), so spans
recorded in different worker processes of one regression batch share a
comparable time base.  Each event carries the recording process's OS
pid; :func:`write_chrome_trace` later remaps pids onto numbered lanes
(``tid``) with ``thread_name`` metadata, which is how parallel workers
render as separate horizontal lanes in ``chrome://tracing`` / Perfetto.

A collector created with ``enabled=False`` hands out a shared no-op
context manager from :meth:`TraceCollector.span`, so instrumented code
pays one attribute load and one branch when tracing is off.

Events are plain dicts — picklable across the regression engine's
process pool and JSON-able for export.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple


class _NullSpan:
    """Reusable no-op context manager for disabled collectors."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Span:
    """One live span; records a complete event when the ``with`` exits."""

    __slots__ = ("_collector", "name", "args", "_start")

    def __init__(self, collector: "TraceCollector", name: str,
                 args: Optional[dict]) -> None:
        self._collector = collector
        self.name = name
        self.args = args
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = self._collector._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._collector._record(self, self._collector._clock())
        return False


class TraceCollector:
    """Records spans and instant events for one process.

    ``clock`` returns seconds; the default (``time.time``) is shared
    across processes, which is what makes worker lanes comparable.
    """

    __slots__ = ("enabled", "events", "pid", "_clock")

    def __init__(self, enabled: bool = True, clock=time.time,
                 pid: Optional[int] = None) -> None:
        self.enabled = enabled
        self.events: List[dict] = []
        self.pid = os.getpid() if pid is None else pid
        self._clock = clock

    def span(self, name: str, **args: object):
        """Context manager timing a region; ``args`` land in the event."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, args or None)

    def instant(self, name: str, **args: object) -> None:
        """A zero-duration marker event."""
        if not self.enabled:
            return
        event = {
            "name": name,
            "ph": "i",
            "ts": int(self._clock() * 1e6),
            "pid": self.pid,
            "s": "t",
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def _record(self, span: _Span, end: float) -> None:
        event = {
            "name": span.name,
            "ph": "X",
            "ts": int(span._start * 1e6),
            "dur": int((end - span._start) * 1e6),
            "pid": self.pid,
        }
        if span.args:
            event["args"] = span.args
        self.events.append(event)


#: Shared disabled collector: the default for instrumented code paths.
NULL_TRACE = TraceCollector(enabled=False)


def span_seconds(events: Sequence[dict]) -> Dict[str, float]:
    """Total duration per span name, in seconds (instants excluded)."""
    totals: Dict[str, float] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        name = event["name"]
        totals[name] = totals.get(name, 0.0) + event.get("dur", 0) / 1e6
    return totals


def assign_lanes(events: Sequence[dict],
                 main_pid: Optional[int] = None) -> Dict[int, Tuple[int, str]]:
    """Map each recording pid to a ``(tid, label)`` lane.

    The orchestrating process (``main_pid``, default: this process) is
    lane 0 ("main"); worker pids become ``worker-N`` lanes numbered by
    the start time of their earliest event, so the lane order in the
    viewer matches the order workers picked up their first job.
    """
    if main_pid is None:
        main_pid = os.getpid()
    first_ts: Dict[int, int] = {}
    for event in events:
        pid = event["pid"]
        ts = event.get("ts", 0)
        if pid not in first_ts or ts < first_ts[pid]:
            first_ts[pid] = ts
    lanes: Dict[int, Tuple[int, str]] = {main_pid: (0, "main")}
    workers = sorted(
        (ts, pid) for pid, ts in first_ts.items() if pid != main_pid
    )
    for index, (_, pid) in enumerate(workers):
        lanes[pid] = (index + 1, f"worker-{index}")
    return lanes


def chrome_trace_payload(
    events: Sequence[dict],
    lanes: Optional[Dict[int, Tuple[int, str]]] = None,
    process_name: str = "repro",
) -> dict:
    """Build the ``chrome://tracing`` / Perfetto JSON object."""
    if lanes is None:
        lanes = assign_lanes(events)
    out: List[dict] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
        "args": {"name": process_name},
    }]
    for pid in sorted(lanes, key=lambda p: lanes[p][0]):
        tid, label = lanes[pid]
        out.append({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": label},
        })
    for event in events:
        mapped = dict(event)
        tid, _ = lanes.get(event["pid"], (len(lanes), "other"))
        mapped["pid"] = 1
        mapped["tid"] = tid
        out.append(mapped)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str,
    events: Sequence[dict],
    lanes: Optional[Dict[int, Tuple[int, str]]] = None,
    process_name: str = "repro",
) -> None:
    """Write a trace file loadable by chrome://tracing and Perfetto."""
    payload = chrome_trace_payload(events, lanes, process_name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
