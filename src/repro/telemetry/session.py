"""Telemetry plumbing for the regression batch engine.

Four pieces:

* :class:`Telemetry` — the facade instrumented code takes: a metric
  registry, a trace collector and a run logger, each individually a
  no-op when disabled.  :data:`NULL_TELEMETRY` is the all-disabled
  default, so hot paths call ``telemetry.span(...)`` unconditionally.
* :class:`TelemetryConfig` — what the user asked for on the CLI
  (``--metrics-out``, ``--trace-out``, ``--log-json``,
  ``--time-processes``).
* :class:`RunRecorder` — per-(config, test, seed, view) recorder living
  in whichever process executes the run (a pool worker under
  ``jobs=N``, the parent under ``jobs=1``).  Its :meth:`payload` is a
  picklable :class:`RunTelemetry` shipped back across the process
  boundary.
* :class:`BatchTelemetry` — parent-side aggregator: times the batch,
  collects every run/compare payload, and exports the side-channel
  files.  Telemetry NEVER writes to stdout and never touches the report
  artifacts — byte-identity between instrumented and plain runs is an
  invariant the tests pin down.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ioutil import TMP_SUFFIX, atomic_write
from .metrics import MetricRegistry, NULL_REGISTRY, merge_histogram_snapshots
from .runlog import NULL_LOG, RunLogger
from .trace import (
    NULL_TRACE,
    TraceCollector,
    assign_lanes,
    span_seconds,
    write_chrome_trace,
)

#: Span names that count as run phases in the metrics rollup.
PHASE_NAMES = ("generate", "elaborate", "run", "finalize", "report",
               "compare", "triage")

#: Bucket bounds for the per-port alignment-rate histogram.
ALIGNMENT_BUCKETS = (0.5, 0.9, 0.95, 0.99, 0.999, 1.0)

#: Version tag written into every metrics file.
METRICS_SCHEMA = "repro.telemetry/metrics/v1"


class Telemetry:
    """Registry + tracer + logger bundle; each part no-op when disabled."""

    __slots__ = ("registry", "trace", "log", "enabled")

    def __init__(
        self,
        registry: Optional[MetricRegistry] = None,
        trace: Optional[TraceCollector] = None,
        log: Optional[RunLogger] = None,
    ) -> None:
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.trace = trace if trace is not None else NULL_TRACE
        self.log = log if log is not None else NULL_LOG
        self.enabled = (
            self.registry.enabled or self.trace.enabled or self.log.enabled
        )

    def span(self, name: str, **args: object):
        return self.trace.span(name, **args)


#: The all-disabled bundle instrumented code defaults to.
NULL_TELEMETRY = Telemetry()


@dataclass(frozen=True)
class TelemetryConfig:
    """What to record and where the side-channel files go."""

    metrics_out: Optional[str] = None
    trace_out: Optional[str] = None
    log_out: Optional[str] = None
    time_processes: bool = False

    @property
    def enabled(self) -> bool:
        return bool(self.metrics_out or self.trace_out or self.log_out)

    def with_tag(self, tag: str) -> "TelemetryConfig":
        """Derive a config whose file names carry ``tag`` (for flows that
        run several regressions, e.g. one per verification iteration)."""
        def tagged(path: Optional[str]) -> Optional[str]:
            if path is None:
                return None
            stem, ext = os.path.splitext(path)
            return f"{stem}.{tag}{ext}"

        return TelemetryConfig(
            metrics_out=tagged(self.metrics_out),
            trace_out=tagged(self.trace_out),
            log_out=tagged(self.log_out),
            time_processes=self.time_processes,
        )


@dataclass
class RunTelemetry:
    """Picklable per-run telemetry shipped from the executing process."""

    pid: int
    started_at: float
    finished_at: float
    queue_wait_seconds: float
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    histograms: Dict[str, dict] = field(default_factory=dict)
    process_seconds: Dict[str, List[float]] = field(default_factory=dict)
    events: List[dict] = field(default_factory=list)
    records: List[dict] = field(default_factory=list)

    @property
    def busy_seconds(self) -> float:
        return max(0.0, self.finished_at - self.started_at)


class RunRecorder:
    """Records one run (or one comparison) in the executing process."""

    def __init__(
        self,
        context: Dict[str, object],
        submitted_at: Optional[float] = None,
    ) -> None:
        self.context = dict(context)
        self.submitted_at = submitted_at
        self.started_at = time.time()
        self.telemetry = Telemetry(
            registry=MetricRegistry(),
            trace=TraceCollector(),
            log=RunLogger(buffer=True, context=self.context),
        )

    def span(self, name: str, **args: object):
        return self.telemetry.span(name, **args)

    def payload(self) -> RunTelemetry:
        """Freeze everything recorded so far into a picklable value."""
        finished = time.time()
        snapshot = self.telemetry.registry.snapshot()
        phases = {
            name: seconds
            for name, seconds in span_seconds(self.telemetry.trace.events).items()
            if name in PHASE_NAMES
        }
        queue_wait = (
            max(0.0, self.started_at - self.submitted_at)
            if self.submitted_at is not None else 0.0
        )
        return RunTelemetry(
            pid=self.telemetry.trace.pid,
            started_at=self.started_at,
            finished_at=finished,
            queue_wait_seconds=queue_wait,
            phase_seconds=phases,
            counters=snapshot["counters"],
            histograms=snapshot["histograms"],
            events=self.telemetry.trace.events,
            records=self.telemetry.log.records,
        )


class BatchTelemetry:
    """Parent-side batch timing, aggregation and file export.

    Always times the batch (two ``perf_counter`` calls) so
    ``RegressionReport.wall_seconds`` keeps working; everything else is
    inert unless the config enables an output.
    """

    def __init__(self, config: Optional[TelemetryConfig], *,
                 jobs: int = 1) -> None:
        self.config = config if config is not None else TelemetryConfig()
        self.enabled = self.config.enabled
        self.jobs = jobs
        self.trace = TraceCollector(enabled=self.enabled)
        self._wall_start = time.perf_counter()
        self._wall_seconds: Optional[float] = None

    def span(self, name: str, **args: object):
        return self.trace.span(name, **args)

    def stop(self) -> float:
        """Fix and return the batch wall time (idempotent)."""
        if self._wall_seconds is None:
            self._wall_seconds = time.perf_counter() - self._wall_start
        return self._wall_seconds

    # -- export ------------------------------------------------------------

    def export(
        self,
        *,
        report,
        results: Dict[Tuple[int, str, int, str], object],
        alignments: Dict[Tuple[int, str, int], object],
        compare_telemetry: Dict[Tuple[int, str, int], RunTelemetry],
        configs,
        tests,
        seeds,
        faults=None,
        triages=None,
        triage_telemetry=None,
        cache=None,
        impact=None,
    ) -> None:
        """Write metrics/trace/log side-channel files (no-op if disabled).

        ``faults`` is the batch's
        :class:`~repro.regression.resilience.BatchFaults` accounting (or
        ``None``): its counters land in the metrics ``batch.faults``
        section and its structured events in the run log.

        ``cache`` is the batch's :class:`~repro.cache.ResultCache` (or
        ``None``): its hit/miss/store/verify counters land in the
        metrics ``batch.cache`` section and its structured events
        (including quarantine diagnostics) in the run log.

        ``impact`` is the incremental batch's
        :class:`~repro.analysis.impact.ImpactIndex` (or ``None``): its
        fingerprint/fallback counters land in the metrics
        ``batch.impact`` section (its per-design key events ride the
        cache event stream).  Non-incremental batches pass nothing and
        export byte-identical metrics files.

        ``triages`` maps entry keys to
        :class:`~repro.triage.TriageReport` payloads for the entries that
        failed and were auto-triaged; ``triage_telemetry`` carries their
        per-triage :class:`RunTelemetry`.  Both are keyed like
        ``alignments``.  Batches without failures pass nothing and the
        exported files stay byte-identical to a triage-less build.
        """
        if not self.enabled:
            return
        triages = triages or {}
        triage_telemetry = triage_telemetry or {}
        wall = self.stop()
        run_keys = [
            (ci, test, seed, view)
            for ci in range(len(configs))
            for test in tests
            for seed in seeds
            for view in ("rtl", "bca")
        ]
        entry_keys = [key[:3] for key in run_keys[::2]]
        payloads = {
            key: getattr(results[key], "telemetry", None)
            for key in run_keys if key in results
        }
        if self.config.metrics_out:
            self._write_metrics(
                report, wall, run_keys, entry_keys, results, payloads,
                alignments, compare_telemetry, configs, faults,
                triages, triage_telemetry, cache, impact,
            )
        if self.config.trace_out:
            events = list(self.trace.events)
            for key in run_keys:
                payload = payloads.get(key)
                if payload is not None:
                    events.extend(payload.events)
            for key in entry_keys:
                payload = compare_telemetry.get(key)
                if payload is not None:
                    events.extend(payload.events)
            for key in entry_keys:
                payload = triage_telemetry.get(key)
                if payload is not None:
                    events.extend(payload.events)
            tmp = self.config.trace_out + TMP_SUFFIX
            write_chrome_trace(
                tmp, events,
                lanes=assign_lanes(events, main_pid=self.trace.pid),
                process_name="repro regression batch",
            )
            os.replace(tmp, self.config.trace_out)
        if self.config.log_out:
            self._write_log(
                report, wall, run_keys, entry_keys, payloads,
                compare_telemetry, configs, tests, seeds, faults,
                triage_telemetry, cache,
            )

    def _worker_lanes(
        self,
        payloads: Dict[Tuple[int, str, int, str], Optional[RunTelemetry]],
        compare_telemetry: Dict[Tuple[int, str, int], RunTelemetry],
        wall: float,
        triage_telemetry: Optional[
            Dict[Tuple[int, str, int], RunTelemetry]] = None,
    ) -> Dict[str, dict]:
        lanes: Dict[int, dict] = {}
        all_payloads = (
            list(payloads.values())
            + list(compare_telemetry.values())
            + list((triage_telemetry or {}).values())
        )
        for payload in all_payloads:
            if payload is None:
                continue
            lane = lanes.setdefault(payload.pid, {
                "pid": payload.pid, "n_jobs": 0, "busy_seconds": 0.0,
                "first_start": payload.started_at,
            })
            lane["n_jobs"] += 1
            lane["busy_seconds"] += payload.busy_seconds
            lane["first_start"] = min(lane["first_start"], payload.started_at)
        main_pid = self.trace.pid
        named: Dict[str, dict] = {}
        workers = sorted(
            (lane["first_start"], pid)
            for pid, lane in lanes.items() if pid != main_pid
        )
        for index, (_, pid) in enumerate(workers):
            named[f"worker-{index}"] = lanes[pid]
        if main_pid in lanes:
            named["main"] = lanes[main_pid]
        for lane in named.values():
            lane.pop("first_start")
            lane["busy_seconds"] = round(lane["busy_seconds"], 6)
            lane["utilization"] = round(
                lane["busy_seconds"] / wall, 4) if wall > 0 else 0.0
        return named

    def _write_metrics(self, report, wall, run_keys, entry_keys, results,
                       payloads, alignments, compare_telemetry,
                       configs, faults=None, triages=None,
                       triage_telemetry=None, cache=None,
                       impact=None) -> None:
        import json

        triages = triages or {}
        triage_telemetry = triage_telemetry or {}

        kernel_totals: Dict[str, int] = {}
        phase_totals: Dict[str, float] = {}
        runs: List[dict] = []
        for key in run_keys:
            ci, test, seed, view = key
            result = results.get(key)
            if result is None:
                continue
            if not hasattr(result, "kernel_stats"):
                # A RunFailure stand-in from the resilience layer: the
                # run never completed, so there is nothing to roll up.
                runs.append({
                    "config": configs[ci].name, "test": test, "seed": seed,
                    "view": view, "status": result.status,
                    "error": result.describe(),
                })
                continue
            for name, value in result.kernel_stats.items():
                kernel_totals[name] = kernel_totals.get(name, 0) + value
            payload = payloads.get(key)
            entry = {
                "config": configs[ci].name,
                "test": test,
                "seed": seed,
                "view": view,
                "passed": result.passed,
                "cycles": result.cycles,
                "wall_seconds": round(result.wall_seconds, 6),
                "kernel": dict(result.kernel_stats),
            }
            if result.process_seconds:
                entry["process_seconds"] = {
                    name: [calls, round(seconds, 6)]
                    for name, (calls, seconds)
                    in sorted(result.process_seconds.items())
                }
            if payload is not None:
                entry["queue_wait_seconds"] = round(
                    payload.queue_wait_seconds, 6)
                entry["phase_seconds"] = {
                    name: round(seconds, 6)
                    for name, seconds in sorted(payload.phase_seconds.items())
                }
                for name, seconds in payload.phase_seconds.items():
                    phase_totals[name] = phase_totals.get(name, 0.0) + seconds
            runs.append(entry)
        compares: List[dict] = []
        histograms: Dict[str, dict] = {}
        for key in entry_keys:
            ci, test, seed = key
            payload = compare_telemetry.get(key)
            alignment = alignments.get(key)
            if payload is None and alignment is None:
                continue
            entry = {"config": configs[ci].name, "test": test, "seed": seed}
            if alignment is not None:
                entry["min_rate"] = round(alignment.min_rate, 6)
                entry["overall_rate"] = round(alignment.overall_rate, 6)
            if payload is not None:
                entry["seconds"] = round(payload.busy_seconds, 6)
                entry["queue_wait_seconds"] = round(
                    payload.queue_wait_seconds, 6)
                for name, seconds in payload.phase_seconds.items():
                    phase_totals[name] = phase_totals.get(name, 0.0) + seconds
                for name, snap in payload.histograms.items():
                    merge_histogram_snapshots(
                        histograms.setdefault(name, {}), snap)
            compares.append(entry)
        triage_rows: List[dict] = []
        for key in entry_keys:
            triage = triages.get(key)
            if triage is None:
                continue
            ci, test, seed = key
            entry = {
                "config": configs[ci].name, "test": test, "seed": seed,
                "reason": triage.reason,
                "verdict": triage.verdict,
                "first_divergence_signal": triage.signal,
                "first_divergence_cycle": triage.cycle,
                "suspect_count": len(triage.suspects),
                "top_suspect": triage.top_suspect,
            }
            payload = triage_telemetry.get(key)
            if payload is not None:
                entry["seconds"] = round(payload.busy_seconds, 6)
                for name, seconds in payload.phase_seconds.items():
                    phase_totals[name] = phase_totals.get(name, 0.0) + seconds
            triage_rows.append(entry)
        payload_out = {
            "schema": METRICS_SCHEMA,
            "batch": {
                "wall_seconds": round(wall, 6),
                "jobs": self.jobs,
                "n_runs": report.n_runs,
                "n_configs": len(configs),
                "all_signed_off": report.all_signed_off,
                "kernel_totals": dict(sorted(kernel_totals.items())),
                "phase_totals": {
                    name: round(seconds, 6)
                    for name, seconds in sorted(phase_totals.items())
                },
                "workers": self._worker_lanes(
                    payloads, compare_telemetry, wall, triage_telemetry),
            },
            "runs": runs,
            "compares": compares,
            "histograms": histograms,
        }
        if faults is not None:
            payload_out["batch"]["faults"] = faults.counters()
        if cache is not None:
            # Present only when a result cache was configured, so
            # cache-less batches export byte-identical metrics files.
            payload_out["batch"]["cache"] = cache.stats.counters()
        if impact is not None:
            # Present only for incremental batches, same rationale.
            payload_out["batch"]["impact"] = impact.counters()
        if triage_rows:
            # Present only when failures were triaged, so fault-free
            # batches and triage-disabled batches export byte-identical
            # metrics files.
            payload_out["triages"] = triage_rows
            counters: Dict[str, int] = {}
            for payload in triage_telemetry.values():
                for name, value in payload.counters.items():
                    if name.startswith("triage."):
                        counters[name] = counters.get(name, 0) + value
            if counters:
                payload_out["batch"]["triage_counters"] = dict(
                    sorted(counters.items()))
        with atomic_write(self.config.metrics_out) as handle:
            json.dump(payload_out, handle, indent=1)
            handle.write("\n")

    def _write_log(self, report, wall, run_keys, entry_keys, payloads,
                   compare_telemetry, configs, tests, seeds,
                   faults=None, triage_telemetry=None,
                   cache=None) -> None:
        tmp = self.config.log_out + TMP_SUFFIX
        logger = RunLogger(path=tmp)
        try:
            logger.log(
                "batch.start",
                configs=[c.name for c in configs],
                tests=list(tests),
                seeds=list(seeds),
                jobs=self.jobs,
            )
            for key in run_keys:
                payload = payloads.get(key)
                if payload is not None:
                    for record in payload.records:
                        logger.write_record(record)
            for key in entry_keys:
                payload = compare_telemetry.get(key)
                if payload is not None:
                    for record in payload.records:
                        logger.write_record(record)
            for key in entry_keys:
                payload = (triage_telemetry or {}).get(key)
                if payload is not None:
                    for record in payload.records:
                        logger.write_record(record)
            if faults is not None:
                for event in faults.events:
                    logger.write_record(dict(event))
            if cache is not None:
                for event in cache.events:
                    logger.write_record(dict(event))
            logger.log(
                "batch.complete",
                n_runs=report.n_runs,
                wall_seconds=round(wall, 6),
                jobs=self.jobs,
                all_signed_off=report.all_signed_off,
            )
        finally:
            logger.close()
        os.replace(tmp, self.config.log_out)
