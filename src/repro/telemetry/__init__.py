"""Metrics, span tracing and structured run logs for the whole stack.

The measurement substrate under every perf PR: counters/gauges/
histograms (:mod:`~repro.telemetry.metrics`), span-based tracing with
Chrome/Perfetto export where parallel regression workers render as
lanes (:mod:`~repro.telemetry.trace`), JSON-lines run logs carrying
``(config, test, seed, view)`` context (:mod:`~repro.telemetry.runlog`),
and the batch plumbing that threads all three through the kernel, the
regression engine and the analyzer (:mod:`~repro.telemetry.session`).

Design invariants:

* **Near-zero overhead when disabled** — disabled registries and
  collectors hand out shared no-op singletons; instrumented hot paths
  never branch on "is telemetry on".
* **Side channels only** — telemetry goes to its own files (and stderr
  for the batch log line), never stdout; report artifacts are
  byte-identical with and without telemetry.
* **Picklable payloads** — per-run telemetry crosses the regression
  engine's worker-process boundary as plain dicts/lists.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    merge_histogram_snapshots,
)
from .trace import (
    NULL_TRACE,
    TraceCollector,
    assign_lanes,
    chrome_trace_payload,
    span_seconds,
    write_chrome_trace,
)
from .runlog import NULL_LOG, RunLogger
from .session import (
    ALIGNMENT_BUCKETS,
    BatchTelemetry,
    METRICS_SCHEMA,
    NULL_TELEMETRY,
    PHASE_NAMES,
    RunRecorder,
    RunTelemetry,
    Telemetry,
    TelemetryConfig,
)
from .summarize import SummaryError, summarize_metrics

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_REGISTRY",
    "merge_histogram_snapshots",
    "TraceCollector",
    "NULL_TRACE",
    "assign_lanes",
    "chrome_trace_payload",
    "span_seconds",
    "write_chrome_trace",
    "RunLogger",
    "NULL_LOG",
    "Telemetry",
    "NULL_TELEMETRY",
    "TelemetryConfig",
    "RunRecorder",
    "RunTelemetry",
    "BatchTelemetry",
    "PHASE_NAMES",
    "ALIGNMENT_BUCKETS",
    "METRICS_SCHEMA",
    "SummaryError",
    "summarize_metrics",
]
