"""Structured (JSON-lines) run logging with bound context.

Every record is one JSON object per line: ``{"event": ..., "ts": ...,
<bound context>, <record fields>}``.  Loggers *bind* context —
``logger.bind(config="a", test="t01", seed=1, view="rtl")`` — so every
record emitted inside a run carries the full ``(config, test, seed,
view)`` coordinates without the call sites repeating them.

Three sink modes:

* ``stream`` — write lines to an open text stream (e.g. ``sys.stderr``;
  never stdout: report artifacts must stay byte-identical with and
  without telemetry),
* ``path`` — append lines to a file the logger owns,
* ``buffer=True`` — collect records in memory; worker processes use this
  and ship ``records`` (plain dicts, picklable) back for the parent to
  replay in deterministic batch order via :meth:`write_record`.

A disabled logger (:data:`NULL_LOG`) ignores everything.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, TextIO


class RunLogger:
    """JSON-lines logger with bound context and pluggable sink."""

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        path: Optional[str] = None,
        buffer: bool = False,
        context: Optional[Dict[str, object]] = None,
        enabled: bool = True,
        _clock=time.time,
    ) -> None:
        if stream is not None and path is not None:
            raise ValueError("pass either stream or path, not both")
        self.enabled = enabled and (
            stream is not None or path is not None or buffer
        )
        self._stream = stream
        self._own_stream = False
        if path is not None and self.enabled:
            self._stream = open(path, "w", encoding="utf-8")
            self._own_stream = True
        self.records: List[dict] = []
        self._buffering = buffer
        self._context = dict(context or {})
        self._clock = _clock

    def bind(self, **context: object) -> "RunLogger":
        """A child logger sharing this sink with merged context."""
        child = RunLogger.__new__(RunLogger)
        child.enabled = self.enabled
        child._stream = self._stream
        child._own_stream = False
        child.records = self.records
        child._buffering = self._buffering
        child._context = {**self._context, **context}
        child._clock = self._clock
        return child

    def log(self, event: str, **fields: object) -> None:
        """Emit one record carrying the bound context."""
        if not self.enabled:
            return
        record: Dict[str, object] = {
            "event": event, "ts": round(self._clock(), 6),
        }
        record.update(self._context)
        record.update(fields)
        self.write_record(record)

    def write_record(self, record: dict) -> None:
        """Emit a pre-built record verbatim (used to replay worker logs)."""
        if not self.enabled:
            return
        if self._buffering:
            self.records.append(record)
        if self._stream is not None:
            self._stream.write(json.dumps(record) + "\n")

    def close(self) -> None:
        if self._own_stream and self._stream is not None:
            self._stream.close()
            self._stream = None


#: Shared disabled logger: the default for instrumented code paths.
NULL_LOG = RunLogger(enabled=False)
